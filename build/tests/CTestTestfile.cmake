# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/lp_tests[1]_include.cmake")
include("/root/repo/build/tests/geometry_tests[1]_include.cmake")
include("/root/repo/build/tests/charging_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/tsp_tests[1]_include.cmake")
include("/root/repo/build/tests/bundle_tests[1]_include.cmake")
include("/root/repo/build/tests/tour_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/viz_tests[1]_include.cmake")
include("/root/repo/build/tests/io_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
