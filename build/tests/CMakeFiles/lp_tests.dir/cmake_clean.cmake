file(REMOVE_RECURSE
  "CMakeFiles/lp_tests.dir/lp/simplex_test.cc.o"
  "CMakeFiles/lp_tests.dir/lp/simplex_test.cc.o.d"
  "lp_tests"
  "lp_tests.pdb"
  "lp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
