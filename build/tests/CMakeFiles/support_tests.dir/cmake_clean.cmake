file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/cli_test.cc.o"
  "CMakeFiles/support_tests.dir/support/cli_test.cc.o.d"
  "CMakeFiles/support_tests.dir/support/require_test.cc.o"
  "CMakeFiles/support_tests.dir/support/require_test.cc.o.d"
  "CMakeFiles/support_tests.dir/support/rng_test.cc.o"
  "CMakeFiles/support_tests.dir/support/rng_test.cc.o.d"
  "CMakeFiles/support_tests.dir/support/stats_test.cc.o"
  "CMakeFiles/support_tests.dir/support/stats_test.cc.o.d"
  "CMakeFiles/support_tests.dir/support/table_test.cc.o"
  "CMakeFiles/support_tests.dir/support/table_test.cc.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
