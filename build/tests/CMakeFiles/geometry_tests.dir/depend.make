# Empty dependencies file for geometry_tests.
# This may be replaced when dependencies are built.
