file(REMOVE_RECURSE
  "CMakeFiles/geometry_tests.dir/geometry/anchor_search_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/anchor_search_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/circle_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/circle_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/convex_hull_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/convex_hull_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/ellipse_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/ellipse_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/minidisk_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/minidisk_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/point_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/point_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/rigid_motion_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/rigid_motion_test.cc.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/segment_test.cc.o"
  "CMakeFiles/geometry_tests.dir/geometry/segment_test.cc.o.d"
  "geometry_tests"
  "geometry_tests.pdb"
  "geometry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
