file(REMOVE_RECURSE
  "CMakeFiles/bundle_tests.dir/bundle/bundle_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/bundle_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/candidates_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/candidates_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/exact_cover_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/exact_cover_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/generator_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/generator_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/greedy_cover_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/greedy_cover_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/grid_cover_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/grid_cover_test.cc.o.d"
  "CMakeFiles/bundle_tests.dir/bundle/sweep_cover_test.cc.o"
  "CMakeFiles/bundle_tests.dir/bundle/sweep_cover_test.cc.o.d"
  "bundle_tests"
  "bundle_tests.pdb"
  "bundle_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
