# Empty dependencies file for bundle_tests.
# This may be replaced when dependencies are built.
