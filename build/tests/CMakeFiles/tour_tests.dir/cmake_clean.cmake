file(REMOVE_RECURSE
  "CMakeFiles/tour_tests.dir/tour/anneal_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/anneal_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/bc_opt_planner_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/bc_opt_planner_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/bc_planner_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/bc_planner_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/css_planner_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/css_planner_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/fleet_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/fleet_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/multi_trip_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/multi_trip_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/plan_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/plan_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/planner_common_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/planner_common_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/route_util_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/route_util_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/sc_planner_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/sc_planner_test.cc.o.d"
  "CMakeFiles/tour_tests.dir/tour/tspn_planner_test.cc.o"
  "CMakeFiles/tour_tests.dir/tour/tspn_planner_test.cc.o.d"
  "tour_tests"
  "tour_tests.pdb"
  "tour_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tour_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
