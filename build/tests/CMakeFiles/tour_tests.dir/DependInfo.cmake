
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tour/anneal_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/anneal_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/anneal_test.cc.o.d"
  "/root/repo/tests/tour/bc_opt_planner_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/bc_opt_planner_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/bc_opt_planner_test.cc.o.d"
  "/root/repo/tests/tour/bc_planner_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/bc_planner_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/bc_planner_test.cc.o.d"
  "/root/repo/tests/tour/css_planner_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/css_planner_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/css_planner_test.cc.o.d"
  "/root/repo/tests/tour/fleet_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/fleet_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/fleet_test.cc.o.d"
  "/root/repo/tests/tour/multi_trip_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/multi_trip_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/multi_trip_test.cc.o.d"
  "/root/repo/tests/tour/plan_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/plan_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/plan_test.cc.o.d"
  "/root/repo/tests/tour/planner_common_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/planner_common_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/planner_common_test.cc.o.d"
  "/root/repo/tests/tour/route_util_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/route_util_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/route_util_test.cc.o.d"
  "/root/repo/tests/tour/sc_planner_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/sc_planner_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/sc_planner_test.cc.o.d"
  "/root/repo/tests/tour/tspn_planner_test.cc" "tests/CMakeFiles/tour_tests.dir/tour/tspn_planner_test.cc.o" "gcc" "tests/CMakeFiles/tour_tests.dir/tour/tspn_planner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tour.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
