# Empty compiler generated dependencies file for tour_tests.
# This may be replaced when dependencies are built.
