file(REMOVE_RECURSE
  "CMakeFiles/charging_tests.dir/charging/model_test.cc.o"
  "CMakeFiles/charging_tests.dir/charging/model_test.cc.o.d"
  "CMakeFiles/charging_tests.dir/charging/movement_test.cc.o"
  "CMakeFiles/charging_tests.dir/charging/movement_test.cc.o.d"
  "CMakeFiles/charging_tests.dir/charging/scaling_property_test.cc.o"
  "CMakeFiles/charging_tests.dir/charging/scaling_property_test.cc.o.d"
  "charging_tests"
  "charging_tests.pdb"
  "charging_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charging_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
