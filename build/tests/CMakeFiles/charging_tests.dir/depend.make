# Empty dependencies file for charging_tests.
# This may be replaced when dependencies are built.
