file(REMOVE_RECURSE
  "CMakeFiles/tsp_tests.dir/tsp/construct_test.cc.o"
  "CMakeFiles/tsp_tests.dir/tsp/construct_test.cc.o.d"
  "CMakeFiles/tsp_tests.dir/tsp/exact_test.cc.o"
  "CMakeFiles/tsp_tests.dir/tsp/exact_test.cc.o.d"
  "CMakeFiles/tsp_tests.dir/tsp/improve_test.cc.o"
  "CMakeFiles/tsp_tests.dir/tsp/improve_test.cc.o.d"
  "CMakeFiles/tsp_tests.dir/tsp/solver_test.cc.o"
  "CMakeFiles/tsp_tests.dir/tsp/solver_test.cc.o.d"
  "CMakeFiles/tsp_tests.dir/tsp/tour_test.cc.o"
  "CMakeFiles/tsp_tests.dir/tsp/tour_test.cc.o.d"
  "tsp_tests"
  "tsp_tests.pdb"
  "tsp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
