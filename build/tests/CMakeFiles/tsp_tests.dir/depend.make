# Empty dependencies file for tsp_tests.
# This may be replaced when dependencies are built.
