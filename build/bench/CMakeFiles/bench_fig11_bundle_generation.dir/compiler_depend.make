# Empty compiler generated dependencies file for bench_fig11_bundle_generation.
# This may be replaced when dependencies are built.
