file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bundle_generation.dir/bench_fig11_bundle_generation.cpp.o"
  "CMakeFiles/bench_fig11_bundle_generation.dir/bench_fig11_bundle_generation.cpp.o.d"
  "bench_fig11_bundle_generation"
  "bench_fig11_bundle_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bundle_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
