# Empty dependencies file for bench_fig16_testbed.
# This may be replaced when dependencies are built.
