file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_testbed.dir/bench_fig16_testbed.cpp.o"
  "CMakeFiles/bench_fig16_testbed.dir/bench_fig16_testbed.cpp.o.d"
  "bench_fig16_testbed"
  "bench_fig16_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
