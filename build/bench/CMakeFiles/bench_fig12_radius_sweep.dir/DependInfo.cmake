
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_radius_sweep.cpp" "bench/CMakeFiles/bench_fig12_radius_sweep.dir/bench_fig12_radius_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_radius_sweep.dir/bench_fig12_radius_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tour.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
