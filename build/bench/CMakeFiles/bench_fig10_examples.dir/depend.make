# Empty dependencies file for bench_fig10_examples.
# This may be replaced when dependencies are built.
