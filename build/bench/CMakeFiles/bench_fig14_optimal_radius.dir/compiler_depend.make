# Empty compiler generated dependencies file for bench_fig14_optimal_radius.
# This may be replaced when dependencies are built.
