file(REMOVE_RECURSE
  "CMakeFiles/radius_tuning.dir/radius_tuning.cpp.o"
  "CMakeFiles/radius_tuning.dir/radius_tuning.cpp.o.d"
  "radius_tuning"
  "radius_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radius_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
