# Empty compiler generated dependencies file for site_survey_workflow.
# This may be replaced when dependencies are built.
