file(REMOVE_RECURSE
  "CMakeFiles/site_survey_workflow.dir/site_survey_workflow.cpp.o"
  "CMakeFiles/site_survey_workflow.dir/site_survey_workflow.cpp.o.d"
  "site_survey_workflow"
  "site_survey_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_survey_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
