file(REMOVE_RECURSE
  "CMakeFiles/capacitated_charger.dir/capacitated_charger.cpp.o"
  "CMakeFiles/capacitated_charger.dir/capacitated_charger.cpp.o.d"
  "capacitated_charger"
  "capacitated_charger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacitated_charger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
