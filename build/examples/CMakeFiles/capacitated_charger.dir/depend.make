# Empty dependencies file for capacitated_charger.
# This may be replaced when dependencies are built.
