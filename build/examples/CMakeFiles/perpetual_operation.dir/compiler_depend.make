# Empty compiler generated dependencies file for perpetual_operation.
# This may be replaced when dependencies are built.
