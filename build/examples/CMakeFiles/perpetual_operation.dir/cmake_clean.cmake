file(REMOVE_RECURSE
  "CMakeFiles/perpetual_operation.dir/perpetual_operation.cpp.o"
  "CMakeFiles/perpetual_operation.dir/perpetual_operation.cpp.o.d"
  "perpetual_operation"
  "perpetual_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpetual_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
