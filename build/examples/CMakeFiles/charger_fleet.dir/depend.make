# Empty dependencies file for charger_fleet.
# This may be replaced when dependencies are built.
