file(REMOVE_RECURSE
  "CMakeFiles/charger_fleet.dir/charger_fleet.cpp.o"
  "CMakeFiles/charger_fleet.dir/charger_fleet.cpp.o.d"
  "charger_fleet"
  "charger_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charger_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
