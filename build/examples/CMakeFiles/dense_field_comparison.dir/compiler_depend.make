# Empty compiler generated dependencies file for dense_field_comparison.
# This may be replaced when dependencies are built.
