file(REMOVE_RECURSE
  "CMakeFiles/dense_field_comparison.dir/dense_field_comparison.cpp.o"
  "CMakeFiles/dense_field_comparison.dir/dense_field_comparison.cpp.o.d"
  "dense_field_comparison"
  "dense_field_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_field_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
