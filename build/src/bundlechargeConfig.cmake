include("${CMAKE_CURRENT_LIST_DIR}/bundlechargeTargets.cmake")
