
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charging/model.cc" "src/CMakeFiles/bc_charging.dir/charging/model.cc.o" "gcc" "src/CMakeFiles/bc_charging.dir/charging/model.cc.o.d"
  "/root/repo/src/charging/movement.cc" "src/CMakeFiles/bc_charging.dir/charging/movement.cc.o" "gcc" "src/CMakeFiles/bc_charging.dir/charging/movement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
