file(REMOVE_RECURSE
  "libbc_charging.a"
)
