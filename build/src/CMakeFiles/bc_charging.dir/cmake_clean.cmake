file(REMOVE_RECURSE
  "CMakeFiles/bc_charging.dir/charging/model.cc.o"
  "CMakeFiles/bc_charging.dir/charging/model.cc.o.d"
  "CMakeFiles/bc_charging.dir/charging/movement.cc.o"
  "CMakeFiles/bc_charging.dir/charging/movement.cc.o.d"
  "libbc_charging.a"
  "libbc_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
