# Empty compiler generated dependencies file for bc_charging.
# This may be replaced when dependencies are built.
