# Empty compiler generated dependencies file for bc_tour.
# This may be replaced when dependencies are built.
