
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tour/anneal.cc" "src/CMakeFiles/bc_tour.dir/tour/anneal.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/anneal.cc.o.d"
  "/root/repo/src/tour/bc_opt_planner.cc" "src/CMakeFiles/bc_tour.dir/tour/bc_opt_planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/bc_opt_planner.cc.o.d"
  "/root/repo/src/tour/bc_planner.cc" "src/CMakeFiles/bc_tour.dir/tour/bc_planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/bc_planner.cc.o.d"
  "/root/repo/src/tour/css_planner.cc" "src/CMakeFiles/bc_tour.dir/tour/css_planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/css_planner.cc.o.d"
  "/root/repo/src/tour/fleet.cc" "src/CMakeFiles/bc_tour.dir/tour/fleet.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/fleet.cc.o.d"
  "/root/repo/src/tour/multi_trip.cc" "src/CMakeFiles/bc_tour.dir/tour/multi_trip.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/multi_trip.cc.o.d"
  "/root/repo/src/tour/plan.cc" "src/CMakeFiles/bc_tour.dir/tour/plan.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/plan.cc.o.d"
  "/root/repo/src/tour/planner.cc" "src/CMakeFiles/bc_tour.dir/tour/planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/planner.cc.o.d"
  "/root/repo/src/tour/route_util.cc" "src/CMakeFiles/bc_tour.dir/tour/route_util.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/route_util.cc.o.d"
  "/root/repo/src/tour/sc_planner.cc" "src/CMakeFiles/bc_tour.dir/tour/sc_planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/sc_planner.cc.o.d"
  "/root/repo/src/tour/tspn_planner.cc" "src/CMakeFiles/bc_tour.dir/tour/tspn_planner.cc.o" "gcc" "src/CMakeFiles/bc_tour.dir/tour/tspn_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
