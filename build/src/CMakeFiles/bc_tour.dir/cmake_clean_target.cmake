file(REMOVE_RECURSE
  "libbc_tour.a"
)
