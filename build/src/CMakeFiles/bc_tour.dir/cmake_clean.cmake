file(REMOVE_RECURSE
  "CMakeFiles/bc_tour.dir/tour/anneal.cc.o"
  "CMakeFiles/bc_tour.dir/tour/anneal.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/bc_opt_planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/bc_opt_planner.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/bc_planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/bc_planner.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/css_planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/css_planner.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/fleet.cc.o"
  "CMakeFiles/bc_tour.dir/tour/fleet.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/multi_trip.cc.o"
  "CMakeFiles/bc_tour.dir/tour/multi_trip.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/plan.cc.o"
  "CMakeFiles/bc_tour.dir/tour/plan.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/planner.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/route_util.cc.o"
  "CMakeFiles/bc_tour.dir/tour/route_util.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/sc_planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/sc_planner.cc.o.d"
  "CMakeFiles/bc_tour.dir/tour/tspn_planner.cc.o"
  "CMakeFiles/bc_tour.dir/tour/tspn_planner.cc.o.d"
  "libbc_tour.a"
  "libbc_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
