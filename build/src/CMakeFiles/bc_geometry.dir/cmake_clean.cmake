file(REMOVE_RECURSE
  "CMakeFiles/bc_geometry.dir/geometry/anchor_search.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/anchor_search.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/circle.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/circle.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/convex_hull.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/convex_hull.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/ellipse.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/ellipse.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/minidisk.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/minidisk.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/point.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/point.cc.o.d"
  "CMakeFiles/bc_geometry.dir/geometry/segment.cc.o"
  "CMakeFiles/bc_geometry.dir/geometry/segment.cc.o.d"
  "libbc_geometry.a"
  "libbc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
