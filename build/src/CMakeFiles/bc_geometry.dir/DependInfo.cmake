
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/anchor_search.cc" "src/CMakeFiles/bc_geometry.dir/geometry/anchor_search.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/anchor_search.cc.o.d"
  "/root/repo/src/geometry/circle.cc" "src/CMakeFiles/bc_geometry.dir/geometry/circle.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/circle.cc.o.d"
  "/root/repo/src/geometry/convex_hull.cc" "src/CMakeFiles/bc_geometry.dir/geometry/convex_hull.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/convex_hull.cc.o.d"
  "/root/repo/src/geometry/ellipse.cc" "src/CMakeFiles/bc_geometry.dir/geometry/ellipse.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/ellipse.cc.o.d"
  "/root/repo/src/geometry/minidisk.cc" "src/CMakeFiles/bc_geometry.dir/geometry/minidisk.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/minidisk.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/CMakeFiles/bc_geometry.dir/geometry/point.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/point.cc.o.d"
  "/root/repo/src/geometry/segment.cc" "src/CMakeFiles/bc_geometry.dir/geometry/segment.cc.o" "gcc" "src/CMakeFiles/bc_geometry.dir/geometry/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
