file(REMOVE_RECURSE
  "libbc_geometry.a"
)
