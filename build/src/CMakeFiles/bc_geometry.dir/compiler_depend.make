# Empty compiler generated dependencies file for bc_geometry.
# This may be replaced when dependencies are built.
