file(REMOVE_RECURSE
  "libbc_core.a"
)
