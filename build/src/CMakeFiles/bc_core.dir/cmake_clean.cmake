file(REMOVE_RECURSE
  "CMakeFiles/bc_core.dir/core/planner_api.cc.o"
  "CMakeFiles/bc_core.dir/core/planner_api.cc.o.d"
  "CMakeFiles/bc_core.dir/core/profiles.cc.o"
  "CMakeFiles/bc_core.dir/core/profiles.cc.o.d"
  "libbc_core.a"
  "libbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
