file(REMOVE_RECURSE
  "libbc_lp.a"
)
