file(REMOVE_RECURSE
  "CMakeFiles/bc_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/bc_lp.dir/lp/simplex.cc.o.d"
  "libbc_lp.a"
  "libbc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
