# Empty dependencies file for bc_lp.
# This may be replaced when dependencies are built.
