# Empty dependencies file for bc_support.
# This may be replaced when dependencies are built.
