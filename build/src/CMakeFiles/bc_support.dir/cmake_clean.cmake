file(REMOVE_RECURSE
  "CMakeFiles/bc_support.dir/support/cli.cc.o"
  "CMakeFiles/bc_support.dir/support/cli.cc.o.d"
  "CMakeFiles/bc_support.dir/support/require.cc.o"
  "CMakeFiles/bc_support.dir/support/require.cc.o.d"
  "CMakeFiles/bc_support.dir/support/rng.cc.o"
  "CMakeFiles/bc_support.dir/support/rng.cc.o.d"
  "CMakeFiles/bc_support.dir/support/stats.cc.o"
  "CMakeFiles/bc_support.dir/support/stats.cc.o.d"
  "CMakeFiles/bc_support.dir/support/table.cc.o"
  "CMakeFiles/bc_support.dir/support/table.cc.o.d"
  "libbc_support.a"
  "libbc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
