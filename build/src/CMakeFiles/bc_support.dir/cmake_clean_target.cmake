file(REMOVE_RECURSE
  "libbc_support.a"
)
