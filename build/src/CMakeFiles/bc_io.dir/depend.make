# Empty dependencies file for bc_io.
# This may be replaced when dependencies are built.
