file(REMOVE_RECURSE
  "CMakeFiles/bc_io.dir/io/deployment_io.cc.o"
  "CMakeFiles/bc_io.dir/io/deployment_io.cc.o.d"
  "CMakeFiles/bc_io.dir/io/plan_io.cc.o"
  "CMakeFiles/bc_io.dir/io/plan_io.cc.o.d"
  "libbc_io.a"
  "libbc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
