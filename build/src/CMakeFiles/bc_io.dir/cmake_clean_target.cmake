file(REMOVE_RECURSE
  "libbc_io.a"
)
