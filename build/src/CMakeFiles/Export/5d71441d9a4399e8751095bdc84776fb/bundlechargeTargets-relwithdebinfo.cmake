#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "bundlecharge::bc_support" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_support.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_support )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_support "${_IMPORT_PREFIX}/lib/libbc_support.a" )

# Import target "bundlecharge::bc_lp" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_lp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_lp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_lp.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_lp )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_lp "${_IMPORT_PREFIX}/lib/libbc_lp.a" )

# Import target "bundlecharge::bc_geometry" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_geometry APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_geometry PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_geometry.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_geometry )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_geometry "${_IMPORT_PREFIX}/lib/libbc_geometry.a" )

# Import target "bundlecharge::bc_charging" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_charging APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_charging PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_charging.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_charging )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_charging "${_IMPORT_PREFIX}/lib/libbc_charging.a" )

# Import target "bundlecharge::bc_net" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_net.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_net )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_net "${_IMPORT_PREFIX}/lib/libbc_net.a" )

# Import target "bundlecharge::bc_tsp" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_tsp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_tsp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_tsp.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_tsp )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_tsp "${_IMPORT_PREFIX}/lib/libbc_tsp.a" )

# Import target "bundlecharge::bc_bundle" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_bundle APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_bundle PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_bundle.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_bundle )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_bundle "${_IMPORT_PREFIX}/lib/libbc_bundle.a" )

# Import target "bundlecharge::bc_tour" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_tour APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_tour PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_tour.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_tour )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_tour "${_IMPORT_PREFIX}/lib/libbc_tour.a" )

# Import target "bundlecharge::bc_sim" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_sim.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_sim )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_sim "${_IMPORT_PREFIX}/lib/libbc_sim.a" )

# Import target "bundlecharge::bc_viz" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_viz APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_viz PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_viz.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_viz )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_viz "${_IMPORT_PREFIX}/lib/libbc_viz.a" )

# Import target "bundlecharge::bc_io" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_io APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_io PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_io.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_io )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_io "${_IMPORT_PREFIX}/lib/libbc_io.a" )

# Import target "bundlecharge::bc_core" for configuration "RelWithDebInfo"
set_property(TARGET bundlecharge::bc_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(bundlecharge::bc_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libbc_core.a"
  )

list(APPEND _cmake_import_check_targets bundlecharge::bc_core )
list(APPEND _cmake_import_check_files_for_bundlecharge::bc_core "${_IMPORT_PREFIX}/lib/libbc_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
