file(REMOVE_RECURSE
  "CMakeFiles/bc_bundle.dir/bundle/bundle.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/bundle.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/candidates.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/candidates.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/exact_cover.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/exact_cover.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/generator.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/generator.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/greedy_cover.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/greedy_cover.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/grid_cover.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/grid_cover.cc.o.d"
  "CMakeFiles/bc_bundle.dir/bundle/sweep_cover.cc.o"
  "CMakeFiles/bc_bundle.dir/bundle/sweep_cover.cc.o.d"
  "libbc_bundle.a"
  "libbc_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
