# Empty dependencies file for bc_bundle.
# This may be replaced when dependencies are built.
