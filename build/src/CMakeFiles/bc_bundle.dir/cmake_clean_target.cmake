file(REMOVE_RECURSE
  "libbc_bundle.a"
)
