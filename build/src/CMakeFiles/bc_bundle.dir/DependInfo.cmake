
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bundle/bundle.cc" "src/CMakeFiles/bc_bundle.dir/bundle/bundle.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/bundle.cc.o.d"
  "/root/repo/src/bundle/candidates.cc" "src/CMakeFiles/bc_bundle.dir/bundle/candidates.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/candidates.cc.o.d"
  "/root/repo/src/bundle/exact_cover.cc" "src/CMakeFiles/bc_bundle.dir/bundle/exact_cover.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/exact_cover.cc.o.d"
  "/root/repo/src/bundle/generator.cc" "src/CMakeFiles/bc_bundle.dir/bundle/generator.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/generator.cc.o.d"
  "/root/repo/src/bundle/greedy_cover.cc" "src/CMakeFiles/bc_bundle.dir/bundle/greedy_cover.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/greedy_cover.cc.o.d"
  "/root/repo/src/bundle/grid_cover.cc" "src/CMakeFiles/bc_bundle.dir/bundle/grid_cover.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/grid_cover.cc.o.d"
  "/root/repo/src/bundle/sweep_cover.cc" "src/CMakeFiles/bc_bundle.dir/bundle/sweep_cover.cc.o" "gcc" "src/CMakeFiles/bc_bundle.dir/bundle/sweep_cover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
