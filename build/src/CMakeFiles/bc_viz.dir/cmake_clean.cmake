file(REMOVE_RECURSE
  "CMakeFiles/bc_viz.dir/viz/plan_render.cc.o"
  "CMakeFiles/bc_viz.dir/viz/plan_render.cc.o.d"
  "CMakeFiles/bc_viz.dir/viz/svg.cc.o"
  "CMakeFiles/bc_viz.dir/viz/svg.cc.o.d"
  "libbc_viz.a"
  "libbc_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
