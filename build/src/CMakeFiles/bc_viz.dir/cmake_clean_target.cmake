file(REMOVE_RECURSE
  "libbc_viz.a"
)
