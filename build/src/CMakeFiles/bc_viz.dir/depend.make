# Empty dependencies file for bc_viz.
# This may be replaced when dependencies are built.
