file(REMOVE_RECURSE
  "CMakeFiles/bc_net.dir/net/deployment.cc.o"
  "CMakeFiles/bc_net.dir/net/deployment.cc.o.d"
  "CMakeFiles/bc_net.dir/net/spatial_index.cc.o"
  "CMakeFiles/bc_net.dir/net/spatial_index.cc.o.d"
  "libbc_net.a"
  "libbc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
