# Empty dependencies file for bc_net.
# This may be replaced when dependencies are built.
