# Empty dependencies file for bc_sim.
# This may be replaced when dependencies are built.
