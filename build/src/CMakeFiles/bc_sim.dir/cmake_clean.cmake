file(REMOVE_RECURSE
  "CMakeFiles/bc_sim.dir/sim/evaluate.cc.o"
  "CMakeFiles/bc_sim.dir/sim/evaluate.cc.o.d"
  "CMakeFiles/bc_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/bc_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/bc_sim.dir/sim/lifetime.cc.o"
  "CMakeFiles/bc_sim.dir/sim/lifetime.cc.o.d"
  "CMakeFiles/bc_sim.dir/sim/schedule.cc.o"
  "CMakeFiles/bc_sim.dir/sim/schedule.cc.o.d"
  "libbc_sim.a"
  "libbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
