# Empty dependencies file for bc_tsp.
# This may be replaced when dependencies are built.
