file(REMOVE_RECURSE
  "CMakeFiles/bc_tsp.dir/tsp/construct.cc.o"
  "CMakeFiles/bc_tsp.dir/tsp/construct.cc.o.d"
  "CMakeFiles/bc_tsp.dir/tsp/exact.cc.o"
  "CMakeFiles/bc_tsp.dir/tsp/exact.cc.o.d"
  "CMakeFiles/bc_tsp.dir/tsp/improve.cc.o"
  "CMakeFiles/bc_tsp.dir/tsp/improve.cc.o.d"
  "CMakeFiles/bc_tsp.dir/tsp/solver.cc.o"
  "CMakeFiles/bc_tsp.dir/tsp/solver.cc.o.d"
  "CMakeFiles/bc_tsp.dir/tsp/tour.cc.o"
  "CMakeFiles/bc_tsp.dir/tsp/tour.cc.o.d"
  "libbc_tsp.a"
  "libbc_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
