
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsp/construct.cc" "src/CMakeFiles/bc_tsp.dir/tsp/construct.cc.o" "gcc" "src/CMakeFiles/bc_tsp.dir/tsp/construct.cc.o.d"
  "/root/repo/src/tsp/exact.cc" "src/CMakeFiles/bc_tsp.dir/tsp/exact.cc.o" "gcc" "src/CMakeFiles/bc_tsp.dir/tsp/exact.cc.o.d"
  "/root/repo/src/tsp/improve.cc" "src/CMakeFiles/bc_tsp.dir/tsp/improve.cc.o" "gcc" "src/CMakeFiles/bc_tsp.dir/tsp/improve.cc.o.d"
  "/root/repo/src/tsp/solver.cc" "src/CMakeFiles/bc_tsp.dir/tsp/solver.cc.o" "gcc" "src/CMakeFiles/bc_tsp.dir/tsp/solver.cc.o.d"
  "/root/repo/src/tsp/tour.cc" "src/CMakeFiles/bc_tsp.dir/tsp/tour.cc.o" "gcc" "src/CMakeFiles/bc_tsp.dir/tsp/tour.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
