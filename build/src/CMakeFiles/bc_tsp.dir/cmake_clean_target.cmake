file(REMOVE_RECURSE
  "libbc_tsp.a"
)
