// City-scale end-to-end tier: plans a constant-density deployment with the
// hierarchical BC-SHARD planner at n in the tens of thousands and records
// wall time, deterministic work counters, and memory high-water marks.
//
// Density is pinned to the paper's §VI-A setting (200 sensors per
// 1000 m x 1000 m field), so the field side grows as sqrt(n / 200) * 1 km
// and every tier exercises the same local geometry — n=100k is a ~22.4 km
// square city block, not a denser thicket.
//
// The n=10k tier runs in the CI perf-smoke job against a committed
// baseline (exact counter equality + wall-time threshold); the n=100k tier
// runs in the manually-triggered / nightly `scale` workflow. The
// --plan-out / --metrics-out / --trace-out outputs are the byte-identity
// artifacts the simd-matrix job diffs across BC_SIMD legs.
//
// Memory reporting: deterministic high-water gauges (exact_cover arena
// words, shard tile sizes, trace buffers) travel in the observability
// block; the process peak RSS (VmHWM) is also captured as an informational
// metric — it is OS-dependent, so it is never a counter.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bundle/shard.h"
#include "core/bundlecharge.h"
#include "io/plan_io.h"
#include "net/deployment.h"
#include "net/metric.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/simd.h"
#include "tour/plan.h"
#include "tour/planner.h"

namespace {

// Peak resident set size in MiB from /proc/self/status (0 when the file or
// the VmHWM line is unavailable — non-Linux or restricted /proc).
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) {
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

std::string tier_name(std::size_t n) {
  if (n % 1000 == 0) return std::to_string(n / 1000) + "k";
  return std::to_string(n);
}

// Deterministic 25x25 waypoint grid spanning the field, 4-connected with
// chord-weighted edges and zero obstacles. Every query therefore has line
// of sight and returns the exact Euclidean distance — the graph tier
// exercises the GraphMetric dispatch, snapping and cache machinery through
// the whole sharded planner while staying byte-comparable to the euclid
// tier.
bc::net::WaypointGraph field_grid_graph(double side) {
  constexpr std::uint32_t kPerSide = 25;
  bc::net::WaypointGraph graph;
  const double step = side / (kPerSide - 1);
  for (std::uint32_t row = 0; row < kPerSide; ++row) {
    for (std::uint32_t col = 0; col < kPerSide; ++col) {
      graph.nodes.push_back({col * step, row * step});
    }
  }
  auto id = [](std::uint32_t row, std::uint32_t col) {
    return row * kPerSide + col;
  };
  for (std::uint32_t row = 0; row < kPerSide; ++row) {
    for (std::uint32_t col = 0; col < kPerSide; ++col) {
      if (col + 1 < kPerSide) {
        graph.edges.push_back({id(row, col), id(row, col + 1), step});
      }
      if (row + 1 < kPerSide) {
        graph.edges.push_back({id(row, col), id(row + 1, col), step});
      }
    }
  }
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "End-to-end BC-SHARD planning at city scale; writes "
      "BENCH_scale_<tier>.json.");
  flags.define_string("out-dir", ".", "directory for BENCH_scale_<tier>.json");
  flags.define_int("n", 10000, "sensor count (field scales to keep density)");
  flags.define_int("repeats", 3, "timed repetitions (min is kept)");
  flags.define_int("seed", 2019, "deployment RNG seed");
  flags.define_double("radius", 60.0, "bundle generation radius (m)");
  flags.define_int("target-shard", 512, "target sensors per spatial shard");
  flags.define_int("threads", 1,
                   "worker threads (0 = BC_THREADS env or hardware); "
                   "results are identical at every thread count");
  flags.define_string("simd", "",
                      "kernel ISA: scalar | avx2 | neon | auto (empty = "
                      "BC_SIMD env, else auto); unsupported falls back to "
                      "scalar");
  flags.define_string("plan-out", "",
                      "write the planned tour as JSON to this path (the "
                      "byte-identity artifact for the simd-matrix job)");
  flags.define_string("metric", "euclid",
                      "movement metric: euclid | graph (zero-obstacle "
                      "waypoint grid over the field; exercises GraphMetric "
                      "dispatch at scale, writes BENCH_scale_<tier>_graph)");
  bc::bench::define_obs_flags(flags);
  if (!flags.parse(argc, argv, std::cerr)) return 2;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const std::string simd_flag = flags.get_string("simd");
  if (!simd_flag.empty()) {
    bc::support::simd::Isa requested;
    if (!bc::support::simd::parse_isa(simd_flag, requested)) {
      std::cerr << "--simd must be scalar, avx2, neon, or auto; got '"
                << simd_flag << "'\n";
      return 2;
    }
    bc::support::simd::set_isa(requested);
  }
  std::cout << "simd isa: "
            << bc::support::simd::to_string(bc::support::simd::active_isa())
            << "\n";

  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  bc::support::set_thread_count(threads);
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats"));
  const double radius = flags.get_double("radius");

  // Constant paper density: 200 sensors per km^2.
  const double side =
      1000.0 * std::sqrt(static_cast<double>(n) / 200.0);
  bc::net::FieldSpec spec;
  spec.field = {{0.0, 0.0}, {side, side}};
  spec.depot = {0.0, 0.0};
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment =
      bc::net::uniform_random_deployment(n, spec, rng);

  bc::tour::PlannerConfig config =
      bc::core::icdcs2019_simulation_profile().planner;
  config.bundle_radius = radius;
  config.shard.target_shard_sensors =
      static_cast<std::size_t>(flags.get_int("target-shard"));

  const std::string metric_flag = flags.get_string("metric");
  if (metric_flag == "graph") {
    config.metric =
        std::make_shared<bc::net::GraphMetric>(field_grid_graph(side));
  } else if (metric_flag != "euclid") {
    std::cerr << "--metric must be euclid or graph; got '" << metric_flag
              << "'\n";
    return 2;
  }

  const bc::bundle::ShardGrid grid =
      bc::bundle::build_shard_grid(deployment, radius, config.shard);

  bc::tour::ChargingPlan plan;
  const std::string bench_name =
      "scale_" + tier_name(n) + (metric_flag == "graph" ? "_graph" : "");
  bc::bench::BenchReporter reporter(bench_name);
  reporter
      .time_case("bc_shard/n=" + std::to_string(n), repeats,
                 [&] {
                   plan = bc::tour::plan_charging_tour(
                       deployment, bc::tour::Algorithm::kBcSharded, config);
                 })
      .counter("stops", static_cast<std::int64_t>(plan.stops.size()))
      .counter("sensors", static_cast<std::int64_t>(n))
      .counter("shard_tiles", static_cast<std::int64_t>(grid.tiles()))
      .metric("tour_len_m",
              bc::tour::plan_tour_length(plan, config.metric.get()))
      .metric("field_side_m", side)
      .metric("peak_rss_mib", peak_rss_mib());
  reporter.write(flags.get_string("out-dir"), threads);

  const std::string plan_out = flags.get_string("plan-out");
  if (!plan_out.empty()) {
    const auto evaluation =
        bc::core::icdcs2019_simulation_profile().evaluation;
    if (!bc::io::write_plan_json_file(deployment, plan, evaluation,
                                      plan_out)) {
      std::cerr << "failed to write " << plan_out << "\n";
      return 1;
    }
  }
  return 0;
}
