// Fig. 12 — "Different bundle radii": the four algorithms swept over the
// bundle radius at fixed density.
//
// (a) total energy; (b) tour length; (c) average charging time per sensor.
//
// Expected shapes: BC-OPT lowest energy across the sweep and improving
// with radius; SC is radius-independent; CSS shortens the tour like
// BC-OPT but pays much more charging time (it ignores charging
// efficiency when sliding stops).

#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("Fig. 12: metrics vs bundle radius");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 100, "number of sensors");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  bc::bench::SweepControl control = bc::bench::sweep_control_from_flags(
      flags, "fig12", "nodes=" + std::to_string(n));
  constexpr bc::tour::Algorithm kAlgorithms[] = {
      bc::tour::Algorithm::kSc, bc::tour::Algorithm::kCss,
      bc::tour::Algorithm::kBc, bc::tour::Algorithm::kBcOpt};

  std::cout << "=== Fig. 12: radius sweep (n = " << n << ", "
            << flags.get_int("runs") << " runs/point) ===\n\n";

  bc::support::Table energy({"radius [m]", "SC", "CSS", "BC", "BC-OPT"});
  bc::support::Table tour({"radius [m]", "SC", "CSS", "BC", "BC-OPT"});
  bc::support::Table charge({"radius [m]", "SC", "CSS", "BC", "BC-OPT"});
  for (const double r : std::vector<double>{5, 10, 20, 40, 60, 80}) {
    std::vector<std::string> row_e{bc::support::Table::num(r, 0)};
    std::vector<std::string> row_t{bc::support::Table::num(r, 0)};
    std::vector<std::string> row_c{bc::support::Table::num(r, 0)};
    for (const auto algorithm : kAlgorithms) {
      const auto agg = bc::bench::run_cells(
          control, bc::bench::spec_from_flags(flags, profile, n, algorithm, r),
          "r=" + bc::bench::num_token(r) + "_alg=" +
              std::string(bc::tour::to_string(algorithm)));
      row_e.push_back(bc::support::Table::num(agg.total_energy_j.mean(), 0));
      row_t.push_back(bc::support::Table::num(agg.tour_length_m.mean(), 0));
      row_c.push_back(bc::support::Table::num(
          agg.avg_charge_time_per_sensor_s.mean(), 1));
    }
    energy.add_row(row_e);
    tour.add_row(row_t);
    charge.add_row(row_c);
  }

  std::cout << "-- Fig. 12(a): total energy [J] --\n";
  bc::bench::print_table(flags, energy);
  std::cout << "\n-- Fig. 12(b): tour length [m] --\n";
  bc::bench::print_table(flags, tour);
  std::cout << "\n-- Fig. 12(c): average charging time per sensor [s] --\n";
  bc::bench::print_table(flags, charge);
  std::cout << "\nExpected: BC-OPT lowest in (a); SC flat; CSS/BC-OPT "
               "shortest in (b); CSS pays the most charging time in (c).\n";
  return 0;
}
