// Fig. 16 — testbed validation (§VII), simulated.
//
// The paper's testbed: a robot car with a Powercast TX91501 3 W / 915 MHz
// transmitter charges six P2110-equipped sensors at fixed coordinates in
// a 5 m x 5 m office, driving at 0.3 m/s and spending 5.59 J/m. We replay
// the same scenario on the simulated Friis-parameterised model (see
// DESIGN.md's substitution table) and sweep the bundle radius as the
// paper does.
//
// Expected shapes (paper: Fig. 16): at tiny radii all three algorithms
// coincide (singleton bundles); with growing radius BC and BC-OPT save
// energy — the paper reports ~8 % (BC) and ~13 % (BC-OPT) at r = 1.2 m,
// and a > 20 % tour-length reduction for BC-OPT.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("Fig. 16: simulated §VII testbed replay");
  flags.define_bool("csv", false, "emit CSV instead of an aligned table");
  bc::bench::define_obs_flags(flags);
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::core::testbed_profile();
  const bc::net::Deployment deployment = bc::net::testbed_deployment();

  std::cout << "=== Fig. 16: testbed (6 sensors, 5 m x 5 m, Powercast "
               "TX91501 -> P2110) ===\n\n";

  bc::support::Table energy({"radius [m]", "SC [J]", "BC [J]", "BC-OPT [J]",
                             "BC saving [%]", "BC-OPT saving [%]"});
  bc::support::Table tour({"radius [m]", "SC [m]", "BC [m]", "BC-OPT [m]"});

  bc::core::BundleChargingPlanner planner(profile);
  const auto sc = planner.plan(deployment, bc::tour::Algorithm::kSc);
  for (const double r :
       std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0}) {
    planner.mutable_profile().planner.bundle_radius = r;
    const auto bc_res = planner.plan(deployment, bc::tour::Algorithm::kBc);
    const auto opt_res =
        planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
    const double e_sc = sc.metrics.total_energy_j;
    energy.add_row(
        {bc::support::Table::num(r, 1),
         bc::support::Table::num(e_sc, 2),
         bc::support::Table::num(bc_res.metrics.total_energy_j, 2),
         bc::support::Table::num(opt_res.metrics.total_energy_j, 2),
         bc::support::Table::num(
             100.0 * (e_sc - bc_res.metrics.total_energy_j) / e_sc, 1),
         bc::support::Table::num(
             100.0 * (e_sc - opt_res.metrics.total_energy_j) / e_sc, 1)});
    tour.add_row({bc::support::Table::num(r, 1),
                  bc::support::Table::num(sc.metrics.tour_length_m, 2),
                  bc::support::Table::num(bc_res.metrics.tour_length_m, 2),
                  bc::support::Table::num(opt_res.metrics.tour_length_m, 2)});
  }

  std::cout << "-- Fig. 16(a): overall energy --\n";
  if (flags.get_bool("csv")) energy.print_csv(std::cout);
  else energy.print(std::cout);
  std::cout << "\n-- Fig. 16(b): tour length --\n";
  if (flags.get_bool("csv")) tour.print_csv(std::cout);
  else tour.print(std::cout);
  std::cout << "\nPaper reference at r = 1.2 m: BC -8 %, BC-OPT -13 % "
               "energy; BC-OPT tour > 20 % shorter than SC.\n";
  return 0;
}
