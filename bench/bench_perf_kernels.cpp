// Perf-regression micro benches for the three hot kernels of the planning
// pipeline: candidate bundle enumeration, the exact-cover branch & bound,
// and TSP local search (2-opt / Or-opt). Each kernel is timed on uniform
// dense deployments at n in {100, 300, 800} and the results are written as
// machine-readable `BENCH_<kernel>.json` files (schema: DESIGN.md §8) for
// the CI perf-smoke job to diff against `bench/baselines/`.
//
// Wall times are the minimum over --repeats runs; counters (nodes
// expanded, candidates enumerated, moves applied) are deterministic for a
// given build at every thread count. The exact-cover case pins a node cap
// so before/after builds expand the same number of nodes and the wall-time
// ratio is a pure per-node-cost comparison.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bundle/candidates.h"
#include "bundle/exact_cover.h"
#include "core/bundlecharge.h"
#include "net/deployment.h"
#include "support/cli.h"
#include "support/rng.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/tour.h"

namespace {

using bc::geometry::Point2;

constexpr std::size_t kSizes[] = {100, 300, 800};
constexpr double kRadius = 60.0;  // paper-scale bundle radius (§VI-A)

bc::net::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  bc::support::Rng rng(seed);
  return bc::net::uniform_random_deployment(
      n, bc::core::icdcs2019_simulation_profile().field, rng);
}

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  bc::support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

std::string case_name(std::size_t n) { return "n=" + std::to_string(n); }

void bench_candidates(const std::string& out_dir, std::size_t repeats,
                      std::size_t threads) {
  bc::bench::BenchReporter reporter("candidates");
  for (const std::size_t n : kSizes) {
    const auto d = make_deployment(n, 1000 + n);
    std::vector<bc::bundle::Bundle> result;
    reporter
        .time_case(case_name(n), repeats,
                   [&] { result = bc::bundle::enumerate_candidates(d, kRadius); })
        .counter("candidates", static_cast<std::int64_t>(result.size()));
  }
  reporter.write(out_dir, threads);
}

void bench_exact_cover(const std::string& out_dir, std::size_t repeats,
                       std::size_t threads) {
  bc::bench::BenchReporter reporter("exact_cover");
  for (const std::size_t n : kSizes) {
    const auto d = make_deployment(n, 1000 + n);
    const auto candidates = bc::bundle::enumerate_candidates(d, kRadius);
    bc::bundle::ExactCoverOptions options;
    // Fixed node cap: every build expands exactly the same node count, so
    // the wall-time ratio measures per-node cost. (Bigger instances get a
    // smaller cap to keep the suite fast.)
    options.max_nodes = n >= 800 ? 20'000 : 50'000;
    bc::bundle::CoverSolution solution;
    reporter
        .time_case(case_name(n), repeats,
                   [&] {
                     auto result = bc::bundle::exact_cover_anytime(
                         d, candidates, options);
                     solution = std::move(result.value());
                   })
        .counter("nodes_expanded",
                 static_cast<std::int64_t>(solution.nodes_expanded))
        .counter("cover_size",
                 static_cast<std::int64_t>(solution.bundles.size()))
        .counter("candidates", static_cast<std::int64_t>(candidates.size()));
  }
  reporter.write(out_dir, threads);
}

void bench_tsp_improve(const std::string& out_dir, std::size_t repeats,
                       std::size_t threads) {
  bc::bench::BenchReporter reporter("tsp_improve");
  for (const std::size_t n : kSizes) {
    const auto pts = random_points(n, 2000 + n);
    const bc::tsp::Tour start = bc::tsp::nearest_neighbor_tour(pts, 0);
    const double len_before = bc::tsp::tour_length(pts, start);

    bc::tsp::Tour improved;
    reporter
        .time_case("two_opt/" + case_name(n), repeats,
                   [&] {
                     improved = start;
                     bc::tsp::two_opt(pts, improved);
                   })
        .metric("tour_len_before", len_before)
        .metric("tour_len_after", bc::tsp::tour_length(pts, improved));

    reporter
        .time_case("or_opt/" + case_name(n), repeats,
                   [&] {
                     improved = start;
                     bc::tsp::or_opt(pts, improved);
                   })
        .metric("tour_len_after", bc::tsp::tour_length(pts, improved));
  }
  reporter.write(out_dir, threads);
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Hot-kernel perf benches; writes BENCH_<kernel>.json per kernel.");
  flags.define_string("out-dir", ".", "directory for BENCH_<kernel>.json");
  flags.define_int("repeats", 5, "timed repetitions per case (min is kept)");
  flags.define_int("threads", 1,
                   "worker threads (acceptance numbers use 1; counters are "
                   "identical at every thread count)");
  bc::bench::define_obs_flags(flags);
  if (!flags.parse(argc, argv, std::cerr)) return 2;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats"));
  bc::support::set_thread_count(threads);
  const std::string out_dir = flags.get_string("out-dir");

  bench_candidates(out_dir, repeats, threads);
  bench_exact_cover(out_dir, repeats, threads);
  bench_tsp_improve(out_dir, repeats, threads);
  return 0;
}
