// Metric-dispatch overhead gate: the MetricSpace abstraction must not tax
// the Euclidean hot path.
//
// The repo-wide convention is that a null metric pointer *is* Euclidean —
// net::metric_distance folds the null check into a predicted branch ahead
// of the inline geometry::distance call, so pre-metric code keeps its
// exact FP sequence and its speed. This bench measures that claim on the
// n=300 TSP-improvement kernel (the hottest distance consumer) and on a
// raw pairwise distance-sum loop, comparing in one process:
//
//   null      metric == nullptr            (the production fast path)
//   virtual   &EuclideanMetric::instance() (full virtual dispatch)
//
// Both paths must return bit-identical results, and the virtual path must
// stay within --max-ratio (default 1.05) of the null path — the dispatch
// overhead itself, measured in one process so shared-runner noise cancels
// instead of flaking the way a cross-machine wall-clock diff at 5% would.
// The null path needs no in-process reference: it *is* the pre-metric
// inline code (same FP sequence, same instructions), so its absolute cost
// is guarded by the committed n=300 kernel baselines that
// check_bench_regression.py already diffs in the same CI job.
//
// Exit status: 0 = within the gate, 1 = overhead above --max-ratio or a
// result mismatch, 2 = bad flags.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/metric.h"
#include "support/cli.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/tour.h"

namespace {

using bc::geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  bc::support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

// Minimum wall time over `repeats` runs — the least noisy estimator of
// the true kernel cost on a shared machine (same policy as
// BenchReporter::time_case, which keeps its minimum private).
template <typename Fn>
double min_wall_ms(std::size_t repeats, Fn&& fn) {
  double best_ms = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

// Pairwise distance sum through the metric_distance idiom; isolates the
// per-call dispatch cost from the 2-opt bookkeeping around it.
double distance_sum(const std::vector<Point2>& pts,
                    const bc::net::MetricSpace* metric) {
  double total = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      total += bc::net::metric_distance(metric, pts[i], pts[j]);
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Euclidean metric-dispatch overhead gate (null pointer vs virtual "
      "EuclideanMetric); writes BENCH_metric_dispatch.json.");
  flags.define_string("out-dir", ".", "directory for the JSON report");
  flags.define_int("repeats", 15, "timed repetitions per case (min is kept)");
  flags.define_int("n", 300, "kernel size (matches the committed baselines)");
  flags.define_double("max-ratio", 1.05,
                      "gate: virtual Euclidean dispatch must stay within "
                      "this factor of the null-metric fast path");
  if (!flags.parse(argc, argv, std::cerr)) return 2;
  if (flags.help_requested()) return 0;

  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats"));
  const double max_ratio = flags.get_double("max-ratio");
  const std::string out_dir = flags.get_string("out-dir");
  bc::support::set_thread_count(1);  // single-threaded kernels; no pool noise

  const std::vector<Point2> pts = random_points(n, 2000 + n);
  const bc::tsp::Tour start = bc::tsp::nearest_neighbor_tour(pts, 0);
  const bc::net::EuclideanMetric& euclid = bc::net::EuclideanMetric::instance();

  bc::tsp::ImproveOptions null_options;  // metric == nullptr
  bc::tsp::ImproveOptions virtual_options;
  virtual_options.metric = &euclid;

  bc::tsp::Tour null_tour;
  const double null_ms = min_wall_ms(repeats, [&] {
    null_tour = start;
    bc::tsp::two_opt(pts, null_tour, null_options);
  });
  bc::tsp::Tour virtual_tour;
  const double virtual_ms = min_wall_ms(repeats, [&] {
    virtual_tour = start;
    bc::tsp::two_opt(pts, virtual_tour, virtual_options);
  });

  double null_sum = 0.0;
  const double raw_null_ms =
      min_wall_ms(repeats, [&] { null_sum = distance_sum(pts, nullptr); });
  double virtual_sum = 0.0;
  const double raw_virtual_ms =
      min_wall_ms(repeats, [&] { virtual_sum = distance_sum(pts, &euclid); });

  const double two_opt_ratio = virtual_ms / null_ms;
  const double raw_ratio = raw_virtual_ms / raw_null_ms;
  const std::string suffix = "/n=" + std::to_string(n);

  bc::bench::BenchReporter reporter("metric_dispatch");
  reporter.add_case("two_opt_null" + suffix, null_ms, repeats)
      .metric("tour_len", bc::tsp::tour_length(pts, null_tour));
  reporter.add_case("two_opt_virtual" + suffix, virtual_ms, repeats)
      .metric("tour_len", bc::tsp::tour_length(pts, virtual_tour))
      .metric("virtual_over_null", two_opt_ratio);
  reporter.add_case("distance_sum_null" + suffix, raw_null_ms, repeats)
      .metric("sum_m", null_sum);
  reporter.add_case("distance_sum_virtual" + suffix, raw_virtual_ms, repeats)
      .metric("sum_m", virtual_sum)
      .metric("virtual_over_null", raw_ratio);
  reporter.write(out_dir, 1);

  // Differential check: both dispatch paths must be bit-identical.
  if (null_tour != virtual_tour) {
    std::cerr << "FAIL: null-metric and virtual-Euclidean two_opt tours "
                 "diverged\n";
    return 1;
  }
  if (null_sum != virtual_sum) {
    std::cerr << "FAIL: null-metric and virtual-Euclidean distance sums "
                 "diverged\n";
    return 1;
  }

  // The gate: explicit virtual dispatch must not cost more than
  // max_ratio x the inline null fast path on either kernel. (Virtual
  // being *faster* is fine — that is code-layout noise, not overhead.)
  if (virtual_ms > max_ratio * null_ms ||
      raw_virtual_ms > max_ratio * raw_null_ms) {
    std::cerr << "FAIL: virtual Euclidean dispatch exceeds " << max_ratio
              << "x the null fast path (two_opt " << virtual_ms << " vs "
              << null_ms << " ms, distance_sum " << raw_virtual_ms << " vs "
              << raw_null_ms << " ms)\n";
    return 1;
  }
  std::cout << "dispatch gate passed (max-ratio " << max_ratio << ")\n";
  return 0;
}
