// Fig. 6 — "An illustration of the trade-off in bundle charging."
//
// (a) trajectory length falls and total charging time rises as the bundle
//     radius grows;
// (b) total energy first falls, reaches an interior optimum, then rises.
//
// The paper runs this on its §VI-A setting; we sweep a wide radius range
// so the full U-curve of (b) is visible (with the energy-conserving
// charging-cost reading the optimum sits at a larger radius than the
// paper's axis; see EXPERIMENTS.md for the calibration discussion, and
// pass --cost-multiplier=4 to shift the optimum into the 20-40 m range).

#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Fig. 6: bundle-radius trade-off for the BC algorithm");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 100, "number of sensors");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));

  std::cout << "=== Fig. 6: trade-off between moving cost and charging cost "
               "(BC, n = "
            << n << ", " << flags.get_int("runs") << " runs/point) ===\n\n";

  bc::support::Table table({"radius [m]", "bundles", "tour [m]",
                            "charge time [s]", "move energy [J]",
                            "charge energy [J]", "total energy [J]"});
  const std::vector<double> radii{5,  10, 20,  40,  60,  80, 100,
                                  130, 160, 200, 250, 300};
  double best_energy = 0.0;
  double best_radius = 0.0;
  for (const double r : radii) {
    const auto agg = bc::sim::run_experiment(bc::bench::spec_from_flags(
        flags, profile, n, bc::tour::Algorithm::kBc, r));
    const double energy = agg.total_energy_j.mean();
    if (best_radius == 0.0 || energy < best_energy) {
      best_energy = energy;
      best_radius = r;
    }
    table.add_row({bc::support::Table::num(r, 0),
                   bc::support::Table::num(agg.num_stops.mean(), 1),
                   bc::support::Table::num(agg.tour_length_m.mean(), 0),
                   bc::support::Table::num(agg.charge_time_s.mean(), 0),
                   bc::support::Table::num(agg.move_energy_j.mean(), 0),
                   bc::support::Table::num(agg.charge_energy_j.mean(), 0),
                   bc::support::Table::num(energy, 0)});
  }
  bc::bench::print_table(flags, table);
  std::cout << "\nFig. 6(a) shape: tour length monotonically falls, charging "
               "time rises.\n"
            << "Fig. 6(b) shape: interior optimum at r ~ " << best_radius
            << " m (total " << bc::support::Table::num(best_energy, 0)
            << " J).\n";
  return 0;
}
