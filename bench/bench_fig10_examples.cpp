// Fig. 10 — "A network configuration with 50 nodes and three running
// examples."
//
// The paper shows one 50-node deployment planned at a small, medium and
// large bundle radius; the black line is the BC tour, the dotted red line
// the BC-OPT tour. This bench prints the same three configurations as
// coordinate listings (sensors, anchors, tours) plus summary metrics, so
// the plots can be regenerated with any plotting tool.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "viz/plan_render.h"

namespace {

void print_plan(const bc::net::Deployment& deployment,
                const bc::core::PlanResult& result) {
  const auto& plan = result.plan;
  std::cout << "  " << plan.algorithm << ": " << plan.stops.size()
            << " stops, tour "
            << bc::support::Table::num(result.metrics.tour_length_m, 1)
            << " m, total energy "
            << bc::support::Table::num(result.metrics.total_energy_j, 0)
            << " J\n    tour: depot(" << plan.depot.x << "," << plan.depot.y
            << ")";
  for (const auto& stop : plan.stops) {
    std::cout << " -> (" << bc::support::Table::num(stop.position.x, 1) << ","
              << bc::support::Table::num(stop.position.y, 1) << ")x"
              << stop.members.size();
  }
  std::cout << " -> depot\n";
  (void)deployment;
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Fig. 10: three running examples on one 50-node configuration");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 50, "number of sensors");
  flags.define_bool("dump-sensors", false,
                    "also print the sensor coordinates");
  flags.define_string("svg-dir", "",
                      "when set, also write fig10_r<r>.svg plots "
                      "(BC solid black, BC-OPT dashed red) there");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  std::cout << "=== Fig. 10: running examples, " << deployment.size()
            << " nodes ===\n";
  if (flags.get_bool("dump-sensors")) {
    std::cout << "sensors:";
    for (const auto& s : deployment.sensors()) {
      std::cout << " (" << bc::support::Table::num(s.position.x, 1) << ","
                << bc::support::Table::num(s.position.y, 1) << ")";
    }
    std::cout << "\n";
  }

  // Small / medium / large bundle radii as in Fig. 10(a)-(c).
  for (const double r : std::vector<double>{5.0, 40.0, 120.0}) {
    bc::core::BundleChargingPlanner planner(profile);
    planner.mutable_profile().planner.bundle_radius = r;
    std::cout << "\n-- configuration r = " << r << " m --\n";
    const auto bc_result = planner.plan(deployment, bc::tour::Algorithm::kBc);
    const auto opt_result =
        planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
    print_plan(deployment, bc_result);
    print_plan(deployment, opt_result);
    const std::string& svg_dir = flags.get_string("svg-dir");
    if (!svg_dir.empty()) {
      const std::string path = svg_dir + "/fig10_r" +
                               bc::support::Table::num(r, 0) + ".svg";
      const auto canvas = bc::viz::render_plan_pair(
          deployment, bc_result.plan, opt_result.plan);
      std::cout << (canvas.write_file(path) ? "  wrote " : "  FAILED to write ")
                << path << "\n";
    }
  }
  std::cout << "\nAs in the paper: at a small radius BC-OPT behaves like SC "
               "(one stop per sensor, anchors slid toward the tour); larger "
               "radii cut the stop count and tour length sharply.\n";
  return 0;
}
