// Shared plumbing for the figure-reproduction benches: flag wiring for the
// paper's experimental setting (§VI-A) and experiment-spec construction.

#ifndef BUNDLECHARGE_BENCH_BENCH_UTIL_H_
#define BUNDLECHARGE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <string>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/parallel.h"
#include "support/table.h"

namespace bc::bench {

// Declares the flags every simulation bench shares. The defaults follow
// §VI-A; `runs` defaults below the paper's 100 to keep a full bench suite
// run fast — pass --runs=100 for paper-strength averaging.
inline void define_common_flags(support::CliFlags& flags) {
  flags.define_int("runs", 25, "seeded repetitions per data point");
  flags.define_int("seed", 2019, "base RNG seed");
  flags.define_double("field", 1000.0, "square field side length (m)");
  flags.define_double(
      "cost-multiplier", 1.0,
      "charger electrical draw as a multiple of radiated power "
      "(1 = energy-conserving reading of the paper; ~4 = realistic PA)");
  flags.define_bool("csv", false, "emit CSV instead of an aligned table");
  flags.define_int("threads", 0,
                   "worker threads (0 = BC_THREADS env or hardware); "
                   "results are identical at every thread count");
}

// Builds the ICDCS'19 profile honouring the common flags, and applies the
// requested thread count to the global pool so every stage of the bench
// (experiment sweeps and the planners inside them) uses it.
inline core::Profile profile_from_flags(const support::CliFlags& flags) {
  support::set_thread_count(
      static_cast<std::size_t>(flags.get_int("threads")));
  core::Profile profile = core::icdcs2019_simulation_profile();
  const double side = flags.get_double("field");
  profile.field.field = {{0.0, 0.0}, {side, side}};
  const double mult = flags.get_double("cost-multiplier");
  profile.planner.charging =
      charging::ChargingModel(36.0, 30.0, 3.0, 3.0 * mult);
  profile.evaluation.charging = profile.planner.charging;
  return profile;
}

inline sim::ExperimentSpec spec_from_flags(const support::CliFlags& flags,
                                           const core::Profile& profile,
                                           std::size_t n,
                                           tour::Algorithm algorithm,
                                           double radius) {
  sim::ExperimentSpec spec;
  spec.make_deployment = sim::uniform_factory(n, profile.field);
  spec.algorithm = algorithm;
  spec.planner = profile.planner;
  spec.planner.bundle_radius = radius;
  spec.evaluation = profile.evaluation;
  spec.runs = static_cast<std::size_t>(flags.get_int("runs"));
  spec.base_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  return spec;
}

inline void print_table(const support::CliFlags& flags,
                        const support::Table& table) {
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace bc::bench

#endif  // BUNDLECHARGE_BENCH_BENCH_UTIL_H_
