// Shared plumbing for the figure-reproduction benches: flag wiring for the
// paper's experimental setting (§VI-A) and experiment-spec construction.

#ifndef BUNDLECHARGE_BENCH_BENCH_UTIL_H_
#define BUNDLECHARGE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "core/bundlecharge.h"
#include "sim/checkpoint.h"
#include "support/atomic_file.h"
#include "support/cli.h"
#include "support/deadline.h"
#include "support/parallel.h"
#include "support/table.h"

namespace bc::bench {

// Declares the flags every simulation bench shares. The defaults follow
// §VI-A; `runs` defaults below the paper's 100 to keep a full bench suite
// run fast — pass --runs=100 for paper-strength averaging.
inline void define_common_flags(support::CliFlags& flags) {
  flags.define_int("runs", 25, "seeded repetitions per data point");
  flags.define_int("seed", 2019, "base RNG seed");
  flags.define_double("field", 1000.0, "square field side length (m)");
  flags.define_double(
      "cost-multiplier", 1.0,
      "charger electrical draw as a multiple of radiated power "
      "(1 = energy-conserving reading of the paper; ~4 = realistic PA)");
  flags.define_bool("csv", false, "emit CSV instead of an aligned table");
  flags.define_int("threads", 0,
                   "worker threads (0 = BC_THREADS env or hardware); "
                   "results are identical at every thread count");
  support::define_budget_flags(flags);  // --deadline, --node-budget
  flags.define_string(
      "checkpoint", "",
      "journal completed (config, run) cells to <dir>/<bench>.ckpt; an "
      "existing journal is resumed (completed cells are not recomputed)");
  flags.define_string(
      "resume", "",
      "like --checkpoint, but the journal must already exist — guards "
      "against typos silently starting a sweep from scratch");
}

// Builds the ICDCS'19 profile honouring the common flags, and applies the
// requested thread count to the global pool so every stage of the bench
// (experiment sweeps and the planners inside them) uses it.
inline core::Profile profile_from_flags(const support::CliFlags& flags) {
  support::set_thread_count(
      static_cast<std::size_t>(flags.get_int("threads")));
  core::Profile profile = core::icdcs2019_simulation_profile();
  const double side = flags.get_double("field");
  profile.field.field = {{0.0, 0.0}, {side, side}};
  const double mult = flags.get_double("cost-multiplier");
  profile.planner.charging =
      charging::ChargingModel(36.0, 30.0, 3.0, 3.0 * mult);
  profile.evaluation.charging = profile.planner.charging;
  // Per-planning-call budget (--deadline / --node-budget): every solver
  // stage inside each experiment cell degrades anytime-style instead of
  // hanging. Node caps keep cells deterministic; deadlines do not.
  profile.planner.budget = support::budget_from_flags(flags);
  return profile;
}

inline sim::ExperimentSpec spec_from_flags(const support::CliFlags& flags,
                                           const core::Profile& profile,
                                           std::size_t n,
                                           tour::Algorithm algorithm,
                                           double radius) {
  sim::ExperimentSpec spec;
  spec.make_deployment = sim::uniform_factory(n, profile.field);
  spec.algorithm = algorithm;
  spec.planner = profile.planner;
  spec.planner.bundle_radius = radius;
  spec.evaluation = profile.evaluation;
  spec.runs = static_cast<std::size_t>(flags.get_int("runs"));
  spec.base_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  return spec;
}

// Compact float formatting for sweep ids and cell keys ("20", not
// "20.000000").
inline std::string num_token(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Fingerprints every result-affecting flag plus the bench's own parameters
// (`extra`) into a whitespace-free sweep id. Threads and output format are
// excluded: they never change results. A journal written under a
// different id refuses to resume — cached cells from another
// configuration would silently poison the sweep.
inline std::string sweep_id_from_flags(const support::CliFlags& flags,
                                       const std::string& bench_name,
                                       const std::string& extra = "") {
  std::string id = bench_name;
  id += "|runs=" + std::to_string(flags.get_int("runs"));
  id += "|seed=" + std::to_string(flags.get_int("seed"));
  id += "|field=" + num_token(flags.get_double("field"));
  id += "|cost=" + num_token(flags.get_double("cost-multiplier"));
  id += "|deadline=" + num_token(flags.get_double("deadline"));
  id += "|node-budget=" + std::to_string(flags.get_int("node-budget"));
  if (!extra.empty()) id += "|" + extra;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", support::crc32(id));
  return bench_name + "-" + buf;
}

// Journal + cancellation state for one bench process.
struct SweepControl {
  std::optional<sim::CheckpointJournal> journal;
  support::CancelToken cancel{};
  bool enabled() const { return journal.has_value(); }
};

// Honours --checkpoint/--resume: opens (or creates) <dir>/<bench>.ckpt
// and installs SIGINT/SIGTERM -> cancel, so an interrupt flushes the
// journal and exits cleanly instead of losing the sweep. Prints a
// diagnostic and exits on an unusable journal.
inline SweepControl sweep_control_from_flags(const support::CliFlags& flags,
                                             const std::string& bench_name,
                                             const std::string& extra_id) {
  SweepControl control;
  const std::string resume_dir = flags.get_string("resume");
  const std::string dir =
      resume_dir.empty() ? flags.get_string("checkpoint") : resume_dir;
  if (dir.empty()) return control;
  const std::string path = dir + "/" + bench_name + ".ckpt";
  if (!resume_dir.empty() && !support::file_exists(path)) {
    std::cerr << "--resume: no journal at " << path << "\n";
    std::exit(1);
  }
  auto journal = sim::CheckpointJournal::open(
      path, sweep_id_from_flags(flags, bench_name, extra_id));
  if (!journal.has_value()) {
    std::cerr << support::describe(journal.fault()) << "\n";
    std::exit(1);
  }
  control.journal.emplace(std::move(journal.value()));
  support::cancel_on_signals(control.cancel);
  return control;
}

// One configuration cell's aggregate, journaled and resumable when
// `control` is enabled. A cancelled sweep exits 130 (like an interrupted
// shell command) with all completed cells flushed for --resume.
inline sim::AggregateMetrics run_cells(SweepControl& control,
                                       const sim::ExperimentSpec& spec,
                                       const std::string& cell_prefix) {
  if (!control.enabled()) return sim::run_experiment(spec);
  sim::ExperimentControl ctl;
  ctl.journal = &control.journal.value();
  ctl.cell_prefix = cell_prefix;
  ctl.cancel = control.cancel;
  auto result = sim::run_experiment_resumable(spec, ctl);
  if (!result.has_value()) {
    std::cerr << "\n" << support::describe(result.fault()) << "\n";
    std::exit(result.fault().kind == support::FaultKind::kBudgetExhausted
                  ? 130
                  : 1);
  }
  return result.value();
}

inline void print_table(const support::CliFlags& flags,
                        const support::Table& table) {
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace bc::bench

#endif  // BUNDLECHARGE_BENCH_BENCH_UTIL_H_
