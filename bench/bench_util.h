// Shared plumbing for the figure-reproduction benches: flag wiring for the
// paper's experimental setting (§VI-A) and experiment-spec construction.

#ifndef BUNDLECHARGE_BENCH_BENCH_UTIL_H_
#define BUNDLECHARGE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bundlecharge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/checkpoint.h"
#include "support/atomic_file.h"
#include "support/cli.h"
#include "support/deadline.h"
#include "support/parallel.h"
#include "support/table.h"

namespace bc::bench {

// Observability flags shared by every bench binary. Kept separate from
// define_common_flags so benches with bespoke flag sets (the perf
// kernels) can opt in without the simulation flags.
inline void define_obs_flags(support::CliFlags& flags) {
  flags.define_string("trace-out", "",
                      "write a JSONL trace journal of the run to this path");
  flags.define_string("metrics-out", "",
                      "write the merged metrics snapshot (JSON) to this path");
  flags.define_string(
      "trace-clock", "steady",
      "trace timestamp source: steady (wall time) or virtual (logical "
      "ticks; byte-stable across runs and thread counts)");
}

// Honours --trace-out/--metrics-out/--trace-clock for the lifetime of the
// object: installs a trace journal while alive, writes the journal and the
// metrics snapshot on destruction. Declare one at the top of main(), after
// flag parsing.
class ObsControl {
 public:
  explicit ObsControl(const support::CliFlags& flags)
      : trace_path_(flags.get_string("trace-out")),
        metrics_path_(flags.get_string("metrics-out")) {
    const std::string clock = flags.get_string("trace-clock");
    if (clock != "steady" && clock != "virtual") {
      std::cerr << "--trace-clock must be 'steady' or 'virtual', got '"
                << clock << "'\n";
      std::exit(2);
    }
    if (!trace_path_.empty()) {
      journal_.emplace(clock == "virtual"
                           ? std::make_unique<obs::VirtualTraceClock>()
                           : nullptr);
      scope_.emplace(journal_.value());
    }
  }

  ~ObsControl() {
    if (journal_.has_value()) {
      scope_.reset();  // uninstall before serialising
      auto written = journal_->write(trace_path_);
      if (!written.has_value()) {
        std::cerr << support::describe(written.fault()) << "\n";
      }
    }
    if (!metrics_path_.empty()) {
      auto written = obs::write_metrics_json(
          metrics_path_, obs::global_metrics().snapshot());
      if (!written.has_value()) {
        std::cerr << support::describe(written.fault()) << "\n";
      }
    }
  }

  ObsControl(const ObsControl&) = delete;
  ObsControl& operator=(const ObsControl&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::optional<obs::TraceJournal> journal_;
  std::optional<obs::ScopedTraceJournal> scope_;
};

// Declares the flags every simulation bench shares. The defaults follow
// §VI-A; `runs` defaults below the paper's 100 to keep a full bench suite
// run fast — pass --runs=100 for paper-strength averaging.
inline void define_common_flags(support::CliFlags& flags) {
  flags.define_int("runs", 25, "seeded repetitions per data point");
  flags.define_int("seed", 2019, "base RNG seed");
  flags.define_double("field", 1000.0, "square field side length (m)");
  flags.define_double(
      "cost-multiplier", 1.0,
      "charger electrical draw as a multiple of radiated power "
      "(1 = energy-conserving reading of the paper; ~4 = realistic PA)");
  flags.define_bool("csv", false, "emit CSV instead of an aligned table");
  flags.define_int("threads", 0,
                   "worker threads (0 = BC_THREADS env or hardware); "
                   "results are identical at every thread count");
  support::define_budget_flags(flags);  // --deadline, --node-budget
  flags.define_string(
      "checkpoint", "",
      "journal completed (config, run) cells to <dir>/<bench>.ckpt; an "
      "existing journal is resumed (completed cells are not recomputed)");
  flags.define_string(
      "resume", "",
      "like --checkpoint, but the journal must already exist — guards "
      "against typos silently starting a sweep from scratch");
  define_obs_flags(flags);  // --trace-out, --metrics-out, --trace-clock
}

// Builds the ICDCS'19 profile honouring the common flags, and applies the
// requested thread count to the global pool so every stage of the bench
// (experiment sweeps and the planners inside them) uses it.
inline core::Profile profile_from_flags(const support::CliFlags& flags) {
  support::set_thread_count(
      static_cast<std::size_t>(flags.get_int("threads")));
  core::Profile profile = core::icdcs2019_simulation_profile();
  const double side = flags.get_double("field");
  profile.field.field = {{0.0, 0.0}, {side, side}};
  const double mult = flags.get_double("cost-multiplier");
  profile.planner.charging =
      charging::ChargingModel(36.0, 30.0, 3.0, 3.0 * mult);
  profile.evaluation.charging = profile.planner.charging;
  // Per-planning-call budget (--deadline / --node-budget): every solver
  // stage inside each experiment cell degrades anytime-style instead of
  // hanging. Node caps keep cells deterministic; deadlines do not.
  profile.planner.budget = support::budget_from_flags(flags);
  return profile;
}

inline sim::ExperimentSpec spec_from_flags(const support::CliFlags& flags,
                                           const core::Profile& profile,
                                           std::size_t n,
                                           tour::Algorithm algorithm,
                                           double radius) {
  sim::ExperimentSpec spec;
  spec.make_deployment = sim::uniform_factory(n, profile.field);
  spec.algorithm = algorithm;
  spec.planner = profile.planner;
  spec.planner.bundle_radius = radius;
  spec.evaluation = profile.evaluation;
  spec.runs = static_cast<std::size_t>(flags.get_int("runs"));
  spec.base_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  return spec;
}

// Compact float formatting for sweep ids and cell keys ("20", not
// "20.000000").
inline std::string num_token(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Fingerprints every result-affecting flag plus the bench's own parameters
// (`extra`) into a whitespace-free sweep id. Threads and output format are
// excluded: they never change results. A journal written under a
// different id refuses to resume — cached cells from another
// configuration would silently poison the sweep.
inline std::string sweep_id_from_flags(const support::CliFlags& flags,
                                       const std::string& bench_name,
                                       const std::string& extra = "") {
  std::string id = bench_name;
  id += "|runs=" + std::to_string(flags.get_int("runs"));
  id += "|seed=" + std::to_string(flags.get_int("seed"));
  id += "|field=" + num_token(flags.get_double("field"));
  id += "|cost=" + num_token(flags.get_double("cost-multiplier"));
  id += "|deadline=" + num_token(flags.get_double("deadline"));
  id += "|node-budget=" + std::to_string(flags.get_int("node-budget"));
  if (!extra.empty()) id += "|" + extra;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", support::crc32(id));
  return bench_name + "-" + buf;
}

// Journal + cancellation state for one bench process.
struct SweepControl {
  std::optional<sim::CheckpointJournal> journal;
  support::CancelToken cancel{};
  bool enabled() const { return journal.has_value(); }
};

// Honours --checkpoint/--resume: opens (or creates) <dir>/<bench>.ckpt
// and installs SIGINT/SIGTERM -> cancel, so an interrupt flushes the
// journal and exits cleanly instead of losing the sweep. Prints a
// diagnostic and exits on an unusable journal.
inline SweepControl sweep_control_from_flags(const support::CliFlags& flags,
                                             const std::string& bench_name,
                                             const std::string& extra_id) {
  SweepControl control;
  const std::string resume_dir = flags.get_string("resume");
  const std::string dir =
      resume_dir.empty() ? flags.get_string("checkpoint") : resume_dir;
  if (dir.empty()) return control;
  const std::string path = dir + "/" + bench_name + ".ckpt";
  if (!resume_dir.empty() && !support::file_exists(path)) {
    std::cerr << "--resume: no journal at " << path << "\n";
    std::exit(1);
  }
  auto journal = sim::CheckpointJournal::open(
      path, sweep_id_from_flags(flags, bench_name, extra_id));
  if (!journal.has_value()) {
    std::cerr << support::describe(journal.fault()) << "\n";
    std::exit(1);
  }
  control.journal.emplace(std::move(journal.value()));
  support::cancel_on_signals(control.cancel);
  return control;
}

// One configuration cell's aggregate, journaled and resumable when
// `control` is enabled. A cancelled sweep exits 130 (like an interrupted
// shell command) with all completed cells flushed for --resume.
inline sim::AggregateMetrics run_cells(SweepControl& control,
                                       const sim::ExperimentSpec& spec,
                                       const std::string& cell_prefix) {
  if (!control.enabled()) return sim::run_experiment(spec);
  sim::ExperimentControl ctl;
  ctl.journal = &control.journal.value();
  ctl.cell_prefix = cell_prefix;
  ctl.cancel = control.cancel;
  auto result = sim::run_experiment_resumable(spec, ctl);
  if (!result.has_value()) {
    std::cerr << "\n" << support::describe(result.fault()) << "\n";
    std::exit(result.fault().kind == support::FaultKind::kBudgetExhausted
                  ? 130
                  : 1);
  }
  return result.value();
}

inline void print_table(const support::CliFlags& flags,
                        const support::Table& table) {
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// --- Perf-regression reporting ------------------------------------------
//
// Machine-readable micro-bench records: one `BENCH_<kernel>.json` file per
// kernel so the bench trajectory accumulates as CI artifacts and can be
// diffed against the committed baseline (`bench/baselines/`) by
// `tools/check_bench_regression.py`. Schema (see DESIGN.md §8):
//
//   {
//     "bench": "<kernel>",
//     "schema_version": 2,
//     "threads": <worker threads the run used>,
//     "cases": [
//       {"name": "n=300", "wall_ms": 12.345, "repeats": 5,
//        "counters": {"nodes_expanded": 50001},
//        "metrics": {"tour_len_after": 8123.4}}
//     ],
//     "observability": { ...obs::MetricsSnapshot::to_json()... }
//   }
//
// v2 added the "observability" block — the process-wide metrics snapshot
// at write time (deterministic integers, see src/obs/metrics.h). v1 files
// (no such block) remain readable by check_bench_regression.py.
//
// `wall_ms` is the minimum over `repeats` timed runs (minimum, not mean:
// it is the least noisy estimator of the true kernel cost on a shared
// machine). `counters` are exact integers (work done — nodes expanded,
// candidates enumerated, moves applied) and must be deterministic for a
// given build; `metrics` are informational doubles.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Case {
   public:
    Case& counter(const std::string& key, std::int64_t value) {
      counters_.emplace_back(key, value);
      return *this;
    }
    Case& metric(const std::string& key, double value) {
      metrics_.emplace_back(key, value);
      return *this;
    }

   private:
    friend class BenchReporter;
    std::string name_;
    double wall_ms_ = 0.0;
    std::size_t repeats_ = 0;
    std::vector<std::pair<std::string, std::int64_t>> counters_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  // Records one case; `wall_ms` should be the min over `repeats` runs.
  Case& add_case(const std::string& name, double wall_ms,
                 std::size_t repeats) {
    cases_.emplace_back();
    cases_.back().name_ = name;
    cases_.back().wall_ms_ = wall_ms;
    cases_.back().repeats_ = repeats;
    return cases_.back();
  }

  // Times `fn` `repeats` times and records the minimum wall time.
  template <typename Fn>
  Case& time_case(const std::string& name, std::size_t repeats, Fn&& fn) {
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return add_case(name, best_ms, repeats);
  }

  // Serialises to `<dir>/BENCH_<bench>.json` (atomic write) and echoes a
  // one-line summary per case to stdout.
  void write(const std::string& dir, std::size_t threads) const {
    std::string json = "{\n";
    json += "  \"bench\": \"" + bench_name_ + "\",\n";
    json += "  \"schema_version\": 2,\n";
    json += "  \"threads\": " + std::to_string(threads) + ",\n";
    json += "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      const Case& c = cases_[i];
      json += "    {\"name\": \"" + c.name_ + "\", ";
      json += "\"wall_ms\": " + fmt_double(c.wall_ms_, 3) + ", ";
      json += "\"repeats\": " + std::to_string(c.repeats_);
      json += json_map(c.counters_, "counters");
      json += json_map(c.metrics_, "metrics");
      json += "}";
      if (i + 1 < cases_.size()) json += ",";
      json += "\n";
      std::printf("%-24s %10.3f ms  (min of %zu)\n", c.name_.c_str(),
                  c.wall_ms_, c.repeats_);
    }
    json += "  ],\n";
    json += "  \"observability\": " +
            obs::global_metrics().snapshot().to_json("  ") + "\n}\n";
    const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    auto written = support::write_file_atomic(path, json);
    if (!written.has_value()) {
      std::cerr << support::describe(written.fault()) << "\n";
      std::exit(1);
    }
  }

 private:
  static std::string fmt_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string json_map(
      const std::vector<std::pair<std::string, std::int64_t>>& entries,
      const std::string& key) {
    if (entries.empty()) return "";
    std::string out = ", \"" + key + "\": {";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + entries[i].first +
             "\": " + std::to_string(entries[i].second);
    }
    return out + "}";
  }
  static std::string json_map(
      const std::vector<std::pair<std::string, double>>& entries,
      const std::string& key) {
    if (entries.empty()) return "";
    std::string out = ", \"" + key + "\": {";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + entries[i].first + "\": " + fmt_double(entries[i].second, 3);
    }
    return out + "}";
  }

  std::string bench_name_;
  std::vector<Case> cases_;
};

}  // namespace bc::bench

#endif  // BUNDLECHARGE_BENCH_BENCH_UTIL_H_
