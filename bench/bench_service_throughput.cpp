// Service-layer throughput bench: full HTTP round trips against an
// in-process bundlecharged server, covering the request shapes that
// dominate a deployment — health probes, cold plan solves, cached plan
// hits, incremental (patched) near-duplicate solves, and replans. Results
// are written as `BENCH_service_throughput.json` (schema: DESIGN.md §8)
// for the CI perf-smoke job to diff against `bench/baselines/`.
//
// `--saturate` instead runs the overload workload (one worker, a tiny
// queue, a deterministic shed burst) and writes
// `BENCH_service_saturation.json` — the fast-fail latency of a saturated
// daemon, with admission-control counters pinned exactly.
//
// Wall times are the minimum over --repeats runs. The counters come from
// the server's own stats endpoint bookkeeping (completed solves, cache
// hits/misses) and are deterministic per build: a drift means the service
// changed behaviour — e.g. a cache keying bug turning hits into misses —
// not just speed. The incremental case additionally self-gates the
// headline claim: the patched stream must be at least 3x faster than the
// same stream cold-solved, per-request medians.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/client.h"
#include "service/server.h"
#include "support/cli.h"

namespace {

using bc::service::Server;
using bc::service::ServerOptions;
using bc::service::ServerStats;

constexpr std::size_t kSensors = 40;
constexpr std::size_t kHealthRoundtrips = 200;
constexpr std::size_t kColdBodies = 8;
constexpr std::size_t kHotRoundtrips = 50;
constexpr std::size_t kReplanRoundtrips = 5;

std::string positions_line(std::size_t n, std::size_t salt) {
  std::string out = "positions=";
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + salt * 1000;
    out += std::to_string((j * 131 + 17) % 997) + "," +
           std::to_string((j * 197 + 5) % 991);
    if (i + 1 < n) out += ";";
  }
  out += "\n";
  return out;
}

std::string plan_body(std::size_t salt) {
  return "algorithm=BC\nradius=120\n" + positions_line(kSensors, salt) +
         "depot=0,0\n";
}

// n=300 deployment for the incremental case, with `moves` sensors nudged
// by small deterministic offsets per `round` — each round is a distinct
// fingerprint (cache miss) but a tiny, local diff from round-independent
// base positions (the salt-0 scatter).
constexpr std::size_t kIncrementalSensors = 300;
constexpr std::size_t kIncrementalMoves = 8;  // K <= 8 moved sensors
constexpr std::size_t kIncrementalRounds = 6;

std::string incremental_body(std::size_t round, std::size_t moves) {
  std::vector<long> xs(kIncrementalSensors);
  std::vector<long> ys(kIncrementalSensors);
  for (std::size_t i = 0; i < kIncrementalSensors; ++i) {
    xs[i] = static_cast<long>((i * 131 + 17) % 997);
    ys[i] = static_cast<long>((i * 197 + 5) % 991);
  }
  for (std::size_t m = 0; m < moves; ++m) {
    const std::size_t id = (round * 97 + m * 41 + 3) % kIncrementalSensors;
    xs[id] += static_cast<long>((round * 31 + m * 17) % 51) - 25;
    ys[id] += static_cast<long>((round * 13 + m * 29) % 51) - 25;
  }
  std::string out = "algorithm=BC\nradius=120\npositions=";
  for (std::size_t i = 0; i < kIncrementalSensors; ++i) {
    out += std::to_string(xs[i]) + "," + std::to_string(ys[i]);
    if (i + 1 < kIncrementalSensors) out += ";";
  }
  out += "\ndepot=0,0\n";
  return out;
}

std::unique_ptr<Server> must_start(ServerOptions options = {}) {
  auto server = Server::start(std::move(options));
  if (!server.has_value()) {
    std::cerr << "server start failed: " << server.fault().message << "\n";
    std::exit(1);
  }
  return std::move(server.value());
}

void must_request(std::uint16_t port, const std::string& method,
                  const std::string& path, const std::string& body,
                  int expected_status = 200) {
  auto response = bc::service::http_roundtrip(port, method, path, body);
  if (!response.has_value()) {
    std::cerr << "roundtrip failed: " << response.fault().message << "\n";
    std::exit(1);
  }
  if (response.value().status != expected_status) {
    std::cerr << "unexpected status " << response.value().status << " for "
              << method << " " << path << ": " << response.value().body
              << "\n";
    std::exit(1);
  }
}

// Integer field from the /statsz body (saturation setup polls the queue).
std::uint64_t statsz_u64(std::uint16_t port, const std::string& name) {
  auto response = bc::service::http_roundtrip(port, "GET", "/statsz", "");
  if (!response.has_value() || response.value().status != 200) {
    std::cerr << "statsz roundtrip failed\n";
    std::exit(1);
  }
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = response.value().body.find(needle);
  if (at == std::string::npos) {
    std::cerr << "statsz has no field " << name << "\n";
    std::exit(1);
  }
  return std::strtoull(response.value().body.c_str() + at + needle.size(),
                       nullptr, 10);
}

double median_ms(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void bench_service(const std::string& out_dir, std::size_t repeats,
                   std::size_t threads) {
  bc::bench::BenchReporter reporter("service_throughput");

  // Health probes: pure wire + dispatch overhead, no solver work.
  {
    auto server = must_start();
    reporter
        .time_case("healthz", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kHealthRoundtrips; ++i) {
                       must_request(server->port(), "GET", "/healthz", "");
                     }
                   })
        .counter("roundtrips",
                 static_cast<std::int64_t>(kHealthRoundtrips));
  }

  // Cold plan solves: a fresh (memory-only) server per repetition so every
  // request misses the cache and runs the full planning pipeline. The
  // incremental fast path is pinned off so this keeps measuring the pure
  // cold pipeline even though the salted bodies are near-duplicates.
  {
    ServerStats stats;
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      ServerOptions options;
      options.enable_incremental = false;
      auto server = must_start(options);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t salt = 0; salt < kColdBodies; ++salt) {
        must_request(server->port(), "POST", "/v1/plan", plan_body(salt));
      }
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = server->stats();
    }
    reporter.add_case("plan_cold", best_ms, repeats)
        .counter("completed", static_cast<std::int64_t>(stats.completed))
        .counter("cache_misses",
                 static_cast<std::int64_t>(stats.cache_misses))
        // Robustness counters, all deterministically zero in a healthy
        // unsaturated run: a nonzero value means the bench rig itself
        // started shedding, watchdog-killing, or losing journal writes —
        // behaviour drift the perf-smoke diff must flag.
        .counter("shed", static_cast<std::int64_t>(stats.shed))
        .counter("watchdog_kills",
                 static_cast<std::int64_t>(stats.watchdog_kills))
        .counter("cache_flush_failures",
                 static_cast<std::int64_t>(stats.cache_flush_failures))
        .counter("degraded_mode_entries",
                 static_cast<std::int64_t>(stats.degraded_mode_entries))
        .counter("fault_recoveries",
                 static_cast<std::int64_t>(stats.fault_recoveries));
  }

  // Cached plan hits: one server pre-warmed with a single body, then the
  // same request repeatedly — decode + serialize, no solving.
  {
    auto server = must_start();
    const std::string body = plan_body(0);
    must_request(server->port(), "POST", "/v1/plan", body);
    reporter
        .time_case("plan_hot", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kHotRoundtrips; ++i) {
                       must_request(server->port(), "POST", "/v1/plan", body);
                     }
                   })
        .counter("roundtrips", static_cast<std::int64_t>(kHotRoundtrips));
    const ServerStats stats = server->stats();
    // One miss from the warm-up; everything timed must have hit.
    if (stats.cache_misses != 1) {
      std::cerr << "plan_hot: expected 1 cache miss, saw "
                << stats.cache_misses << "\n";
      std::exit(1);
    }
  }

  // Replans: uncacheable by design (they depend on charger position and
  // per-sensor deficits), so every request solves.
  {
    auto server = must_start();
    const std::string body =
        plan_body(0) + "current=500,500\nremaining=0:1.5;5:0.5;9:2\n";
    reporter
        .time_case("replan", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kReplanRoundtrips; ++i) {
                       must_request(server->port(), "POST", "/v1/replan",
                                    body);
                     }
                   })
        .counter("roundtrips",
                 static_cast<std::int64_t>(kReplanRoundtrips));
  }

  // Incremental replans: a cold n=300 base, then kIncrementalRounds
  // near-duplicate bodies (K=8 moved sensors each) that must all ride the
  // patch-and-splice fast path. The case self-gates both the routing
  // (every mutated body patched, none fell back) and the headline claim:
  // per-request median latency at least 3x better than cold-solving the
  // identical mutated stream.
  {
    ServerStats stats;
    double best_ms = 0.0;
    std::vector<double> patched_samples;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      auto server = must_start();
      must_request(server->port(), "POST", "/v1/plan",
                   incremental_body(0, 0));  // cold base, becomes the anchor
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t round = 1; round <= kIncrementalRounds; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        must_request(server->port(), "POST", "/v1/plan",
                     incremental_body(round, kIncrementalMoves));
        const auto t1 = std::chrono::steady_clock::now();
        patched_samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = server->stats();
      if (stats.incremental_hits != kIncrementalRounds ||
          stats.incremental_fallbacks != 0) {
        std::cerr << "plan_incremental: expected " << kIncrementalRounds
                  << " patched solves, saw hits=" << stats.incremental_hits
                  << " fallbacks=" << stats.incremental_fallbacks << "\n";
        std::exit(1);
      }
    }

    // Cold reference: the same mutated stream with the fast path disabled.
    std::vector<double> cold_samples;
    {
      ServerOptions options;
      options.enable_incremental = false;
      auto server = must_start(options);
      must_request(server->port(), "POST", "/v1/plan", incremental_body(0, 0));
      for (std::size_t round = 1; round <= kIncrementalRounds; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        must_request(server->port(), "POST", "/v1/plan",
                     incremental_body(round, kIncrementalMoves));
        const auto t1 = std::chrono::steady_clock::now();
        cold_samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    }
    const double patched_median = median_ms(patched_samples);
    const double cold_median = median_ms(cold_samples);
    if (cold_median < 3.0 * patched_median) {
      std::cerr << "plan_incremental: fast path below the 3x bar "
                << "(cold median " << cold_median << " ms, patched median "
                << patched_median << " ms)\n";
      std::exit(1);
    }
    std::cerr << "plan_incremental: cold median " << cold_median
              << " ms vs patched median " << patched_median << " ms ("
              << cold_median / patched_median << "x)\n";
    reporter.add_case("plan_incremental", best_ms, repeats)
        .counter("completed", static_cast<std::int64_t>(stats.completed))
        .counter("cache_misses",
                 static_cast<std::int64_t>(stats.cache_misses))
        .counter("incremental_attempts",
                 static_cast<std::int64_t>(stats.incremental_attempts))
        .counter("incremental_hits",
                 static_cast<std::int64_t>(stats.incremental_hits))
        .counter("incremental_fallbacks",
                 static_cast<std::int64_t>(stats.incremental_fallbacks));
  }

  reporter.write(out_dir, threads);
}

// Overload workload: one worker and a four-slot queue, wedged by stalled
// requests (test-hooks stall_ms), then a serial burst of requests that
// must all be fast-failed with 503. Times the shed path — the latency an
// overloaded deployment's clients actually see — and pins the admission
// counters exactly: any drift in shed/accepted/completed means the
// admission-control or batching logic changed behaviour.
void bench_saturation(const std::string& out_dir, std::size_t repeats,
                      std::size_t threads) {
  constexpr int kStallMs = 1500;
  constexpr std::size_t kFillers = 4;   // == queue capacity
  constexpr std::size_t kProbes = 16;   // serial shed burst
  bc::bench::BenchReporter reporter("service_saturation");

  const std::string stall_body = "algorithm=BC\nradius=120\nstall_ms=" +
                                 std::to_string(kStallMs) + "\n" +
                                 positions_line(kSensors, 0) + "depot=0,0\n";
  const std::string probe_body = plan_body(9);

  double best_ms = 0.0;
  std::uint64_t shed = 0, accepted = 0, completed = 0, peak = 0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = kFillers;
    options.enable_test_hooks = true;
    auto server = must_start(options);
    const std::uint16_t port = server->port();

    // Wedge the single worker, then fill every queue slot. The holder must
    // be *popped* (accepted, queue drained) before the fillers start or a
    // filler would race it for the queue slot and be shed.
    std::thread holder([&] { must_request(port, "POST", "/v1/plan",
                                          stall_body); });
    while (statsz_u64(port, "accepted") < 1 ||
           statsz_u64(port, "queue_depth") > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<std::thread> fillers;
    for (std::size_t i = 0; i < kFillers; ++i) {
      fillers.emplace_back([&] { must_request(port, "POST", "/v1/plan",
                                              stall_body); });
      while (statsz_u64(port, "queue_depth") < i + 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    // The saturated daemon fast-fails the burst; stall requests carry
    // stall_ms so they never coalesce, and the serial probes each complete
    // (503) before the next starts, so batching never parks them either.
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kProbes; ++i) {
      must_request(port, "POST", "/v1/plan", probe_body, /*expected=*/503);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;

    holder.join();
    for (std::thread& t : fillers) t.join();
    shed = statsz_u64(port, "shed");
    accepted = statsz_u64(port, "accepted");
    completed = statsz_u64(port, "completed");
    peak = statsz_u64(port, "queue_depth_peak");
    if (shed != kProbes || accepted != 1 + kFillers ||
        completed != 1 + kFillers || peak != kFillers) {
      std::cerr << "saturation: counter drift (shed=" << shed
                << " accepted=" << accepted << " completed=" << completed
                << " queue_depth_peak=" << peak << ")\n";
      std::exit(1);
    }
  }

  reporter.add_case("shed_burst", best_ms, repeats)
      .counter("shed", static_cast<std::int64_t>(shed))
      .counter("accepted", static_cast<std::int64_t>(accepted))
      .counter("completed", static_cast<std::int64_t>(completed))
      .counter("queue_depth_peak", static_cast<std::int64_t>(peak));
  reporter.write(out_dir, threads);
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Planning-service throughput bench; writes "
      "BENCH_service_throughput.json (or BENCH_service_saturation.json "
      "with --saturate).");
  flags.define_string("out-dir", ".",
                      "directory for BENCH_service_throughput.json");
  flags.define_int("repeats", 5, "timed repetitions per case (min is kept)");
  flags.define_bool("saturate", false,
                    "run the overload/shed workload instead of throughput");
  bc::bench::define_obs_flags(flags);
  if (!flags.parse(argc, argv, std::cerr)) return 2;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats"));
  // Request handling forces solver parallel sections inline (per-request
  // metrics isolation), so thread count is not a knob here.
  if (flags.get_bool("saturate")) {
    // Each repetition holds a worker for kStallMs plus the queue drain, so
    // keep the overload workload to two repetitions regardless of
    // --repeats: the timed path (serial 503s) is cheap and stable.
    bench_saturation(flags.get_string("out-dir"),
                     std::min<std::size_t>(repeats, 2), /*threads=*/1);
  } else {
    bench_service(flags.get_string("out-dir"), repeats, /*threads=*/1);
  }
  return 0;
}
