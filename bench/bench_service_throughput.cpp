// Service-layer throughput bench: full HTTP round trips against an
// in-process bundlecharged server, covering the four request shapes that
// dominate a deployment — health probes, cold plan solves, cached plan
// hits, and replans. Results are written as `BENCH_service_throughput.json`
// (schema: DESIGN.md §8) for the CI perf-smoke job to diff against
// `bench/baselines/`.
//
// Wall times are the minimum over --repeats runs. The counters come from
// the server's own stats endpoint bookkeeping (completed solves, cache
// hits/misses) and are deterministic per build: a drift means the service
// changed behaviour — e.g. a cache keying bug turning hits into misses —
// not just speed.

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.h"
#include "service/client.h"
#include "service/server.h"
#include "support/cli.h"

namespace {

using bc::service::Server;
using bc::service::ServerOptions;
using bc::service::ServerStats;

constexpr std::size_t kSensors = 40;
constexpr std::size_t kHealthRoundtrips = 200;
constexpr std::size_t kColdBodies = 8;
constexpr std::size_t kHotRoundtrips = 50;
constexpr std::size_t kReplanRoundtrips = 5;

std::string positions_line(std::size_t n, std::size_t salt) {
  std::string out = "positions=";
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + salt * 1000;
    out += std::to_string((j * 131 + 17) % 997) + "," +
           std::to_string((j * 197 + 5) % 991);
    if (i + 1 < n) out += ";";
  }
  out += "\n";
  return out;
}

std::string plan_body(std::size_t salt) {
  return "algorithm=BC\nradius=120\n" + positions_line(kSensors, salt) +
         "depot=0,0\n";
}

std::unique_ptr<Server> must_start() {
  auto server = Server::start(ServerOptions{});
  if (!server.has_value()) {
    std::cerr << "server start failed: " << server.fault().message << "\n";
    std::exit(1);
  }
  return std::move(server.value());
}

void must_request(std::uint16_t port, const std::string& method,
                  const std::string& path, const std::string& body) {
  auto response = bc::service::http_roundtrip(port, method, path, body);
  if (!response.has_value()) {
    std::cerr << "roundtrip failed: " << response.fault().message << "\n";
    std::exit(1);
  }
  if (response.value().status != 200) {
    std::cerr << "unexpected status " << response.value().status << " for "
              << method << " " << path << ": " << response.value().body
              << "\n";
    std::exit(1);
  }
}

void bench_service(const std::string& out_dir, std::size_t repeats,
                   std::size_t threads) {
  bc::bench::BenchReporter reporter("service_throughput");

  // Health probes: pure wire + dispatch overhead, no solver work.
  {
    auto server = must_start();
    reporter
        .time_case("healthz", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kHealthRoundtrips; ++i) {
                       must_request(server->port(), "GET", "/healthz", "");
                     }
                   })
        .counter("roundtrips",
                 static_cast<std::int64_t>(kHealthRoundtrips));
  }

  // Cold plan solves: a fresh (memory-only) server per repetition so every
  // request misses the cache and runs the full planning pipeline.
  {
    ServerStats stats;
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      auto server = must_start();
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t salt = 0; salt < kColdBodies; ++salt) {
        must_request(server->port(), "POST", "/v1/plan", plan_body(salt));
      }
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = server->stats();
    }
    reporter.add_case("plan_cold", best_ms, repeats)
        .counter("completed", static_cast<std::int64_t>(stats.completed))
        .counter("cache_misses",
                 static_cast<std::int64_t>(stats.cache_misses))
        // Robustness counters, all deterministically zero in a healthy
        // unsaturated run: a nonzero value means the bench rig itself
        // started shedding, watchdog-killing, or losing journal writes —
        // behaviour drift the perf-smoke diff must flag.
        .counter("shed", static_cast<std::int64_t>(stats.shed))
        .counter("watchdog_kills",
                 static_cast<std::int64_t>(stats.watchdog_kills))
        .counter("cache_flush_failures",
                 static_cast<std::int64_t>(stats.cache_flush_failures))
        .counter("degraded_mode_entries",
                 static_cast<std::int64_t>(stats.degraded_mode_entries))
        .counter("fault_recoveries",
                 static_cast<std::int64_t>(stats.fault_recoveries));
  }

  // Cached plan hits: one server pre-warmed with a single body, then the
  // same request repeatedly — decode + serialize, no solving.
  {
    auto server = must_start();
    const std::string body = plan_body(0);
    must_request(server->port(), "POST", "/v1/plan", body);
    reporter
        .time_case("plan_hot", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kHotRoundtrips; ++i) {
                       must_request(server->port(), "POST", "/v1/plan", body);
                     }
                   })
        .counter("roundtrips", static_cast<std::int64_t>(kHotRoundtrips));
    const ServerStats stats = server->stats();
    // One miss from the warm-up; everything timed must have hit.
    if (stats.cache_misses != 1) {
      std::cerr << "plan_hot: expected 1 cache miss, saw "
                << stats.cache_misses << "\n";
      std::exit(1);
    }
  }

  // Replans: uncacheable by design (they depend on charger position and
  // per-sensor deficits), so every request solves.
  {
    auto server = must_start();
    const std::string body =
        plan_body(0) + "current=500,500\nremaining=0:1.5;5:0.5;9:2\n";
    reporter
        .time_case("replan", repeats,
                   [&] {
                     for (std::size_t i = 0; i < kReplanRoundtrips; ++i) {
                       must_request(server->port(), "POST", "/v1/replan",
                                    body);
                     }
                   })
        .counter("roundtrips",
                 static_cast<std::int64_t>(kReplanRoundtrips));
  }

  reporter.write(out_dir, threads);
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Planning-service throughput bench; writes "
      "BENCH_service_throughput.json.");
  flags.define_string("out-dir", ".",
                      "directory for BENCH_service_throughput.json");
  flags.define_int("repeats", 5, "timed repetitions per case (min is kept)");
  bc::bench::define_obs_flags(flags);
  if (!flags.parse(argc, argv, std::cerr)) return 2;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats"));
  // Request handling forces solver parallel sections inline (per-request
  // metrics isolation), so thread count is not a knob here.
  bench_service(flags.get_string("out-dir"), repeats, /*threads=*/1);
  return 0;
}
