// Ablation bench: quantifies the design choices called out in DESIGN.md.
//
//   1. Scheduling policy — isolated (paper reading) vs cumulative
//      (Eq. 3's cross-bundle accounting): how much charging time does
//      one-to-many credit actually save?
//   2. BC-OPT evaluation — conservative covering-circle bound (Theorem
//      4/5 setting) vs exact farthest-member evaluation.
//   3. Charging-cost reading — energy-conserving (cost = radiated power)
//      vs the paper's literal 0.9 J/min vs a realistic 25 %-efficient
//      power amplifier (cost = 4x radiated): where does the optimal
//      bundle radius land under each?

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "tour/anneal.h"

namespace {

double mean_energy(const bc::support::CliFlags& flags,
                   const bc::core::Profile& profile, std::size_t n,
                   bc::tour::Algorithm algorithm, double radius) {
  return bc::sim::run_experiment(
             bc::bench::spec_from_flags(flags, profile, n, algorithm, radius))
      .total_energy_j.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags("ablations for the DESIGN.md design choices");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 150, "number of sensors");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  const bc::core::Profile base = bc::bench::profile_from_flags(flags);

  // --- Ablation 1: scheduling policy -------------------------------------
  std::cout << "=== Ablation 1: scheduling policy (BC, n = " << n
            << ") — isolated (paper) vs cumulative vs the exact Eq. 3 LP "
               "===\n\n";
  bc::support::Table policy_table({"radius [m]", "isolated [J]",
                                   "cumulative [J]", "optimal LP [J]",
                                   "LP saving [%]"});
  for (const double r : std::vector<double>{20, 60, 120, 200}) {
    bc::core::Profile p = base;
    p.evaluation.policy = bc::sim::SchedulePolicy::kIsolated;
    const double iso = mean_energy(flags, p, n, bc::tour::Algorithm::kBc, r);
    p.evaluation.policy = bc::sim::SchedulePolicy::kCumulative;
    const double cum = mean_energy(flags, p, n, bc::tour::Algorithm::kBc, r);
    p.evaluation.policy = bc::sim::SchedulePolicy::kOptimalLp;
    const double opt = mean_energy(flags, p, n, bc::tour::Algorithm::kBc, r);
    policy_table.add_row({bc::support::Table::num(r, 0),
                          bc::support::Table::num(iso, 0),
                          bc::support::Table::num(cum, 0),
                          bc::support::Table::num(opt, 0),
                          bc::support::Table::num(
                              100.0 * (iso - opt) / iso, 1)});
  }
  bc::bench::print_table(flags, policy_table);

  // --- Ablation 2: BC-OPT candidate evaluation ---------------------------
  std::cout << "\n=== Ablation 2: BC-OPT conservative vs exact charging "
               "evaluation ===\n\n";
  bc::support::Table eval_table({"radius [m]", "BC [J]",
                                 "BC-OPT conservative [J]",
                                 "BC-OPT exact [J]"});
  for (const double r : std::vector<double>{10, 40, 80, 140}) {
    bc::core::Profile p = base;
    const double plain = mean_energy(flags, p, n, bc::tour::Algorithm::kBc, r);
    p.planner.opt.exact_charging_eval = false;
    const double cons =
        mean_energy(flags, p, n, bc::tour::Algorithm::kBcOpt, r);
    p.planner.opt.exact_charging_eval = true;
    const double exact =
        mean_energy(flags, p, n, bc::tour::Algorithm::kBcOpt, r);
    eval_table.add_row(
        {bc::support::Table::num(r, 0), bc::support::Table::num(plain, 0),
         bc::support::Table::num(cons, 0),
         bc::support::Table::num(exact, 0)});
  }
  bc::bench::print_table(flags, eval_table);

  // --- Ablation 3: charging-cost reading ---------------------------------
  std::cout << "\n=== Ablation 3: optimal BC radius under different "
               "charging-cost readings ===\n\n";
  struct Reading {
    const char* name;
    double cost_w;
  };
  const std::vector<Reading> readings{
      {"energy-conserving (3 W)", 3.0},
      {"paper literal (0.9 J/min)", 0.015},
      {"25% efficient PA (12 W)", 12.0},
  };
  bc::support::Table cost_table(
      {"reading", "best radius [m]", "BC energy at best [J]"});
  for (const Reading& reading : readings) {
    bc::core::Profile p = base;
    p.planner.charging =
        bc::charging::ChargingModel(36.0, 30.0, 3.0, reading.cost_w);
    p.evaluation.charging = p.planner.charging;
    double best_energy = 0.0;
    double best_radius = 0.0;
    for (const double r :
         std::vector<double>{5, 10, 20, 30, 40, 60, 90, 130, 180, 240}) {
      const double e = mean_energy(flags, p, n, bc::tour::Algorithm::kBc, r);
      if (best_radius == 0.0 || e < best_energy) {
        best_energy = e;
        best_radius = r;
      }
    }
    cost_table.add_row({reading.name, bc::support::Table::num(best_radius, 0),
                        bc::support::Table::num(best_energy, 0)});
  }
  bc::bench::print_table(flags, cost_table);
  std::cout << "\nReading 3 shows why the paper's interior optimum lands in "
               "its 5-40 m axis only when the charger's electrical draw "
               "well exceeds its radiated power.\n";

  // --- Ablation 4: the §II criticism, quantified ---------------------------
  std::cout << "\n=== Ablation 4: reach-only TSPN baseline [4, 6, 28] vs "
               "charging-aware stops ===\n\n";
  bc::support::Table tspn_table({"radius [m]", "TSPN [J]", "BC [J]",
                                 "BC-OPT [J]", "TSPN vs BC-OPT [%]"});
  for (const double r : std::vector<double>{20, 40, 80, 140}) {
    const double tspn =
        mean_energy(flags, base, n, bc::tour::Algorithm::kTspn, r);
    const double plain =
        mean_energy(flags, base, n, bc::tour::Algorithm::kBc, r);
    const double opt =
        mean_energy(flags, base, n, bc::tour::Algorithm::kBcOpt, r);
    tspn_table.add_row(
        {bc::support::Table::num(r, 0), bc::support::Table::num(tspn, 0),
         bc::support::Table::num(plain, 0), bc::support::Table::num(opt, 0),
         bc::support::Table::num(100.0 * (tspn - opt) / opt, 1)});
  }
  bc::bench::print_table(flags, tspn_table);
  std::cout << "\nTSPN merely reaches each neighbourhood (\"improper "
               "location leads to large charging cost\", §II) — its tours "
               "are shortest but BC-OPT's energy-aware stop placement wins "
               "on total energy.\n";

  // --- Ablation 5: how much does Algorithm 3's decomposition leave? ------
  std::cout << "\n=== Ablation 5: simulated-annealing joint optimisation "
               "headroom over BC-OPT ===\n\n";
  bc::support::Table anneal_table({"radius [m]", "BC-OPT [J]",
                                   "annealed [J]", "headroom [%]"});
  const auto anneal_runs =
      std::min<std::size_t>(8, static_cast<std::size_t>(flags.get_int("runs")));
  for (const double r : std::vector<double>{40, 80, 140}) {
    bc::support::RunningStat opt_stat;
    bc::support::RunningStat annealed_stat;
    for (std::size_t run = 0; run < anneal_runs; ++run) {
      bc::support::Rng rng(
          static_cast<std::uint64_t>(flags.get_int("seed")) + run);
      const bc::net::Deployment d =
          bc::net::uniform_random_deployment(n, base.field, rng);
      bc::tour::PlannerConfig cfg = base.planner;
      cfg.bundle_radius = r;
      const bc::tour::ChargingPlan opt = bc::tour::plan_bc_opt(d, cfg);
      bc::tour::AnnealOptions anneal_options;
      anneal_options.iterations = 60000;
      const bc::tour::AnnealResult res = bc::tour::anneal_plan(
          d, opt, base.planner.charging, base.planner.movement,
          anneal_options);
      opt_stat.add(res.initial_energy_j);
      annealed_stat.add(res.best_energy_j);
    }
    anneal_table.add_row(
        {bc::support::Table::num(r, 0),
         bc::support::Table::num(opt_stat.mean(), 0),
         bc::support::Table::num(annealed_stat.mean(), 0),
         bc::support::Table::num(100.0 * (opt_stat.mean() -
                                          annealed_stat.mean()) /
                                     opt_stat.mean(),
                                 1)});
  }
  bc::bench::print_table(flags, anneal_table);
  std::cout << "\nJointly optimising positions, assignment and order "
               "(NP-hard per Theorem 3) recovers a few more percent — the "
               "price of Algorithm 3's frozen bundle assignment.\n";
  return 0;
}
