// Fig. 14 — "An illustration of optimal radius, 200 nodes."
//
// BC vs BC-OPT swept over the bundle radius at the paper's densest
// setting (n = 200). Expected shapes: (a) tour length falls while total
// charging time rises; (b) BC's total energy is U-shaped with an interior
// optimum, and BC-OPT's advantage over BC is largest away from the
// optimum. (The paper sweeps 5-40 m; with the energy-conserving cost
// reading the optimum sits at a larger radius, so we sweep further — see
// EXPERIMENTS.md, and use --cost-multiplier=4 for an optimum inside the
// paper's axis range.)

#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("Fig. 14: optimal bundle radius at n = 200");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 200, "number of sensors");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));

  std::cout << "=== Fig. 14: optimal radius search (n = " << n << ", "
            << flags.get_int("runs") << " runs/point) ===\n\n";

  bc::support::Table table({"radius [m]", "BC tour [m]", "BC charge [s]",
                            "BC total [J]", "BC-OPT total [J]",
                            "OPT saving [%]"});
  double best_bc = 0.0;
  double best_bc_radius = 0.0;
  for (const double r :
       std::vector<double>{5, 10, 20, 40, 70, 100, 140, 180, 230, 280}) {
    const auto bc_agg = bc::sim::run_experiment(bc::bench::spec_from_flags(
        flags, profile, n, bc::tour::Algorithm::kBc, r));
    const auto opt_agg = bc::sim::run_experiment(bc::bench::spec_from_flags(
        flags, profile, n, bc::tour::Algorithm::kBcOpt, r));
    const double bc_total = bc_agg.total_energy_j.mean();
    const double opt_total = opt_agg.total_energy_j.mean();
    if (best_bc_radius == 0.0 || bc_total < best_bc) {
      best_bc = bc_total;
      best_bc_radius = r;
    }
    table.add_row(
        {bc::support::Table::num(r, 0),
         bc::support::Table::num(bc_agg.tour_length_m.mean(), 0),
         bc::support::Table::num(bc_agg.charge_time_s.mean(), 0),
         bc::support::Table::num(bc_total, 0),
         bc::support::Table::num(opt_total, 0),
         bc::support::Table::num(100.0 * (bc_total - opt_total) / bc_total,
                                 1)});
  }
  bc::bench::print_table(flags, table);
  std::cout << "\nBC optimum at r ~ " << best_bc_radius
            << " m; BC-OPT <= BC everywhere, with the largest relative "
               "savings away from the optimum.\n";
  return 0;
}
