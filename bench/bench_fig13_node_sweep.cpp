// Fig. 13 — "Different node numbers": the four algorithms swept over the
// network density at a fixed bundle radius.
//
// (a) total energy; (b) tour length; (c) average charging time per sensor.
//
// Expected shapes: SC degrades fastest as density grows (its tour scales
// with n); at n = 200 BC uses roughly half of SC's energy; BC-OPT stays
// the best throughout; CSS matches BC-OPT's tour length but not its
// charging time.

#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("Fig. 13: metrics vs number of sensors");
  bc::bench::define_common_flags(flags);
  flags.define_double("radius", 70.0, "bundle radius (m)");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  const double r = flags.get_double("radius");
  bc::bench::SweepControl control = bc::bench::sweep_control_from_flags(
      flags, "fig13", "radius=" + bc::bench::num_token(r));
  constexpr bc::tour::Algorithm kAlgorithms[] = {
      bc::tour::Algorithm::kSc, bc::tour::Algorithm::kCss,
      bc::tour::Algorithm::kBc, bc::tour::Algorithm::kBcOpt};

  std::cout << "=== Fig. 13: node sweep (r = " << r << " m, "
            << flags.get_int("runs") << " runs/point) ===\n\n";

  bc::support::Table energy({"nodes", "SC", "CSS", "BC", "BC-OPT"});
  bc::support::Table tour({"nodes", "SC", "CSS", "BC", "BC-OPT"});
  bc::support::Table charge({"nodes", "SC", "CSS", "BC", "BC-OPT"});
  for (const std::size_t n : std::vector<std::size_t>{40, 80, 120, 160, 200}) {
    std::vector<std::string> row_e{
        bc::support::Table::num(static_cast<long long>(n))};
    std::vector<std::string> row_t = row_e;
    std::vector<std::string> row_c = row_e;
    for (const auto algorithm : kAlgorithms) {
      const auto agg = bc::bench::run_cells(
          control, bc::bench::spec_from_flags(flags, profile, n, algorithm, r),
          "n=" + std::to_string(n) + "_alg=" +
              std::string(bc::tour::to_string(algorithm)));
      row_e.push_back(bc::support::Table::num(agg.total_energy_j.mean(), 0));
      row_t.push_back(bc::support::Table::num(agg.tour_length_m.mean(), 0));
      row_c.push_back(bc::support::Table::num(
          agg.avg_charge_time_per_sensor_s.mean(), 1));
    }
    energy.add_row(row_e);
    tour.add_row(row_t);
    charge.add_row(row_c);
  }

  std::cout << "-- Fig. 13(a): total energy [J] --\n";
  bc::bench::print_table(flags, energy);
  std::cout << "\n-- Fig. 13(b): tour length [m] --\n";
  bc::bench::print_table(flags, tour);
  std::cout << "\n-- Fig. 13(c): average charging time per sensor [s] --\n";
  bc::bench::print_table(flags, charge);
  std::cout << "\nExpected: ordering BC-OPT < BC < CSS < SC in (a) with the "
               "SC gap widening as n grows; CSS ~ BC-OPT in (b) but worse "
               "in (c).\n";
  return 0;
}
