// Micro-benchmarks (google-benchmark) for the library's computational
// kernels: smallest enclosing disk, candidate enumeration, greedy cover,
// TSP solve, anchor search, and full end-to-end planning.

#include <benchmark/benchmark.h>

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "core/bundlecharge.h"
#include "geometry/anchor_search.h"
#include "geometry/minidisk.h"
#include "tsp/solver.h"

namespace {

using bc::geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed,
                                  double side = 1000.0) {
  bc::support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  }
  return pts;
}

bc::net::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  bc::support::Rng rng(seed);
  return bc::net::uniform_random_deployment(
      n, bc::core::icdcs2019_simulation_profile().field, rng);
}

void BM_MinDisk(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::geometry::smallest_enclosing_disk(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDisk)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

// Runs on the global pool; set BC_THREADS to measure parallel scaling
// (the enumerated candidate set is identical at every thread count).
void BM_CandidateEnumeration(benchmark::State& state) {
  const auto d = make_deployment(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::bundle::enumerate_candidates(d, 60.0));
  }
}
BENCHMARK(BM_CandidateEnumeration)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_GreedyCover(benchmark::State& state) {
  const auto d = make_deployment(static_cast<std::size_t>(state.range(0)), 3);
  const auto candidates = bc::bundle::enumerate_candidates(d, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::bundle::greedy_cover(d, candidates));
  }
}
BENCHMARK(BM_GreedyCover)->Arg(50)->Arg(100)->Arg(200);

void BM_TspSolve(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::tsp::solve_tsp(pts));
  }
}
BENCHMARK(BM_TspSolve)->Arg(12)->Arg(50)->Arg(100)->Arg(200);

void BM_AnchorSearch(benchmark::State& state) {
  const Point2 a{-100.0, 20.0};
  const Point2 b{80.0, -40.0};
  const Point2 center{10.0, 90.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bc::geometry::optimal_point_on_circle(a, b, center, 25.0));
  }
}
BENCHMARK(BM_AnchorSearch);

void BM_AnchorSearchBrute(benchmark::State& state) {
  const Point2 a{-100.0, 20.0};
  const Point2 b{80.0, -40.0};
  const Point2 center{10.0, 90.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::geometry::optimal_point_on_circle_brute(
        a, b, center, 25.0, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_AnchorSearchBrute)->Arg(1000)->Arg(20000);

void BM_PlanEndToEnd(benchmark::State& state) {
  const auto d = make_deployment(100, 5);
  const bc::core::BundleChargingPlanner planner(
      bc::core::icdcs2019_simulation_profile());
  const auto algorithm = static_cast<bc::tour::Algorithm>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(d, algorithm));
  }
  state.SetLabel(std::string(bc::tour::to_string(algorithm)));
}
BENCHMARK(BM_PlanEndToEnd)
    ->Arg(static_cast<int>(bc::tour::Algorithm::kSc))
    ->Arg(static_cast<int>(bc::tour::Algorithm::kCss))
    ->Arg(static_cast<int>(bc::tour::Algorithm::kBc))
    ->Arg(static_cast<int>(bc::tour::Algorithm::kBcOpt));

}  // namespace

BENCHMARK_MAIN();
