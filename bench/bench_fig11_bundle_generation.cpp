// Fig. 11 — "Different bundle generation."
//
// (a) number of generated bundles vs bundle radius, for the grid baseline
//     [8], the paper's greedy (Algorithm 2), and the exhaustive optimum;
// (b) number of bundles vs number of sensors at a fixed radius.
//
// Expected shapes: greedy tracks the optimum closely and clearly beats the
// grid at small radii; the gap narrows as the network densifies.

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "support/parallel.h"

namespace {

using bc::bundle::GeneratorKind;

// Each (instance, radius) cell derives its RNG stream from its own run
// index and lands in its own result slot, so the mean is bit-identical at
// every thread count (--threads / BC_THREADS only change wall-clock).
double mean_bundle_count(const bc::core::Profile& profile, std::size_t n,
                         double radius, GeneratorKind kind, std::size_t runs,
                         std::uint64_t base_seed) {
  const std::vector<double> counts = bc::support::parallel_map<double>(
      runs, /*grain=*/1, [&](std::size_t run) {
        bc::support::Rng rng(base_seed + run);
        const bc::net::Deployment d =
            bc::net::uniform_random_deployment(n, profile.field, rng);
        bc::bundle::GeneratorOptions options;
        options.kind = kind;
        return static_cast<double>(
            bc::bundle::generate_bundles(d, radius, options).size());
      });
  bc::support::RunningStat stat;
  for (const double count : counts) stat.add(count);
  return stat.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "Fig. 11: grid vs greedy vs optimal bundle generation");
  bc::bench::define_common_flags(flags);
  flags.define_int("nodes", 40,
                   "sensors for the radius sweep (kept small so the "
                   "exhaustive optimum stays tractable)");
  flags.define_double("radius", 60.0, "bundle radius for the node sweep");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  bc::bench::ObsControl obs(flags);

  const bc::core::Profile profile = bc::bench::profile_from_flags(flags);
  const auto runs = static_cast<std::size_t>(flags.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto n_sweep = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto bench_start = std::chrono::steady_clock::now();

  std::cout << "=== Fig. 11(a): bundles vs radius (n = " << n_sweep << ", "
            << runs << " runs/point) ===\n\n";
  bc::support::Table by_radius({"radius [m]", "grid", "greedy (Alg. 2)",
                                "sweep (ext.)", "optimal"});
  for (const double r : std::vector<double>{20, 40, 60, 90, 120, 160, 200}) {
    by_radius.add_row(
        {bc::support::Table::num(r, 0),
         bc::support::Table::num(
             mean_bundle_count(profile, n_sweep, r, GeneratorKind::kGrid,
                               runs, seed),
             1),
         bc::support::Table::num(
             mean_bundle_count(profile, n_sweep, r, GeneratorKind::kGreedy,
                               runs, seed),
             1),
         bc::support::Table::num(
             mean_bundle_count(profile, n_sweep, r, GeneratorKind::kSweep,
                               runs, seed),
             1),
         bc::support::Table::num(
             mean_bundle_count(profile, n_sweep, r, GeneratorKind::kExact,
                               runs, seed),
             1)});
  }
  bc::bench::print_table(flags, by_radius);

  const double r_fixed = flags.get_double("radius");
  std::cout << "\n=== Fig. 11(b): bundles vs node count (r = " << r_fixed
            << " m) ===\n\n";
  bc::support::Table by_nodes({"nodes", "grid", "greedy (Alg. 2)",
                               "sweep (ext.)", "optimal"});
  for (const std::size_t n : std::vector<std::size_t>{40, 80, 120, 160, 200}) {
    // The exhaustive optimum is exponential; cap it to the small end as
    // the paper implicitly does, reporting greedy on larger instances.
    const bool exact_ok = n <= 80;
    by_nodes.add_row(
        {bc::support::Table::num(static_cast<long long>(n)),
         bc::support::Table::num(
             mean_bundle_count(profile, n, r_fixed, GeneratorKind::kGrid,
                               runs, seed),
             1),
         bc::support::Table::num(
             mean_bundle_count(profile, n, r_fixed, GeneratorKind::kGreedy,
                               runs, seed),
             1),
         bc::support::Table::num(
             mean_bundle_count(profile, n, r_fixed, GeneratorKind::kSweep,
                               runs, seed),
             1),
         exact_ok ? bc::support::Table::num(
                        mean_bundle_count(profile, n, r_fixed,
                                          GeneratorKind::kExact, runs, seed),
                        1)
                  : std::string("(n/a)")});
  }
  bc::bench::print_table(flags, by_nodes);
  std::cout << "\nExpected shapes: greedy ~ optimal everywhere; grid "
               "overshoots most at small radii (Fig. 11(a)) and the "
               "advantage narrows with density (Fig. 11(b)).\n";
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - bench_start;
  std::cout << "\n[threads=" << bc::support::thread_count() << "] total "
            << bc::support::Table::num(elapsed.count(), 2)
            << " s (output is identical at every thread count; compare "
               "--threads=1 for the speedup)\n";
  return 0;
}
