// Minimal SVG document builder.
//
// Fig. 10 of the paper is a plotted network configuration (sensors,
// bundle disks, BC tour in black, BC-OPT tour in dashed red); this module
// lets benches and examples regenerate such plots as standalone .svg
// files without any external dependency. Only the primitives the plan
// renderer needs are implemented.

#ifndef BUNDLECHARGE_VIZ_SVG_H_
#define BUNDLECHARGE_VIZ_SVG_H_

#include <string>
#include <vector>

#include "geometry/point.h"

namespace bc::viz {

// Styling for a drawable element; empty fields are omitted.
struct Style {
  std::string fill = "none";
  std::string stroke = "black";
  double stroke_width = 1.0;
  std::string dash;       // e.g. "6,4" for a dashed line
  double opacity = 1.0;
};

// An SVG canvas over a world-coordinate viewport. World y grows upward
// (mathematical convention); the writer flips it into SVG screen space.
class SvgCanvas {
 public:
  // `world` is the visible region; `pixel_width` sets the raster scale
  // (height follows the aspect ratio). Preconditions: positive extents.
  SvgCanvas(geometry::Box2 world, double pixel_width = 800.0);

  void add_circle(geometry::Point2 center, double radius,
                  const Style& style);
  void add_line(geometry::Point2 a, geometry::Point2 b, const Style& style);
  void add_polyline(const std::vector<geometry::Point2>& points,
                    const Style& style, bool closed = false);
  // A small marker (cross) used for sensors/anchors.
  void add_marker(geometry::Point2 at, double size, const Style& style);
  void add_text(geometry::Point2 at, const std::string& text,
                double font_size, const std::string& color = "black");

  // Serialises the document. Always well-formed XML.
  std::string render() const;

  // Convenience: render() to a file. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  geometry::Point2 to_screen(geometry::Point2 world_point) const;
  double to_screen_length(double world_length) const;
  std::string style_attrs(const Style& style) const;

  geometry::Box2 world_;
  double pixel_width_;
  double pixel_height_;
  double scale_;
  std::vector<std::string> elements_;
};

// Escapes <, >, & and quotes for use in SVG text nodes/attributes.
std::string escape_xml(const std::string& text);

}  // namespace bc::viz

#endif  // BUNDLECHARGE_VIZ_SVG_H_
