// Renders deployments and charging plans to SVG — regenerates the style
// of the paper's Fig. 10 (sensors as stars, anchors as triangles, bundle
// disks dotted, BC tour solid black, BC-OPT tour dashed red).

#ifndef BUNDLECHARGE_VIZ_PLAN_RENDER_H_
#define BUNDLECHARGE_VIZ_PLAN_RENDER_H_

#include <string>

#include "net/deployment.h"
#include "tour/plan.h"
#include "viz/svg.h"

namespace bc::viz {

struct PlanRenderOptions {
  std::string tour_color = "black";
  std::string tour_dash;           // empty = solid
  bool draw_bundle_disks = true;   // dotted member-covering circles
  bool draw_sensors = true;
  bool draw_depot = true;
  double pixel_width = 800.0;
};

// Draws one plan onto a fresh canvas sized to the deployment field.
SvgCanvas render_plan(const net::Deployment& deployment,
                      const tour::ChargingPlan& plan,
                      const PlanRenderOptions& options = PlanRenderOptions{});

// Draws two plans over the same deployment (e.g. BC solid vs BC-OPT
// dashed), Fig. 10 style.
SvgCanvas render_plan_pair(const net::Deployment& deployment,
                           const tour::ChargingPlan& base_plan,
                           const tour::ChargingPlan& overlay_plan,
                           double pixel_width = 800.0);

}  // namespace bc::viz

#endif  // BUNDLECHARGE_VIZ_PLAN_RENDER_H_
