#include "viz/svg.h"

#include <cstdio>
#include <fstream>

#include "support/require.h"

namespace bc::viz {

namespace {

std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

}  // namespace

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

SvgCanvas::SvgCanvas(geometry::Box2 world, double pixel_width)
    : world_(world), pixel_width_(pixel_width) {
  support::require(world.width() > 0.0 && world.height() > 0.0,
                   "SVG world box must have positive extent");
  support::require(pixel_width > 0.0, "pixel width must be positive");
  scale_ = pixel_width_ / world_.width();
  pixel_height_ = world_.height() * scale_;
}

geometry::Point2 SvgCanvas::to_screen(geometry::Point2 p) const {
  return {(p.x - world_.lo.x) * scale_,
          pixel_height_ - (p.y - world_.lo.y) * scale_};
}

double SvgCanvas::to_screen_length(double world_length) const {
  return world_length * scale_;
}

std::string SvgCanvas::style_attrs(const Style& style) const {
  std::string out = " fill=\"" + escape_xml(style.fill) + "\" stroke=\"" +
                    escape_xml(style.stroke) + "\" stroke-width=\"" +
                    fmt(style.stroke_width) + "\"";
  if (!style.dash.empty()) {
    out += " stroke-dasharray=\"" + escape_xml(style.dash) + "\"";
  }
  if (style.opacity != 1.0) {
    out += " opacity=\"" + fmt(style.opacity) + "\"";
  }
  return out;
}

void SvgCanvas::add_circle(geometry::Point2 center, double radius,
                           const Style& style) {
  const geometry::Point2 c = to_screen(center);
  elements_.push_back("<circle cx=\"" + fmt(c.x) + "\" cy=\"" + fmt(c.y) +
                      "\" r=\"" + fmt(to_screen_length(radius)) + "\"" +
                      style_attrs(style) + "/>");
}

void SvgCanvas::add_line(geometry::Point2 a, geometry::Point2 b,
                         const Style& style) {
  const geometry::Point2 sa = to_screen(a);
  const geometry::Point2 sb = to_screen(b);
  elements_.push_back("<line x1=\"" + fmt(sa.x) + "\" y1=\"" + fmt(sa.y) +
                      "\" x2=\"" + fmt(sb.x) + "\" y2=\"" + fmt(sb.y) +
                      "\"" + style_attrs(style) + "/>");
}

void SvgCanvas::add_polyline(const std::vector<geometry::Point2>& points,
                             const Style& style, bool closed) {
  if (points.size() < 2) return;
  std::string attr = closed ? "<polygon points=\"" : "<polyline points=\"";
  for (const geometry::Point2& p : points) {
    const geometry::Point2 s = to_screen(p);
    attr += fmt(s.x) + "," + fmt(s.y) + " ";
  }
  attr.pop_back();
  attr += "\"" + style_attrs(style) + "/>";
  elements_.push_back(std::move(attr));
}

void SvgCanvas::add_marker(geometry::Point2 at, double size,
                           const Style& style) {
  const double h = size / 2.0;
  add_line({at.x - h, at.y - h}, {at.x + h, at.y + h}, style);
  add_line({at.x - h, at.y + h}, {at.x + h, at.y - h}, style);
}

void SvgCanvas::add_text(geometry::Point2 at, const std::string& text,
                         double font_size, const std::string& color) {
  const geometry::Point2 s = to_screen(at);
  elements_.push_back("<text x=\"" + fmt(s.x) + "\" y=\"" + fmt(s.y) +
                      "\" font-size=\"" + fmt(font_size) + "\" fill=\"" +
                      escape_xml(color) + "\">" + escape_xml(text) +
                      "</text>");
}

std::string SvgCanvas::render() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         fmt(pixel_width_) + "\" height=\"" + fmt(pixel_height_) +
         "\" viewBox=\"0 0 " + fmt(pixel_width_) + " " +
         fmt(pixel_height_) + "\">\n";
  out += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& element : elements_) {
    out += element;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

bool SvgCanvas::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << render();
  return static_cast<bool>(file);
}

}  // namespace bc::viz
