#include "viz/plan_render.h"

#include <algorithm>
#include <vector>

namespace bc::viz {

namespace {

using geometry::Point2;

void draw_field(SvgCanvas& canvas, const net::Deployment& deployment,
                const PlanRenderOptions& options) {
  if (options.draw_sensors) {
    Style sensor_style;
    sensor_style.stroke = "#1f77b4";
    sensor_style.stroke_width = 1.5;
    const double mark = deployment.field().width() / 120.0;
    for (const net::Sensor& s : deployment.sensors()) {
      canvas.add_marker(s.position, mark, sensor_style);
    }
  }
  if (options.draw_depot) {
    Style depot_style;
    depot_style.stroke = "#2ca02c";
    depot_style.fill = "#2ca02c";
    canvas.add_circle(deployment.depot(),
                      deployment.field().width() / 150.0, depot_style);
  }
}

void draw_tour(SvgCanvas& canvas, const net::Deployment& deployment,
               const tour::ChargingPlan& plan,
               const PlanRenderOptions& options) {
  if (options.draw_bundle_disks) {
    Style disk_style;
    disk_style.stroke = "#888888";
    disk_style.dash = "3,3";
    disk_style.stroke_width = 0.8;
    for (const tour::Stop& stop : plan.stops) {
      const double r = tour::stop_max_distance(deployment, stop);
      if (r > 0.0) canvas.add_circle(stop.position, r, disk_style);
    }
  }

  Style tour_style;
  tour_style.stroke = options.tour_color;
  tour_style.stroke_width = 1.6;
  tour_style.dash = options.tour_dash;
  std::vector<Point2> waypoints;
  waypoints.reserve(plan.stops.size() + 1);
  waypoints.push_back(plan.depot);
  for (const tour::Stop& stop : plan.stops) {
    waypoints.push_back(stop.position);
  }
  canvas.add_polyline(waypoints, tour_style, /*closed=*/true);

  Style anchor_style;
  anchor_style.stroke = "#d62728";
  anchor_style.fill = "#d62728";
  for (const tour::Stop& stop : plan.stops) {
    canvas.add_circle(stop.position, deployment.field().width() / 250.0,
                      anchor_style);
  }
}

}  // namespace

SvgCanvas render_plan(const net::Deployment& deployment,
                      const tour::ChargingPlan& plan,
                      const PlanRenderOptions& options) {
  SvgCanvas canvas(deployment.field(), options.pixel_width);
  draw_field(canvas, deployment, options);
  draw_tour(canvas, deployment, plan, options);
  canvas.add_text({deployment.field().lo.x +
                       deployment.field().width() * 0.02,
                   deployment.field().hi.y -
                       deployment.field().height() * 0.04},
                  plan.algorithm, options.pixel_width / 40.0,
                  options.tour_color);
  return canvas;
}

SvgCanvas render_plan_pair(const net::Deployment& deployment,
                           const tour::ChargingPlan& base_plan,
                           const tour::ChargingPlan& overlay_plan,
                           double pixel_width) {
  PlanRenderOptions base_options;
  base_options.pixel_width = pixel_width;
  SvgCanvas canvas(deployment.field(), pixel_width);
  draw_field(canvas, deployment, base_options);
  draw_tour(canvas, deployment, base_plan, base_options);

  PlanRenderOptions overlay_options;
  overlay_options.tour_color = "#d62728";
  overlay_options.tour_dash = "7,5";
  overlay_options.draw_bundle_disks = false;
  overlay_options.pixel_width = pixel_width;
  draw_tour(canvas, deployment, overlay_plan, overlay_options);

  canvas.add_text({deployment.field().lo.x +
                       deployment.field().width() * 0.02,
                   deployment.field().hi.y -
                       deployment.field().height() * 0.04},
                  base_plan.algorithm + " (solid) vs " +
                      overlay_plan.algorithm + " (dashed)",
                  pixel_width / 45.0);
  return canvas;
}

}  // namespace bc::viz
