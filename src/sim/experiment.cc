#include "sim/experiment.h"

#include "support/parallel.h"
#include "support/require.h"

namespace bc::sim {

void AggregateMetrics::add(const PlanMetrics& m) {
  num_stops.add(static_cast<double>(m.num_stops));
  tour_length_m.add(m.tour_length_m);
  move_energy_j.add(m.move_energy_j);
  charge_time_s.add(m.charge_time_s);
  charge_energy_j.add(m.charge_energy_j);
  total_energy_j.add(m.total_energy_j);
  total_time_s.add(m.total_time_s);
  avg_charge_time_per_sensor_s.add(m.avg_charge_time_per_sensor_s);
  min_demand_fraction.add(m.min_demand_fraction);
}

AggregateMetrics run_experiment(const ExperimentSpec& spec) {
  support::require(static_cast<bool>(spec.make_deployment),
                   "experiment needs a deployment factory");
  support::require(spec.runs >= 1, "experiment needs at least one run");

  spec.threads.apply();

  // Every run is an independent cell of the sweep: its RNG stream is
  // derived from (base_seed + run) — the Rng constructor expands that seed
  // through SplitMix64, so nearby cells get uncorrelated streams — and is
  // never shared across cells. Each cell writes only its own slot of the
  // pre-sized result vector, so the parallel sweep is bit-identical to the
  // serial seed run at any thread count.
  const std::vector<PlanMetrics> per_run =
      support::parallel_map<PlanMetrics>(
          spec.runs, /*grain=*/1, [&spec](std::size_t run) {
            support::Rng rng(spec.base_seed + run);
            const net::Deployment deployment = spec.make_deployment(rng);
            const tour::ChargingPlan plan = tour::plan_charging_tour(
                deployment, spec.algorithm, spec.planner);
            const PlanMetrics metrics =
                evaluate_plan(deployment, plan, spec.evaluation);
            if (spec.verify_feasibility) {
              support::ensure(
                  metrics.min_demand_fraction >= 1.0 - 1e-6,
                  "scheduled plan failed to meet a sensor's demand");
            }
            return metrics;
          });

  // Aggregation stays serial and in run order: RunningStat updates are not
  // associative under floating point, so the merge order is part of the
  // determinism contract.
  AggregateMetrics aggregate;
  for (const PlanMetrics& metrics : per_run) {
    aggregate.add(metrics);
  }
  return aggregate;
}

DeploymentFactory uniform_factory(std::size_t n, net::FieldSpec field_spec) {
  return [n, field_spec](support::Rng& rng) {
    return net::uniform_random_deployment(n, field_spec, rng);
  };
}

}  // namespace bc::sim
