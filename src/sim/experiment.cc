#include "sim/experiment.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/parallel.h"
#include "support/require.h"

namespace bc::sim {

namespace {

// One cell of the sweep: plan + evaluate run `run` of `spec`. Pure
// function of (spec, run) — the basis of both parallel determinism and
// checkpoint/resume correctness.
PlanMetrics run_cell(const ExperimentSpec& spec, std::size_t run) {
  support::Rng rng(spec.base_seed + run);
  const net::Deployment deployment = spec.make_deployment(rng);
  const tour::ChargingPlan plan =
      tour::plan_charging_tour(deployment, spec.algorithm, spec.planner);
  const PlanMetrics metrics = evaluate_plan(deployment, plan, spec.evaluation);
  if (spec.verify_feasibility) {
    support::ensure(metrics.min_demand_fraction >= 1.0 - 1e-6,
                    "scheduled plan failed to meet a sensor's demand");
  }
  return metrics;
}

}  // namespace

void AggregateMetrics::add(const PlanMetrics& m) {
  num_stops.add(static_cast<double>(m.num_stops));
  tour_length_m.add(m.tour_length_m);
  move_energy_j.add(m.move_energy_j);
  charge_time_s.add(m.charge_time_s);
  charge_energy_j.add(m.charge_energy_j);
  total_energy_j.add(m.total_energy_j);
  total_time_s.add(m.total_time_s);
  avg_charge_time_per_sensor_s.add(m.avg_charge_time_per_sensor_s);
  min_demand_fraction.add(m.min_demand_fraction);
}

AggregateMetrics run_experiment(const ExperimentSpec& spec) {
  support::require(static_cast<bool>(spec.make_deployment),
                   "experiment needs a deployment factory");
  support::require(spec.runs >= 1, "experiment needs at least one run");

  spec.threads.apply();

  obs::TraceSpan span("experiment.run");
  span.attr("runs", static_cast<std::uint64_t>(spec.runs));

  // Every run is an independent cell of the sweep: its RNG stream is
  // derived from (base_seed + run) — the Rng constructor expands that seed
  // through SplitMix64, so nearby cells get uncorrelated streams — and is
  // never shared across cells. Each cell writes only its own slot of the
  // pre-sized result vector, so the parallel sweep is bit-identical to the
  // serial seed run at any thread count.
  const std::vector<PlanMetrics> per_run =
      support::parallel_map<PlanMetrics>(
          spec.runs, /*grain=*/1,
          [&spec](std::size_t run) { return run_cell(spec, run); });

  // Aggregation stays serial and in run order: RunningStat updates are not
  // associative under floating point, so the merge order is part of the
  // determinism contract.
  AggregateMetrics aggregate;
  for (const PlanMetrics& metrics : per_run) {
    aggregate.add(metrics);
  }
  static const obs::Counter cells("experiment.cells_computed");
  cells.add(spec.runs);
  return aggregate;
}

support::Expected<AggregateMetrics> run_experiment_resumable(
    const ExperimentSpec& spec, const ExperimentControl& control) {
  support::require(static_cast<bool>(spec.make_deployment),
                   "experiment needs a deployment factory");
  support::require(spec.runs >= 1, "experiment needs at least one run");
  support::require(control.journal == nullptr || !control.cell_prefix.empty(),
                   "journaling needs a cell prefix");
  support::require(control.chunk >= 1, "chunk must be at least 1");

  spec.threads.apply();

  obs::TraceSpan span("experiment.run_resumable");
  span.attr("runs", static_cast<std::uint64_t>(spec.runs));

  // Pre-fill cells the journal already holds. A decode failure is a
  // corrupt journal, not a recoverable cell: fault out rather than mix
  // recomputed values into a file that claims different ones.
  std::vector<PlanMetrics> per_run(spec.runs);
  std::vector<char> done(spec.runs, 0);
  if (control.journal != nullptr) {
    for (std::size_t run = 0; run < spec.runs; ++run) {
      const std::string* payload =
          control.journal->lookup(cell_key(control.cell_prefix, run));
      if (payload == nullptr) continue;
      auto decoded = decode_metrics(*payload);
      if (!decoded.has_value()) return decoded.fault();
      per_run[run] = decoded.value();
      done[run] = 1;
    }
  }
  std::uint64_t journal_resumed = 0;
  for (const char d : done) journal_resumed += static_cast<std::uint64_t>(d);

  // Chunked sweep: compute missing cells chunk by chunk, journal each
  // chunk atomically, and poll cancellation at every chunk boundary. The
  // chunking affects only when results are persisted, never their values
  // or the (serial, in-run-order) aggregation below.
  for (std::size_t lo = 0; lo < spec.runs; lo += control.chunk) {
    const std::size_t hi = std::min(spec.runs, lo + control.chunk);
    if (std::all_of(done.begin() + static_cast<std::ptrdiff_t>(lo),
                    done.begin() + static_cast<std::ptrdiff_t>(hi),
                    [](char d) { return d != 0; })) {
      continue;
    }
    if (control.cancel.cancelled()) {
      if (control.journal != nullptr) {
        auto flushed = control.journal->flush();
        if (!flushed.has_value()) return flushed.fault();
      }
      std::size_t completed = 0;
      for (const char d : done) completed += static_cast<std::size_t>(d);
      return support::Fault{
          support::FaultKind::kBudgetExhausted,
          "experiment cancelled after " + std::to_string(completed) + "/" +
              std::to_string(spec.runs) + " runs (completed cells journaled)"};
    }
    const std::vector<PlanMetrics> chunk_results =
        support::parallel_map<PlanMetrics>(
            hi - lo, /*grain=*/1, [&](std::size_t offset) {
              const std::size_t run = lo + offset;
              return done[run] != 0 ? per_run[run] : run_cell(spec, run);
            });
    for (std::size_t run = lo; run < hi; ++run) {
      if (done[run] != 0) continue;
      per_run[run] = chunk_results[run - lo];
      done[run] = 1;
      if (control.journal != nullptr) {
        control.journal->record(cell_key(control.cell_prefix, run),
                                encode_metrics(per_run[run]));
      }
    }
    if (control.journal != nullptr) {
      auto flushed = control.journal->flush();
      if (!flushed.has_value()) return flushed.fault();
    }
  }

  AggregateMetrics aggregate;
  for (const PlanMetrics& metrics : per_run) {
    aggregate.add(metrics);
  }
  {
    static const obs::Counter computed("experiment.cells_computed");
    static const obs::Counter from_journal("experiment.cells_resumed");
    computed.add(spec.runs - journal_resumed);
    from_journal.add(journal_resumed);
    span.attr("cells_resumed", journal_resumed);
  }
  return aggregate;
}

DeploymentFactory uniform_factory(std::size_t n, net::FieldSpec field_spec) {
  return [n, field_spec](support::Rng& rng) {
    return net::uniform_random_deployment(n, field_spec, rng);
  };
}

}  // namespace bc::sim
