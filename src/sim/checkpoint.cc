#include "sim/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/atomic_file.h"
#include "support/require.h"

namespace bc::sim {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

constexpr std::string_view kMagic = "bundlecharge-checkpoint";
constexpr std::string_view kVersion = "v1";

bool is_clean_token(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\0') {
      return false;
    }
  }
  return true;
}

// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

std::string crc_hex(std::string_view data) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08" PRIx32, support::crc32(data));
  return buf;
}

Fault corrupt(const std::string& path, std::size_t line_no,
              const std::string& why) {
  return Fault{FaultKind::kInvalidInput,
               path + ":" + std::to_string(line_no) +
                   ": corrupt checkpoint (" + why + ")"};
}

}  // namespace

Expected<CheckpointJournal> CheckpointJournal::open(std::string path,
                                                    std::string sweep_id) {
  support::require(is_clean_token(sweep_id),
                   "sweep id must be a non-empty whitespace-free token");
  CheckpointJournal journal(std::move(path), std::move(sweep_id));
  if (!support::file_exists(journal.path_)) return journal;

  auto contents = support::read_file(journal.path_);
  if (!contents.has_value()) return contents.fault();

  std::istringstream in(contents.value());
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    // A torn final line (no trailing newline and fewer fields than a
    // record needs) is dropped: it can only be the last append of a
    // crashed writer that bypassed the atomic path.
    const bool is_final_torn = in.eof() && !contents.value().empty() &&
                               contents.value().back() != '\n';
    if (line.empty()) continue;
    const std::vector<std::string> fields = tokens_of(line);
    if (!saw_header) {
      if (fields.size() != 3 || fields[0] != kMagic) {
        return corrupt(journal.path_, line_no, "missing header");
      }
      if (fields[1] != kVersion) {
        return corrupt(journal.path_, line_no,
                       "unsupported version " + fields[1]);
      }
      if (fields[2] != journal.sweep_id_) {
        return Fault{FaultKind::kInvalidInput,
                     journal.path_ + ": sweep id mismatch (journal " +
                         fields[2] + ", caller " + journal.sweep_id_ +
                         ") — refusing to mix sweeps"};
      }
      saw_header = true;
      continue;
    }
    if (fields.size() != 4 || fields[0] != "cell") {
      if (is_final_torn) break;
      return corrupt(journal.path_, line_no, "malformed record");
    }
    const std::string body = fields[2] + " " + fields[3];
    if (crc_hex(body) != fields[1]) {
      if (is_final_torn) break;
      return corrupt(journal.path_, line_no, "CRC mismatch for " + fields[2]);
    }
    journal.cells_[fields[2]] = fields[3];
  }
  if (!saw_header) {
    // Empty file: treat as a fresh journal (e.g. touch(1) before running).
    journal.cells_.clear();
  }
  return journal;
}

bool CheckpointJournal::contains(const std::string& key) const {
  return cells_.find(key) != cells_.end();
}

const std::string* CheckpointJournal::lookup(const std::string& key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? nullptr : &it->second;
}

void CheckpointJournal::record(const std::string& key,
                               const std::string& payload) {
  support::require(is_clean_token(key), "cell key must be whitespace-free");
  support::require(is_clean_token(payload),
                   "cell payload must be whitespace-free");
  cells_[key] = payload;
}

Expected<bool> CheckpointJournal::flush() const {
  std::string out;
  out.reserve(64 + cells_.size() * 96);
  out.append(kMagic);
  out.push_back(' ');
  out.append(kVersion);
  out.push_back(' ');
  out.append(sweep_id_);
  out.push_back('\n');
  for (const auto& [key, payload] : cells_) {
    const std::string body = key + " " + payload;
    out.append("cell ");
    out.append(crc_hex(body));
    out.push_back(' ');
    out.append(body);
    out.push_back('\n');
  }
  return support::write_file_atomic(path_, out);
}

std::string encode_metrics(const PlanMetrics& metrics) {
  char buf[352];
  std::snprintf(buf, sizeof(buf), "%zu,%a,%a,%a,%a,%a,%a,%a,%a,%a",
                metrics.num_stops, metrics.tour_length_m,
                metrics.move_energy_j, metrics.move_time_s,
                metrics.charge_time_s, metrics.charge_energy_j,
                metrics.total_energy_j, metrics.total_time_s,
                metrics.avg_charge_time_per_sensor_s,
                metrics.min_demand_fraction);
  return buf;
}

Expected<PlanMetrics> decode_metrics(const std::string& payload) {
  PlanMetrics m;
  const int fields = std::sscanf(
      payload.c_str(), "%zu,%la,%la,%la,%la,%la,%la,%la,%la,%la",
      &m.num_stops, &m.tour_length_m, &m.move_energy_j, &m.move_time_s,
      &m.charge_time_s, &m.charge_energy_j, &m.total_energy_j,
      &m.total_time_s, &m.avg_charge_time_per_sensor_s,
      &m.min_demand_fraction);
  if (fields != 10) {
    return Fault{FaultKind::kInvalidInput,
                 "malformed metrics payload (" + std::to_string(fields) +
                     "/10 fields): " + payload};
  }
  return m;
}

std::string cell_key(const std::string& prefix, std::size_t run) {
  support::require(is_clean_token(prefix),
                   "cell prefix must be whitespace-free");
  return prefix + ":run=" + std::to_string(run);
}

}  // namespace bc::sim
