#include "sim/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "support/atomic_file.h"
#include "support/require.h"

namespace bc::sim {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

constexpr std::string_view kMagic = "bundlecharge-checkpoint";
constexpr std::string_view kVersion = "v1";

bool is_clean_token(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\0') {
      return false;
    }
  }
  return true;
}

// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

Fault corrupt(const std::string& path, std::size_t line_no,
              const std::string& why) {
  return Fault{FaultKind::kInvalidInput,
               path + ":" + std::to_string(line_no) +
                   ": corrupt checkpoint (" + why + ")"};
}

}  // namespace

Expected<CheckpointJournal> CheckpointJournal::open(std::string path,
                                                    std::string sweep_id,
                                                    CheckpointLimits limits) {
  support::require(is_clean_token(sweep_id),
                   "sweep id must be a non-empty whitespace-free token");
  support::JournalFormat format;
  format.header_line = std::string(kMagic);
  format.header_line += ' ';
  format.header_line += kVersion;
  format.header_line += ' ';
  format.header_line += sweep_id;
  format.record_tag = "cell";
  const std::string path_copy = path;
  const std::string sweep_copy = sweep_id;
  format.validate_header =
      [path_copy, sweep_copy](const std::string& line,
                              std::size_t line_no) -> Expected<bool> {
    const std::vector<std::string> fields = tokens_of(line);
    if (fields.size() != 3 || fields[0] != kMagic) {
      return corrupt(path_copy, line_no, "missing header");
    }
    if (fields[1] != kVersion) {
      return corrupt(path_copy, line_no, "unsupported version " + fields[1]);
    }
    if (fields[2] != sweep_copy) {
      return Fault{FaultKind::kInvalidInput,
                   path_copy + ": sweep id mismatch (journal " + fields[2] +
                       ", caller " + sweep_copy +
                       ") — refusing to mix sweeps"};
    }
    return true;
  };
  format.record_fault = [path_copy](std::size_t line_no,
                                    const std::string& why) {
    return corrupt(path_copy, line_no, why);
  };
  support::JournalLimits journal_limits;
  journal_limits.compact_threshold_bytes = limits.compact_threshold_bytes;
  auto journal = support::AppendJournal::open(std::move(path),
                                              std::move(format),
                                              journal_limits);
  if (!journal.has_value()) return journal.fault();
  return CheckpointJournal(std::move(journal.value()), std::move(sweep_id));
}

bool CheckpointJournal::contains(const std::string& key) const {
  return journal_.contains(key);
}

const std::string* CheckpointJournal::lookup(const std::string& key) const {
  return journal_.lookup(key);
}

void CheckpointJournal::record(const std::string& key,
                               const std::string& payload) {
  support::require(is_clean_token(key), "cell key must be whitespace-free");
  support::require(is_clean_token(payload),
                   "cell payload must be whitespace-free");
  journal_.put(key, payload);
}

void CheckpointJournal::publish_telemetry() {
  static const obs::Counter compactions("sim.checkpoint.compactions");
  if (journal_.compactions() > reported_compactions_) {
    compactions.add(journal_.compactions() - reported_compactions_);
    reported_compactions_ = journal_.compactions();
  }
}

Expected<bool> CheckpointJournal::flush() {
  auto synced = journal_.sync();
  publish_telemetry();
  return synced;
}

Expected<bool> CheckpointJournal::compact() {
  auto compacted = journal_.compact();
  publish_telemetry();
  return compacted;
}

std::string encode_metrics(const PlanMetrics& metrics) {
  char buf[352];
  std::snprintf(buf, sizeof(buf), "%zu,%a,%a,%a,%a,%a,%a,%a,%a,%a",
                metrics.num_stops, metrics.tour_length_m,
                metrics.move_energy_j, metrics.move_time_s,
                metrics.charge_time_s, metrics.charge_energy_j,
                metrics.total_energy_j, metrics.total_time_s,
                metrics.avg_charge_time_per_sensor_s,
                metrics.min_demand_fraction);
  return buf;
}

Expected<PlanMetrics> decode_metrics(const std::string& payload) {
  PlanMetrics m;
  const int fields = std::sscanf(
      payload.c_str(), "%zu,%la,%la,%la,%la,%la,%la,%la,%la,%la",
      &m.num_stops, &m.tour_length_m, &m.move_energy_j, &m.move_time_s,
      &m.charge_time_s, &m.charge_energy_j, &m.total_energy_j,
      &m.total_time_s, &m.avg_charge_time_per_sensor_s,
      &m.min_demand_fraction);
  if (fields != 10) {
    return Fault{FaultKind::kInvalidInput,
                 "malformed metrics payload (" + std::to_string(fields) +
                     "/10 fields): " + payload};
  }
  return m;
}

std::string cell_key(const std::string& prefix, std::size_t run) {
  support::require(is_clean_token(prefix),
                   "cell prefix must be whitespace-free");
  return prefix + ":run=" + std::to_string(run);
}

}  // namespace bc::sim
