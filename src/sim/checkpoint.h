// Crash-safe checkpoint journal for experiment sweeps.
//
// A figure bench is a grid of independent cells — one (config, seed, run)
// triple each. Because every cell draws from its own RNG stream (derived
// from base_seed + run), a finished cell's metrics are a pure function of
// its key; losing the process loses nothing but un-journaled cells. The
// journal records each completed cell so an interrupted sweep (SIGKILL,
// deadline, Ctrl-C) resumes by recomputing only the missing cells and
// reproduces the uninterrupted output bit for bit.
//
// On-disk format (version 1), one record per line:
//
//   bundlecharge-checkpoint v1 <sweep_id>
//   cell <crc32hex> <key> <payload>
//
// `sweep_id` fingerprints every result-affecting parameter of the sweep;
// opening a journal whose id differs from the caller's is an error (the
// cached cells would silently poison the new sweep). Keys and payloads are
// whitespace-free tokens; metrics payloads serialise doubles as C99
// hexfloats so a decoded cell is bit-identical to the computed one. Each
// record carries a CRC-32 (IEEE) over "<key> <payload>".
//
// Durability: flush() rewrites the whole file through
// support::write_file_atomic (write temp, fsync, rename), so a crash
// leaves either the old or the new journal, never a torn one. A torn
// *final* line (possible only with external tampering or partial copies)
// is tolerated and dropped; corruption anywhere else is an
// kInvalidInput fault — better to recompute a sweep than to average
// garbage.

#ifndef BUNDLECHARGE_SIM_CHECKPOINT_H_
#define BUNDLECHARGE_SIM_CHECKPOINT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/evaluate.h"
#include "support/expected.h"

namespace bc::sim {

class CheckpointJournal {
 public:
  // Opens `path`, creating an empty journal if the file does not exist.
  // An existing file must carry a matching version and sweep id.
  static support::Expected<CheckpointJournal> open(std::string path,
                                                   std::string sweep_id);

  const std::string& path() const { return path_; }
  const std::string& sweep_id() const { return sweep_id_; }
  std::size_t size() const { return cells_.size(); }

  bool contains(const std::string& key) const;
  // Payload for `key`, or nullptr when the cell is not journaled.
  const std::string* lookup(const std::string& key) const;

  // Records a completed cell in memory (last write wins). Preconditions:
  // key and payload are non-empty and contain no whitespace/newlines.
  void record(const std::string& key, const std::string& payload);

  // Atomically persists header + every recorded cell. Record order is
  // sorted by key, so the bytes on disk are independent of completion
  // order (and therefore of thread count and resume history).
  support::Expected<bool> flush() const;

 private:
  CheckpointJournal(std::string path, std::string sweep_id)
      : path_(std::move(path)), sweep_id_(std::move(sweep_id)) {}

  std::string path_;
  std::string sweep_id_;
  std::map<std::string, std::string> cells_;  // key -> payload
};

// PlanMetrics <-> whitespace-free payload token. Doubles round-trip
// exactly (hexfloat), so resumed aggregates match uninterrupted ones bit
// for bit.
std::string encode_metrics(const PlanMetrics& metrics);
support::Expected<PlanMetrics> decode_metrics(const std::string& payload);

// Canonical cell key, e.g. "r=20/alg=BC:run=17". `prefix` names the
// configuration cell; the run index is appended by the runner.
std::string cell_key(const std::string& prefix, std::size_t run);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_CHECKPOINT_H_
