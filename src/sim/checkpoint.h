// Crash-safe checkpoint journal for experiment sweeps.
//
// A figure bench is a grid of independent cells — one (config, seed, run)
// triple each. Because every cell draws from its own RNG stream (derived
// from base_seed + run), a finished cell's metrics are a pure function of
// its key; losing the process loses nothing but un-journaled cells. The
// journal records each completed cell so an interrupted sweep (SIGKILL,
// deadline, Ctrl-C) resumes by recomputing only the missing cells and
// reproduces the uninterrupted output bit for bit.
//
// On-disk format (version 1), one record per line:
//
//   bundlecharge-checkpoint v1 <sweep_id>
//   cell <crc32hex> <key> <payload>
//
// `sweep_id` fingerprints every result-affecting parameter of the sweep;
// opening a journal whose id differs from the caller's is an error (the
// cached cells would silently poison the new sweep). Keys and payloads are
// whitespace-free tokens; metrics payloads serialise doubles as C99
// hexfloats so a decoded cell is bit-identical to the computed one. Each
// record carries a CRC-32 (IEEE) over "<key> <payload>".
//
// Durability: flush() appends the newly recorded cells with an fsync
// (support::append_file_durable) — O(new cells), which matters when a
// sweep journals thousands of cells chunk by chunk. A crash can tear at
// most the final line; open() drops a torn tail, keeps every complete
// record, and schedules a self-healing compaction. When the file grows
// past a size threshold (or an append ever fails), flush() falls back to
// a full key-sorted rewrite through support::write_file_atomic, whose
// bytes are a pure function of the recorded cell set. Complete-but-wrong
// records are a kInvalidInput fault — better to recompute a sweep than
// to average garbage.

#ifndef BUNDLECHARGE_SIM_CHECKPOINT_H_
#define BUNDLECHARGE_SIM_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/evaluate.h"
#include "support/expected.h"
#include "support/journal.h"

namespace bc::sim {

struct CheckpointLimits {
  // Journal size that triggers a compacting rewrite instead of an
  // append. Cells are never evicted — a checkpoint exists to avoid
  // recomputation, so it is bounded by compaction alone.
  std::size_t compact_threshold_bytes = 1u << 20;
};

class CheckpointJournal {
 public:
  // Opens `path`, creating an empty journal if the file does not exist.
  // An existing file must carry a matching version and sweep id. Stale
  // temp files from a crashed writer are garbage-collected here.
  static support::Expected<CheckpointJournal> open(
      std::string path, std::string sweep_id, CheckpointLimits limits = {});

  const std::string& path() const { return journal_.path(); }
  const std::string& sweep_id() const { return sweep_id_; }
  std::size_t size() const { return journal_.size(); }

  bool contains(const std::string& key) const;
  // Payload for `key`, or nullptr when the cell is not journaled.
  const std::string* lookup(const std::string& key) const;

  // Records a completed cell in memory (last write wins). Preconditions:
  // key and payload are non-empty and contain no whitespace/newlines.
  void record(const std::string& key, const std::string& payload);

  // Persists cells recorded since the last flush (append or, when the
  // tail is unhealthy or the size threshold trips, a compaction). On
  // failure the pending cells are retained for retry.
  support::Expected<bool> flush();

  // Forces the compacting rewrite: header + cells, key-sorted — bytes
  // independent of completion order, thread count, and resume history.
  support::Expected<bool> compact();

  // Robustness telemetry (mirrored into obs counters by flush/compact).
  std::uint64_t compactions() const { return journal_.compactions(); }
  std::uint64_t stale_temps_removed() const {
    return journal_.stale_temps_removed();
  }
  std::uint64_t torn_tails_dropped() const {
    return journal_.torn_tails_dropped();
  }

 private:
  CheckpointJournal(support::AppendJournal journal, std::string sweep_id)
      : journal_(std::move(journal)), sweep_id_(std::move(sweep_id)) {}

  void publish_telemetry();

  support::AppendJournal journal_;
  std::string sweep_id_;
  std::uint64_t reported_compactions_ = 0;
};

// PlanMetrics <-> whitespace-free payload token. Doubles round-trip
// exactly (hexfloat), so resumed aggregates match uninterrupted ones bit
// for bit.
std::string encode_metrics(const PlanMetrics& metrics);
support::Expected<PlanMetrics> decode_metrics(const std::string& payload);

// Canonical cell key, e.g. "r=20/alg=BC:run=17". `prefix` names the
// configuration cell; the run index is appended by the runner.
std::string cell_key(const std::string& prefix, std::size_t run);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_CHECKPOINT_H_
