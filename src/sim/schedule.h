// Charging-time scheduling policies.
//
// A plan fixes where the charger parks and which sensors each stop is
// responsible for; the schedule decides how long to park. Two policies:
//
//   kIsolated    t_i is sized by stop i's own farthest assigned member,
//                ignoring radiation received from other stops. This is the
//                reading implied by the paper's bundle definition ("the
//                time t is determined by the sensor with the farthest
//                charging distance in each charging bundle", §I).
//
//   kCumulative  stops are processed in tour order; each sensor's deficit
//                is credited with the energy already received from every
//                earlier stop (wireless charging is one-to-many, Eq. 3's
//                constraint sums over all stops), and t_i covers only the
//                remaining deficit of stop i's members. Never longer than
//                kIsolated per stop.
//
//   kOptimalLp   the exact Eq. 3 schedule: stop times solve the linear
//                program  min sum_i t_i  s.t.
//                sum_i p_r(d(l_i, s_j)) t_i >= delta_j  for every sensor,
//                via the two-phase simplex in lp/simplex.h. Lower-bounds
//                both heuristics; stop-member assignment is ignored.

#ifndef BUNDLECHARGE_SIM_SCHEDULE_H_
#define BUNDLECHARGE_SIM_SCHEDULE_H_

#include <string_view>
#include <vector>

#include "charging/model.h"
#include "net/deployment.h"
#include "tour/plan.h"

namespace bc::sim {

enum class SchedulePolicy { kIsolated, kCumulative, kOptimalLp };

std::string_view to_string(SchedulePolicy policy);

// Per-stop parking times (seconds), aligned with plan.stops.
// Precondition: the plan assigns every sensor to exactly one stop.
std::vector<double> schedule_stop_times(const net::Deployment& deployment,
                                        const tour::ChargingPlan& plan,
                                        const charging::ChargingModel& model,
                                        SchedulePolicy policy);

// Physical received energy per sensor given stop times: every stop
// radiates to every sensor (one-to-many). Used for verification and by the
// cumulative policy.
std::vector<double> received_energy_j(const net::Deployment& deployment,
                                      const tour::ChargingPlan& plan,
                                      const charging::ChargingModel& model,
                                      const std::vector<double>& stop_times_s);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_SCHEDULE_H_
