#include "sim/evaluate.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/require.h"

namespace bc::sim {

PlanMetrics evaluate_plan(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const EvaluationConfig& config) {
  const std::vector<double> times =
      schedule_stop_times(deployment, plan, config.charging, config.policy);

  PlanMetrics m;
  m.num_stops = plan.stops.size();
  m.tour_length_m = tour::plan_tour_length(plan, config.metric);
  m.move_energy_j = config.movement.move_energy_j(m.tour_length_m);
  m.move_time_s = config.movement.move_time_s(m.tour_length_m);
  m.charge_time_s = std::accumulate(times.begin(), times.end(), 0.0);
  m.charge_energy_j = config.charging.cost_of_stop_j(m.charge_time_s);
  m.total_energy_j = m.move_energy_j + m.charge_energy_j;
  m.total_time_s = m.move_time_s + m.charge_time_s;
  m.avg_charge_time_per_sensor_s =
      m.charge_time_s / static_cast<double>(deployment.size());

  const std::vector<double> received =
      received_energy_j(deployment, plan, config.charging, times);
  double min_fraction = std::numeric_limits<double>::infinity();
  for (const net::Sensor& s : deployment.sensors()) {
    min_fraction = std::min(min_fraction, received[s.id] / s.demand_j);
  }
  m.min_demand_fraction = min_fraction;
  return m;
}

bool plan_is_feasible(const net::Deployment& deployment,
                      const tour::ChargingPlan& plan,
                      const EvaluationConfig& config, double tolerance) {
  support::require(tolerance >= 0.0, "tolerance must be non-negative");
  const PlanMetrics m = evaluate_plan(deployment, plan, config);
  return m.min_demand_fraction >= 1.0 - tolerance;
}

}  // namespace bc::sim
