// WRSN lifetime simulation — the paper's motivating loop, §I/§III-B:
// "if n sensors run out of power, the charging procedure is triggered",
// and ideally "the lifetime of a WRSN can be extended infinitely for
// perpetual operations".
//
// Sensors drain continuously (sensing + communication); when any battery
// falls below a trigger fraction, the mobile charger plans a mission over
// the sensors' *current deficits* (heterogeneous demands) and executes
// it. The simulator advances through trigger events until a time horizon,
// recording missions, charger energy, the worst battery level ever seen,
// and any sensor-seconds spent dead — so one can check whether a planner
// actually sustains perpetual operation at a given drain rate, and at
// what energy cost.
//
// Simplifications (documented, conservative): drain continues during a
// mission but recharge is credited at mission end, so a sensor that would
// die mid-mission counts as dead until the mission completes; the charger
// is always available at the depot between missions. Dead-seconds are
// accounted in *every* phase — missions, inter-mission drain windows, and
// the triggering scan at t = 0 when initial_fraction <= trigger_fraction —
// not only mid-mission, so the totals stay correct even when a mission
// fails to lift a sensor back above the trigger (the fault-aware loop
// below relies on this).

#ifndef BUNDLECHARGE_SIM_LIFETIME_H_
#define BUNDLECHARGE_SIM_LIFETIME_H_

#include <cstddef>
#include <vector>

#include "net/deployment.h"
#include "sim/evaluate.h"
#include "sim/faults.h"
#include "sim/mission_executor.h"
#include "support/expected.h"
#include "tour/planner.h"

namespace bc::sim {

struct LifetimeConfig {
  // Battery capacity per sensor (J) and the level fraction that triggers
  // a charging mission.
  double battery_capacity_j = 20.0;
  double trigger_fraction = 0.4;
  // Initial level fraction at t = 0.
  double initial_fraction = 1.0;
  // Per-sensor drain (W); either one value for all sensors or one per
  // sensor.
  std::vector<double> drain_w{0.001};
  // Simulated horizon (s).
  double horizon_s = 30.0 * 24.0 * 3600.0;
  // Planner used for each mission; mission demands are the sensors'
  // current deficits, so plans differ between missions.
  tour::Algorithm algorithm = tour::Algorithm::kBcOpt;
  tour::PlannerConfig planner{};
  EvaluationConfig evaluation{};
};

struct LifetimeStats {
  std::size_t missions = 0;
  double charger_energy_j = 0.0;   // movement + radiated over all missions
  double charger_busy_s = 0.0;     // total mission time
  double min_level_fraction = 1.0;  // worst battery level / capacity seen
  double dead_time_sensor_s = 0.0;  // summed sensor-seconds at level 0
  bool perpetual = true;            // no sensor ever hit 0
  double simulated_s = 0.0;
};

// Runs the lifetime loop. Preconditions: capacity > 0, 0 < trigger < 1,
// 0 < initial <= 1, drains positive (1 or n values), horizon > 0.
LifetimeStats simulate_lifetime(const net::Deployment& deployment,
                                const LifetimeConfig& config);

// The largest uniform drain (W) the planner can sustain perpetually on
// this deployment, found by bisection over `probe` simulations with the
// given config (drain_w is overridden). Useful as a planner-quality
// metric: better planners sustain higher drains.
double max_sustainable_drain_w(const net::Deployment& deployment,
                               LifetimeConfig config, double lo_w,
                               double hi_w, std::size_t probes = 12);

// Fault-aware lifetime loop -------------------------------------------------
//
// Same trigger -> plan -> execute cycle, but missions run through the
// disruption-tolerant executor against a FaultModel: sensors can be dead
// or degraded, positions can be mis-surveyed, and the charger battery can
// be capped. Planning uses what the charger *believes* (surveyed
// positions, permanent deaths known at dispatch); transient outages are
// discovered mid-mission by the executor. Drain model: permanently failed
// sensors stop draining at their death time; transient outages suspend
// harvesting (and mission membership) but not drain.

struct FaultLifetimeConfig {
  LifetimeConfig base;
  FaultConfig faults;
  ExecutorConfig executor;
  // Copy base.planner / base.evaluation models into the executor config so
  // planning, execution, and replanning share one physics. Set false only
  // to deliberately mismatch them.
  bool sync_executor_models = true;
  // Wall time the charger waits before re-triggering after a mission that
  // made no progress (e.g. immediate battery shortfall); bounds the loop.
  double recovery_wait_s = 600.0;
};

// One point of the network survival curve (event-sampled at t = 0, each
// mission end, and the horizon).
struct SurvivalPoint {
  double t_s = 0.0;
  // Fraction of sensors neither permanently failed nor at battery level 0.
  double alive_fraction = 1.0;
};

struct FaultLifetimeStats {
  LifetimeStats base;
  std::size_t missions_completed = 0;  // executor reported full delivery
  std::size_t missions_degraded = 0;   // at least one disruption
  std::size_t replans = 0;
  std::size_t strandings = 0;
  std::size_t sensors_failed = 0;  // permanent hardware deaths by the end
  std::size_t total_disruptions = 0;
  // Indexed by static_cast<size_t>(FaultKind).
  std::vector<std::size_t> disruptions_by_kind;
  std::vector<SurvivalPoint> survival;
};

// Runs the fault-aware lifetime loop. Preconditions as simulate_lifetime
// plus the FaultModel's. Structured faults (never asserts) are returned
// for unexecutable scenarios; disruptions land in the stats.
support::Expected<FaultLifetimeStats> simulate_lifetime_with_faults(
    const net::Deployment& deployment, const FaultLifetimeConfig& config);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_LIFETIME_H_
