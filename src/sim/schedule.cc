#include "sim/schedule.h"

#include <algorithm>

#include "lp/simplex.h"
#include "support/require.h"

namespace bc::sim {

std::string_view to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kIsolated:
      return "isolated";
    case SchedulePolicy::kCumulative:
      return "cumulative";
    case SchedulePolicy::kOptimalLp:
      return "optimal-lp";
  }
  return "unknown";
}

namespace {

// The exact Eq. 3 schedule as a linear program over the stop times.
std::vector<double> optimal_lp_times(const net::Deployment& deployment,
                                     const tour::ChargingPlan& plan,
                                     const charging::ChargingModel& model) {
  lp::Problem problem;
  problem.num_vars = plan.stops.size();
  problem.objective.assign(problem.num_vars, 1.0);
  problem.rows.reserve(deployment.size());
  problem.rhs.reserve(deployment.size());
  for (const net::Sensor& s : deployment.sensors()) {
    std::vector<double> row(problem.num_vars);
    for (std::size_t i = 0; i < plan.stops.size(); ++i) {
      // metric-exempt: received power over the air gap (radio physics).
      const double d = geometry::distance(plan.stops[i].position, s.position);
      row[i] = model.received_power_w(d);
    }
    problem.rows.push_back(std::move(row));
    problem.rhs.push_back(s.demand_j);
  }
  const lp::Solution solution = lp::solve(problem);
  support::ensure(solution.status == lp::Status::kOptimal,
                  "the Eq. 3 schedule LP is always feasible and bounded");
  return solution.x;
}

}  // namespace

std::vector<double> schedule_stop_times(const net::Deployment& deployment,
                                        const tour::ChargingPlan& plan,
                                        const charging::ChargingModel& model,
                                        SchedulePolicy policy) {
  support::require(tour::plan_is_partition(deployment, plan),
                   "plan must assign every sensor to exactly one stop");
  std::vector<double> times;
  times.reserve(plan.stops.size());

  if (policy == SchedulePolicy::kIsolated) {
    for (const tour::Stop& stop : plan.stops) {
      times.push_back(tour::isolated_stop_time_s(deployment, stop, model));
    }
    return times;
  }

  if (policy == SchedulePolicy::kOptimalLp) {
    return optimal_lp_times(deployment, plan, model);
  }

  // Cumulative: walk the tour, tracking what each sensor has received so
  // far from every earlier stop, and park only long enough to clear the
  // current stop's members' remaining deficits.
  std::vector<double> received(deployment.size(), 0.0);
  for (const tour::Stop& stop : plan.stops) {
    double t = 0.0;
    for (const net::SensorId id : stop.members) {
      const net::Sensor& s = deployment.sensor(id);
      const double deficit = s.demand_j - received[id];
      if (deficit <= 0.0) continue;
      // metric-exempt: received power over the air gap (radio physics).
      const double d = geometry::distance(stop.position, s.position);
      t = std::max(t, deficit / model.received_power_w(d));
    }
    times.push_back(t);
    if (t > 0.0) {
      for (const net::Sensor& s : deployment.sensors()) {
        // metric-exempt: received power over the air gap (radio physics).
        const double d = geometry::distance(stop.position, s.position);
        received[s.id] += model.received_power_w(d) * t;
      }
    }
  }
  return times;
}

std::vector<double> received_energy_j(const net::Deployment& deployment,
                                      const tour::ChargingPlan& plan,
                                      const charging::ChargingModel& model,
                                      const std::vector<double>& stop_times_s) {
  support::require(stop_times_s.size() == plan.stops.size(),
                   "one stop time per stop");
  std::vector<double> received(deployment.size(), 0.0);
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    if (stop_times_s[i] <= 0.0) continue;
    for (const net::Sensor& s : deployment.sensors()) {
      // metric-exempt: received power over the air gap (radio physics).
      const double d =
          geometry::distance(plan.stops[i].position, s.position);
      received[s.id] += model.received_power_w(d) * stop_times_s[i];
    }
  }
  return received;
}

}  // namespace bc::sim
