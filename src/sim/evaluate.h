// Plan evaluation: the energy/latency breakdown the paper's figures plot.
//
// Total energy = movement energy (E_m x tour length) + charging energy
// (charger draw x total parked time) — the objective of Eq. 3. The
// evaluator also verifies feasibility: with the scheduled stop times, every
// sensor's physically received energy must meet its demand.

#ifndef BUNDLECHARGE_SIM_EVALUATE_H_
#define BUNDLECHARGE_SIM_EVALUATE_H_

#include <cstddef>
#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "net/deployment.h"
#include "net/metric.h"
#include "sim/schedule.h"
#include "tour/plan.h"

namespace bc::sim {

struct PlanMetrics {
  std::size_t num_stops = 0;
  double tour_length_m = 0.0;
  double move_energy_j = 0.0;
  double move_time_s = 0.0;
  double charge_time_s = 0.0;    // total parked time, sum of stop times
  double charge_energy_j = 0.0;  // charger-side energy while parked
  double total_energy_j = 0.0;   // move + charge (the paper's objective)
  double total_time_s = 0.0;     // tour latency: moving + parked
  // Charging time averaged over sensors ("average charging time for each
  // sensor", Figs. 12(c)/13(c)).
  double avg_charge_time_per_sensor_s = 0.0;
  // Feasibility check: minimum over sensors of received/demand; >= 1 means
  // every sensor met its demand (small tolerance applied by the checker).
  double min_demand_fraction = 0.0;
};

struct EvaluationConfig {
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
  SchedulePolicy policy = SchedulePolicy::kIsolated;
  // Movement metric for tour legs (null = Euclidean). Stop-to-sensor
  // charging distances are radio physics and stay Euclidean regardless.
  const net::MetricSpace* metric = nullptr;
};

// Evaluates a plan. Precondition: the plan partitions the deployment's
// sensors (every planner in this library guarantees that).
PlanMetrics evaluate_plan(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const EvaluationConfig& config);

// True iff the plan's schedule delivers at least (1 - tolerance) x demand
// to every sensor.
bool plan_is_feasible(const net::Deployment& deployment,
                      const tour::ChargingPlan& plan,
                      const EvaluationConfig& config,
                      double tolerance = 1e-6);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_EVALUATE_H_
