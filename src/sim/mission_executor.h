// Disruption-tolerant mission execution.
//
// The lifetime loop used to assume a planned mission executes exactly as
// evaluated; under fault injection that assumption breaks in three ways:
// planned bundle members can be dead on arrival, the true stop time can
// overrun the plan (position noise + degraded harvesters), and a
// battery-capped charger can project a shortfall before its depot return.
// The executor steps a plan stop-by-stop against the faulted world,
// detects each disruption, and applies a configured degradation policy
// instead of asserting:
//
//   kSkip      ignore/absorb — drop dead members, accept the overrun, or
//              push on past battery projections (the reckless mode that
//              makes physical stranding reachable);
//   kTruncate  bound the damage — cap the stop at the tolerance, or abandon
//              the rest of the tour and return to the depot;
//   kReplan    re-plan the remaining deficits online from the current
//              position (tour/replan.h's bounded-retry ladder), falling
//              back to kTruncate when the replan budget is exhausted.
//
// Every disruption is reported as a structured FaultKind outcome in the
// mission report; a mission that degrades is a result, not an exception.

#ifndef BUNDLECHARGE_SIM_MISSION_EXECUTOR_H_
#define BUNDLECHARGE_SIM_MISSION_EXECUTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "net/deployment.h"
#include "sim/faults.h"
#include "support/expected.h"
#include "tour/plan.h"
#include "tour/replan.h"

namespace bc::sim {

enum class DisruptionPolicy { kSkip, kTruncate, kReplan };

std::string_view to_string(DisruptionPolicy policy);

struct ExecutorConfig {
  // A stop whose actual time exceeds planned x tolerance is an overrun.
  double stop_time_tolerance = 2.0;
  DisruptionPolicy on_dead_member = DisruptionPolicy::kSkip;
  DisruptionPolicy on_overrun = DisruptionPolicy::kTruncate;
  DisruptionPolicy on_battery_shortfall = DisruptionPolicy::kTruncate;
  // Online replans allowed per mission (only consulted by kReplan policies).
  std::size_t max_replans = 3;
  tour::ReplanOptions replan{};
  // Planner knobs used when a replan fires.
  tour::PlannerConfig planner{};
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
};

// One detected disruption and how it was resolved (in the message).
struct Disruption {
  support::FaultKind kind = support::FaultKind::kNone;
  std::size_t stop_index = support::kNoStop;  // visit counter, not plan slot
  std::string message;
};

struct MissionReport {
  // Energy actually delivered per sensor (one-to-many: every live sensor
  // harvests from every stop), sized to the deployment.
  std::vector<double> delivered_j;
  double mission_time_s = 0.0;  // travel + parked
  double tour_length_m = 0.0;   // metres actually driven
  double move_energy_j = 0.0;
  double charge_time_s = 0.0;
  double charge_energy_j = 0.0;
  double battery_used_j = 0.0;  // == move + charge energy
  bool completed = true;   // every live mission sensor met its demand
  bool stranded = false;   // MC battery died before reaching the depot
  std::size_t stops_planned = 0;
  std::size_t stops_visited = 0;
  std::size_t stops_skipped = 0;  // emptied by deaths, never parked at
  std::size_t replans = 0;
  geometry::Point2 final_position;  // depot unless stranded
  std::vector<Disruption> disruptions;

  std::size_t count(support::FaultKind kind) const;
};

// Executes `plan` against the faulted world starting at `start_time_s`.
// `demand_j` holds this mission's per-sensor targets (index = sensor id;
// 0 = not part of the mission); plan stop members are deployment ids.
// Returns a kInvalidInput fault for a plan referencing unknown sensors;
// every runtime disruption lands in the report, never in the fault channel.
// Precondition: demand_j.size() == deployment.size().
support::Expected<MissionReport> execute_mission(
    const net::Deployment& deployment, const std::vector<double>& demand_j,
    const tour::ChargingPlan& plan, const FaultModel& faults,
    double start_time_s, const ExecutorConfig& config);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_MISSION_EXECUTOR_H_
