#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/require.h"
#include "support/rng.h"

namespace bc::sim {

namespace {

constexpr double kSecondsPerDay = 24.0 * 3600.0;

// Stream tags keep the four fault dimensions on independent SplitMix64
// lanes: enabling or re-parameterising one dimension never shifts the
// draws of another, so scenario A-vs-B comparisons stay paired.
enum StreamTag : std::uint64_t {
  kDeathStream = 0x5eed0001,
  kOutageStream = 0x5eed0002,
  kEfficiencyStream = 0x5eed0003,
  kPositionStream = 0x5eed0004,
};

// Per-sensor child generator: one SplitMix64 step ties (seed, tag, id) to
// a full xoshiro state, so sensors are mutually independent.
support::Rng sensor_stream(std::uint64_t seed, std::uint64_t tag,
                           net::SensorId id) {
  support::SplitMix64 mix(seed ^ (tag * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t base = mix.next();
  return support::Rng(base + 0x9e3779b97f4a7c15ULL * (id + 1));
}

double exponential(support::Rng& rng, double mean) {
  // Inverse CDF; uniform() < 1 so the log argument stays positive.
  return -mean * std::log1p(-rng.uniform());
}

}  // namespace

FaultModel::FaultModel(const net::Deployment& deployment,
                       const FaultConfig& config)
    : config_(config) {
  support::require(config.permanent_death_rate_per_day >= 0.0,
                   "death rate must be non-negative");
  support::require(config.transient_outage_rate_per_day >= 0.0,
                   "outage rate must be non-negative");
  support::require(config.transient_outage_mean_s > 0.0,
                   "outage mean duration must be positive");
  support::require(
      config.max_efficiency_loss >= 0.0 && config.max_efficiency_loss < 1.0,
      "efficiency loss must be in [0, 1)");
  support::require(config.position_noise_stddev_m >= 0.0,
                   "position noise must be non-negative");
  support::require(config.mc_battery_capacity_j >= 0.0,
                   "MC battery capacity must be non-negative (0 = unlimited)");
  support::require(config.horizon_s > 0.0, "fault horizon must be positive");

  const std::size_t n = deployment.size();
  death_time_s_.resize(n, std::numeric_limits<double>::infinity());
  outages_.resize(n);
  efficiency_.resize(n, 1.0);
  true_positions_.assign(deployment.positions().begin(),
                         deployment.positions().end());

  for (net::SensorId id = 0; id < n; ++id) {
    if (config.permanent_death_rate_per_day > 0.0) {
      support::Rng rng = sensor_stream(config.seed, kDeathStream, id);
      const double mean_s =
          kSecondsPerDay / config.permanent_death_rate_per_day;
      const double t = exponential(rng, mean_s);
      if (t <= config.horizon_s) death_time_s_[id] = t;
    }
    if (config.transient_outage_rate_per_day > 0.0) {
      support::Rng rng = sensor_stream(config.seed, kOutageStream, id);
      const double gap_mean_s =
          kSecondsPerDay / config.transient_outage_rate_per_day;
      double t = 0.0;
      while (true) {
        t += exponential(rng, gap_mean_s);
        if (t > config.horizon_s) break;
        const double duration =
            exponential(rng, config.transient_outage_mean_s);
        outages_[id].push_back({t, t + duration});
        t += duration;
      }
    }
    if (config.max_efficiency_loss > 0.0) {
      support::Rng rng = sensor_stream(config.seed, kEfficiencyStream, id);
      efficiency_[id] = 1.0 - rng.uniform(0.0, config.max_efficiency_loss);
    }
    if (config.position_noise_stddev_m > 0.0) {
      support::Rng rng = sensor_stream(config.seed, kPositionStream, id);
      const double sigma = config.position_noise_stddev_m;
      true_positions_[id] += {rng.gaussian(0.0, sigma),
                              rng.gaussian(0.0, sigma)};
    }
  }
}

bool FaultModel::is_failed(net::SensorId id, double t_s) const {
  support::require(id < size(), "sensor id out of range");
  if (t_s >= death_time_s_[id]) return true;
  const std::vector<Outage>& windows = outages_[id];
  // Last outage starting at or before t; membership is a range check.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), t_s,
      [](double t, const Outage& o) { return t < o.start_s; });
  return it != windows.begin() && t_s < std::prev(it)->end_s;
}

bool FaultModel::permanently_failed_by(net::SensorId id, double t_s) const {
  support::require(id < size(), "sensor id out of range");
  return t_s >= death_time_s_[id];
}

double FaultModel::death_time_s(net::SensorId id) const {
  support::require(id < size(), "sensor id out of range");
  return death_time_s_[id];
}

std::size_t FaultModel::permanent_failures_by(double t_s) const {
  std::size_t count = 0;
  for (const double t : death_time_s_) {
    if (t_s >= t) ++count;
  }
  return count;
}

double FaultModel::efficiency(net::SensorId id) const {
  support::require(id < size(), "sensor id out of range");
  return efficiency_[id];
}

geometry::Point2 FaultModel::true_position(net::SensorId id) const {
  support::require(id < size(), "sensor id out of range");
  return true_positions_[id];
}

double FaultModel::received_power_w(const charging::ChargingModel& model,
                                    geometry::Point2 charger_pos,
                                    net::SensorId id) const {
  // metric-exempt: received power over the true air gap (radio physics).
  const double d = geometry::distance(charger_pos, true_position(id));
  return efficiency(id) * model.received_power_w(d);
}

}  // namespace bc::sim
