// Deterministic fault injection for WRSN mission execution.
//
// The paper's motivating loop assumes every planned mission executes
// perfectly; real deployments do not. This model injects the four failure
// modes that dominate field reports: sensor death (permanent hardware
// failure and transient outages), per-sensor charging-efficiency
// degradation (a harvester whose effective alpha of Eq. 1 has decayed),
// position noise relative to the surveyed deployment (the planner parks
// where the survey said the sensor is; physics happens where it actually
// is), and a hard mobile-charger battery cap with stranding semantics.
//
// Determinism contract (same as the parallel layer, PR 1): every fault
// timeline is materialised at construction from SplitMix64-derived
// sub-streams of a single seed — one independent stream per fault
// dimension, one child per sensor — so results are bit-identical at every
// BC_THREADS value and across reruns, and enabling one fault dimension
// never shifts another's draws.

#ifndef BUNDLECHARGE_SIM_FAULTS_H_
#define BUNDLECHARGE_SIM_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "charging/model.h"
#include "geometry/point.h"
#include "net/deployment.h"
#include "net/sensor.h"

namespace bc::sim {

struct FaultConfig {
  std::uint64_t seed = 1;
  // Permanent hardware death: exponential hazard per sensor, expressed as
  // expected failures per sensor per simulated day. 0 disables.
  double permanent_death_rate_per_day = 0.0;
  // Transient outages (radio sleep, harvester brown-out): arrival rate per
  // sensor per day; each outage lasts an exponential time with this mean.
  double transient_outage_rate_per_day = 0.0;
  double transient_outage_mean_s = 3600.0;
  // Charging-efficiency degradation: each sensor's harvester keeps a factor
  // drawn uniformly from [1 - max_efficiency_loss, 1]; it scales the
  // effective alpha of Eq. 1 for that sensor. 0 disables.
  double max_efficiency_loss = 0.0;
  // Gaussian noise (stddev, metres, per coordinate) between the surveyed
  // position the planner uses and the position the physics uses. 0 disables.
  double position_noise_stddev_m = 0.0;
  // Mobile-charger battery per mission (J); a mission whose projected
  // movement + radiated energy would exceed it must degrade (truncate or
  // replan) or strand. 0 = unlimited.
  double mc_battery_capacity_j = 0.0;
  // Fault timelines (deaths, outages) are materialised through this
  // horizon; queries beyond it saturate at the last known state.
  double horizon_s = 30.0 * 24.0 * 3600.0;
};

// Immutable per-deployment fault realisation. Thread-safe by construction:
// all state is precomputed, queries are pure reads.
class FaultModel {
 public:
  // Preconditions: rates/losses/noise non-negative, max_efficiency_loss < 1,
  // horizon > 0, outage mean > 0, battery cap >= 0.
  FaultModel(const net::Deployment& deployment, const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  std::size_t size() const { return true_positions_.size(); }

  // True when the sensor cannot sense, drain, or harvest at time t
  // (permanently failed, or inside a transient outage window).
  bool is_failed(net::SensorId id, double t_s) const;
  // Permanent hardware death only.
  bool permanently_failed_by(net::SensorId id, double t_s) const;
  // Time of permanent death (infinity when the sensor never fails).
  double death_time_s(net::SensorId id) const;
  // Count of sensors permanently failed by time t.
  std::size_t permanent_failures_by(double t_s) const;

  // Harvester efficiency factor in (0, 1]; scales effective alpha.
  double efficiency(net::SensorId id) const;
  // Where the sensor actually is (surveyed position + noise).
  geometry::Point2 true_position(net::SensorId id) const;

  double mc_battery_capacity_j() const { return config_.mc_battery_capacity_j; }
  bool has_battery_cap() const { return config_.mc_battery_capacity_j > 0.0; }

  // Power a (non-failed) sensor harvests from a charger parked at
  // `charger_pos`, using the true position and the degraded alpha.
  double received_power_w(const charging::ChargingModel& model,
                          geometry::Point2 charger_pos,
                          net::SensorId id) const;

 private:
  struct Outage {
    double start_s;
    double end_s;
  };

  FaultConfig config_;
  std::vector<double> death_time_s_;          // per sensor, inf = never
  std::vector<std::vector<Outage>> outages_;  // per sensor, sorted by start
  std::vector<double> efficiency_;            // per sensor, (0, 1]
  std::vector<geometry::Point2> true_positions_;
};

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_FAULTS_H_
