#include "sim/mission_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "net/metric.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/require.h"

namespace bc::sim {

namespace {

using support::Fault;
using support::FaultKind;

constexpr double kEps = 1e-9;

// Position `fraction` of the way along the metric route from `from` to
// `to` whose total length is `total_len`. Euclidean routes interpolate
// the straight leg exactly as before; graph routes walk the waypoint
// polyline.
geometry::Point2 point_along(const net::MetricSpace* metric,
                             geometry::Point2 from, geometry::Point2 to,
                             double fraction, double total_len) {
  if (metric == nullptr) return geometry::lerp(from, to, fraction);
  std::vector<geometry::Point2> waypoints;
  metric->path(from, to, waypoints);
  double remaining = fraction * total_len;
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    // metric-exempt: chord of one polyline segment of the metric's own
    // driven path — straight by construction.
    const double seg = geometry::distance(waypoints[i], waypoints[i + 1]);
    if (seg >= remaining) {
      return seg == 0.0
                 ? waypoints[i]
                 : geometry::lerp(waypoints[i], waypoints[i + 1],
                                  remaining / seg);
    }
    remaining -= seg;
  }
  return to;
}

}  // namespace

std::string_view to_string(DisruptionPolicy policy) {
  switch (policy) {
    case DisruptionPolicy::kSkip:
      return "skip";
    case DisruptionPolicy::kTruncate:
      return "truncate";
    case DisruptionPolicy::kReplan:
      return "replan";
  }
  return "unknown";
}

std::size_t MissionReport::count(support::FaultKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(disruptions.begin(), disruptions.end(),
                    [&](const Disruption& d) { return d.kind == kind; }));
}

support::Expected<MissionReport> execute_mission(
    const net::Deployment& deployment, const std::vector<double>& demand_j,
    const tour::ChargingPlan& plan, const FaultModel& faults,
    double start_time_s, const ExecutorConfig& config) {
  support::require(demand_j.size() == deployment.size(),
                   "one demand per sensor");
  support::require(config.stop_time_tolerance >= 1.0,
                   "stop-time tolerance must be >= 1");
  support::require(faults.size() == deployment.size(),
                   "fault model built for a different deployment");
  for (const tour::Stop& stop : plan.stops) {
    for (const net::SensorId id : stop.members) {
      if (id >= deployment.size()) {
        return Fault{FaultKind::kInvalidInput,
                     "plan references sensor " + std::to_string(id) +
                         " outside the deployment"};
      }
    }
  }

  const charging::ChargingModel& charging = config.charging;
  const charging::MovementModel& movement = config.movement;
  // Movement legs follow the planner's metric; stop-to-sensor charging
  // distances below stay Euclidean (radio physics, not driving).
  const net::MetricSpace* metric = config.planner.metric.get();
  const bool capped = faults.has_battery_cap();
  const bool reckless =
      config.on_battery_shortfall == DisruptionPolicy::kSkip;

  MissionReport report;
  report.stops_planned = plan.stops.size();
  report.delivered_j.assign(deployment.size(), 0.0);
  report.final_position = plan.depot;

  std::vector<double> remaining = demand_j;
  double battery =
      capped ? faults.mc_battery_capacity_j()
             : std::numeric_limits<double>::infinity();
  geometry::Point2 at = plan.depot;
  double now = start_time_s;
  std::size_t visit = 0;

  std::vector<tour::Stop> stops = plan.stops;
  std::size_t next = 0;

  obs::TraceSpan span("executor.mission");
  span.attr("stops_planned", static_cast<std::uint64_t>(plan.stops.size()));

  const auto disrupt = [&](FaultKind kind, std::string message) {
    obs::TracePoint("executor.disruption")
        .attr("kind", support::to_string(kind))
        .attr("visit", static_cast<std::uint64_t>(visit));
    report.disruptions.push_back({kind, visit, std::move(message)});
  };

  // Drives toward `target`; in reckless mode the battery can die mid-leg,
  // leaving the charger stranded part-way. Returns false when stranded.
  const auto travel_to = [&](geometry::Point2 target) {
    const double dist = net::metric_distance(metric, at, target);
    if (dist == 0.0) return true;
    const double cost = movement.move_energy_j(dist);
    if (capped && cost > battery + kEps) {
      const double fraction = std::max(0.0, battery / cost);
      at = point_along(metric, at, target, fraction, dist);
      report.tour_length_m += dist * fraction;
      report.mission_time_s += movement.move_time_s(dist) * fraction;
      report.move_energy_j += battery;
      report.battery_used_j += battery;
      battery = 0.0;
      report.stranded = true;
      report.completed = false;
      disrupt(FaultKind::kMcStranded,
              "battery died " +
                  std::to_string(net::metric_distance(metric, at, plan.depot)) +
                  " m short of the depot");
      return false;
    }
    battery -= cost;
    at = target;
    report.tour_length_m += dist;
    report.mission_time_s += movement.move_time_s(dist);
    report.move_energy_j += cost;
    report.battery_used_j += cost;
    now += movement.move_time_s(dist);
    return true;
  };

  // Online replan over the believed-alive, still-owed sensors. Returns
  // true when a new work list was installed (possibly empty).
  const auto try_replan = [&]() {
    if (report.replans >= config.max_replans) {
      disrupt(FaultKind::kReplanExhausted,
              "mission replan budget (" + std::to_string(config.max_replans) +
                  ") exhausted");
      return false;
    }
    tour::ReplanRequest request;
    request.current_position = at;
    for (net::SensorId id = 0; id < deployment.size(); ++id) {
      if (remaining[id] > kEps && !faults.is_failed(id, now)) {
        request.remaining.push_back(id);
        request.deficits_j.push_back(remaining[id]);
      }
    }
    auto replanned =
        tour::replan_tour(deployment, request, config.planner, config.replan);
    if (!replanned) {
      disrupt(replanned.fault().kind, replanned.fault().message);
      return false;
    }
    stops = std::move(replanned.value().stops);
    next = 0;
    ++report.replans;
    return true;
  };

  while (next < stops.size()) {
    const tour::Stop stop = stops[next];
    ++visit;

    // (1) Membership health: members that died since planning, and members
    // already topped up by one-to-many spill from earlier stops.
    std::vector<net::SensorId> live;
    std::size_t dead = 0;
    for (const net::SensorId id : stop.members) {
      if (faults.is_failed(id, now)) {
        ++dead;
      } else if (remaining[id] > kEps) {
        live.push_back(id);
      }
    }
    if (dead > 0) {
      disrupt(FaultKind::kSensorDead,
              std::to_string(dead) + " of " +
                  std::to_string(stop.members.size()) +
                  " members dead (policy: " +
                  std::string(to_string(config.on_dead_member)) + ")");
      if (config.on_dead_member == DisruptionPolicy::kTruncate) {
        report.completed = false;
        break;
      }
      if (config.on_dead_member == DisruptionPolicy::kReplan && try_replan()) {
        continue;
      }
      // kSkip (or a failed replan): serve the surviving members below.
    }
    if (live.empty()) {
      ++report.stops_skipped;
      ++next;
      continue;
    }

    // (2) Stop time: the plan's belief (surveyed positions, nominal
    // harvesters) versus the faulted world's reality.
    double planned_t = 0.0;
    for (const net::SensorId id : stop.members) {
      // metric-exempt: stop-to-sensor charging range is radio physics.
      const double d =
          geometry::distance(stop.position, deployment.sensor(id).position);
      planned_t = std::max(planned_t, charging.charge_time_s(d, demand_j[id]));
    }
    double actual_t = 0.0;
    for (const net::SensorId id : live) {
      const double p = faults.received_power_w(charging, stop.position, id);
      actual_t = std::max(actual_t, remaining[id] / p);
    }
    double park_t = actual_t;
    bool replan_after_stop = false;
    if (actual_t > config.stop_time_tolerance * planned_t + kEps) {
      disrupt(FaultKind::kStopOverrun,
              "needs " + std::to_string(actual_t) + " s vs " +
                  std::to_string(planned_t) + " s planned (policy: " +
                  std::string(to_string(config.on_overrun)) + ")");
      switch (config.on_overrun) {
        case DisruptionPolicy::kSkip:
          break;  // accept the overrun, park the full actual time
        case DisruptionPolicy::kTruncate:
          park_t = config.stop_time_tolerance * planned_t;
          break;
        case DisruptionPolicy::kReplan:
          park_t = config.stop_time_tolerance * planned_t;
          replan_after_stop = true;
          break;
      }
    }

    // (3) Battery projection: can we serve this stop and still make the
    // depot? Reckless mode skips the projection — that is what makes
    // physical stranding reachable.
    if (capped && !reckless) {
      const double projected =
          movement.move_energy_j(net::metric_distance(metric, at,
                                                      stop.position)) +
          charging.cost_of_stop_j(park_t) +
          movement.move_energy_j(
              net::metric_distance(metric, stop.position, plan.depot));
      if (projected > battery + kEps) {
        disrupt(FaultKind::kBatteryShortfall,
                "stop needs " + std::to_string(projected) + " J, " +
                    std::to_string(battery) + " J left (policy: " +
                    std::string(to_string(config.on_battery_shortfall)) + ")");
        if (config.on_battery_shortfall == DisruptionPolicy::kReplan &&
            try_replan()) {
          continue;
        }
        report.completed = false;
        break;
      }
    }

    // (4) Travel and park. In reckless mode the park is cut short the
    // moment the battery dies.
    if (!travel_to(stop.position)) break;
    bool strand_after_park = false;
    if (capped && charging.cost_of_stop_j(park_t) > battery + kEps) {
      park_t = battery / charging.charge_cost_w();
      strand_after_park = true;
    }
    // One-to-many: every live sensor harvests from this stop (Eq. 3's
    // constraint sums over all stops), at its true position and degraded
    // efficiency; failed sensors harvest nothing.
    for (net::SensorId id = 0; id < deployment.size(); ++id) {
      if (faults.is_failed(id, now)) continue;
      const double got =
          park_t * faults.received_power_w(charging, stop.position, id);
      report.delivered_j[id] += got;
      remaining[id] = std::max(0.0, remaining[id] - got);
    }
    const double park_cost = charging.cost_of_stop_j(park_t);
    report.charge_time_s += park_t;
    report.charge_energy_j += park_cost;
    report.battery_used_j += park_cost;
    report.mission_time_s += park_t;
    battery -= park_cost;
    now += park_t;
    ++report.stops_visited;
    ++next;
    if (strand_after_park) {
      report.stranded = true;
      report.completed = false;
      report.final_position = at;
      disrupt(FaultKind::kMcStranded,
              "battery died while charging; parked at stop, " +
                  std::to_string(net::metric_distance(metric, at, plan.depot)) +
                  " m from the depot");
      break;
    }
    if (replan_after_stop && try_replan()) continue;
  }

  if (!report.stranded) {
    travel_to(plan.depot);
  }
  report.final_position = at;

  // Completion: every believed-alive mission sensor met its target.
  for (net::SensorId id = 0; id < deployment.size(); ++id) {
    if (demand_j[id] <= 0.0 || faults.is_failed(id, now)) continue;
    if (remaining[id] > std::max(kEps, 1e-6 * demand_j[id])) {
      report.completed = false;
      break;
    }
  }

  {
    static const obs::Counter missions("executor.missions");
    static const obs::Counter visited("executor.stops_visited");
    static const obs::Counter skipped("executor.stops_skipped");
    static const obs::Counter disruptions("executor.disruptions");
    static const obs::Counter replans("executor.replans");
    static const obs::Counter strandings("executor.strandings");
    missions.add();
    visited.add(report.stops_visited);
    skipped.add(report.stops_skipped);
    disruptions.add(report.disruptions.size());
    replans.add(report.replans);
    strandings.add(report.stranded ? 1 : 0);
  }
  span.attr("stops_visited", static_cast<std::uint64_t>(report.stops_visited))
      .attr("stops_skipped", static_cast<std::uint64_t>(report.stops_skipped))
      .attr("disruptions",
            static_cast<std::uint64_t>(report.disruptions.size()))
      .attr("replans", static_cast<std::uint64_t>(report.replans))
      .attr("completed", report.completed)
      .attr("stranded", report.stranded);
  return report;
}

}  // namespace bc::sim
