// Multi-seed experiment runner.
//
// Every point in the paper's figures is "an average of 100 runs with
// different random seeds" (§VI-A). This runner regenerates the deployment
// per seed, plans with a given algorithm, evaluates, and aggregates each
// metric into a RunningStat.

#ifndef BUNDLECHARGE_SIM_EXPERIMENT_H_
#define BUNDLECHARGE_SIM_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/deployment.h"
#include "sim/checkpoint.h"
#include "sim/evaluate.h"
#include "support/deadline.h"
#include "support/expected.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"
#include "tour/planner.h"

namespace bc::sim {

// Aggregated metrics over repeated runs; field names mirror PlanMetrics.
struct AggregateMetrics {
  support::RunningStat num_stops;
  support::RunningStat tour_length_m;
  support::RunningStat move_energy_j;
  support::RunningStat charge_time_s;
  support::RunningStat charge_energy_j;
  support::RunningStat total_energy_j;
  support::RunningStat total_time_s;
  support::RunningStat avg_charge_time_per_sensor_s;
  support::RunningStat min_demand_fraction;

  void add(const PlanMetrics& m);
};

// Builds a fresh deployment for one run; receives a per-run child RNG.
// Runs may execute concurrently, so the factory must be safe to call from
// several threads at once (draw all randomness from the passed Rng and
// don't mutate captured state).
using DeploymentFactory = std::function<net::Deployment(support::Rng&)>;

struct ExperimentSpec {
  DeploymentFactory make_deployment;
  tour::Algorithm algorithm = tour::Algorithm::kBc;
  tour::PlannerConfig planner{};
  EvaluationConfig evaluation{};
  std::size_t runs = 100;
  std::uint64_t base_seed = 2019;
  // When true (default), every run asserts plan feasibility and the runner
  // throws on violation — benches should never silently report an
  // infeasible plan.
  bool verify_feasibility = true;
  // Worker threads for the run sweep (0 = keep the global setting). Runs
  // are independent cells with per-cell RNG streams, so the aggregate is
  // bit-identical at any thread count.
  support::ThreadsOption threads{};
};

// Runs the experiment and returns aggregated metrics. Runs execute in
// parallel on the global pool; results are identical to a serial sweep.
// Preconditions: spec.make_deployment set, spec.runs >= 1.
AggregateMetrics run_experiment(const ExperimentSpec& spec);

// Journaling and cancellation wrapper around one experiment's run sweep.
struct ExperimentControl {
  // Completed-cell journal (nullptr = no checkpointing). Cells already
  // journaled under this experiment's keys are decoded instead of
  // recomputed; new cells are recorded and flushed once per chunk.
  CheckpointJournal* journal = nullptr;
  // Names this experiment's cells inside the journal, e.g. "r=20/alg=BC";
  // must be unique per (config) cell of the enclosing sweep and
  // whitespace-free. Required when `journal` is set.
  std::string cell_prefix;
  // Cooperative cancellation, polled between chunks: on trip the journal
  // is flushed and a kBudgetExhausted fault returned — completed cells
  // survive for --resume.
  support::CancelToken cancel{};
  // Runs computed between journal flushes / cancellation polls.
  std::size_t chunk = 16;
};

// run_experiment with crash-safe checkpointing and cooperative
// cancellation. The aggregate is bit-identical to run_experiment(spec) —
// journaled cells round-trip their doubles exactly (hexfloat), chunking
// never reorders the serial in-order aggregation, and a kill + resume
// therefore reproduces the uninterrupted output byte for byte.
support::Expected<AggregateMetrics> run_experiment_resumable(
    const ExperimentSpec& spec, const ExperimentControl& control);

// Convenience factory for the paper's main workload: n sensors uniform
// over the given field.
DeploymentFactory uniform_factory(std::size_t n, net::FieldSpec field_spec);

}  // namespace bc::sim

#endif  // BUNDLECHARGE_SIM_EXPERIMENT_H_
