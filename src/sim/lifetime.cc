#include "sim/lifetime.h"

#include <algorithm>
#include <limits>

#include "support/require.h"

namespace bc::sim {

namespace {

// Advances all levels by `dt` of pure drain, tracking the worst fraction.
void drain_levels(std::vector<double>& levels,
                  const std::vector<double>& drain_w, double dt,
                  double capacity, LifetimeStats& stats) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    levels[i] = std::max(0.0, levels[i] - drain_w[i] * dt);
    stats.min_level_fraction =
        std::min(stats.min_level_fraction, levels[i] / capacity);
  }
}

}  // namespace

LifetimeStats simulate_lifetime(const net::Deployment& deployment,
                                const LifetimeConfig& config) {
  support::require(config.battery_capacity_j > 0.0,
                   "battery capacity must be positive");
  support::require(
      config.trigger_fraction > 0.0 && config.trigger_fraction < 1.0,
      "trigger fraction must be in (0, 1)");
  support::require(
      config.initial_fraction > 0.0 && config.initial_fraction <= 1.0,
      "initial fraction must be in (0, 1]");
  support::require(config.horizon_s > 0.0, "horizon must be positive");
  support::require(config.drain_w.size() == 1 ||
                       config.drain_w.size() == deployment.size(),
                   "one drain value, or one per sensor");
  for (const double w : config.drain_w) {
    support::require(w > 0.0, "drain must be positive");
  }

  std::vector<double> drain(deployment.size());
  for (std::size_t i = 0; i < drain.size(); ++i) {
    drain[i] = config.drain_w.size() == 1 ? config.drain_w[0]
                                          : config.drain_w[i];
  }

  const double capacity = config.battery_capacity_j;
  const double trigger_level = config.trigger_fraction * capacity;
  std::vector<double> levels(deployment.size(),
                             config.initial_fraction * capacity);

  LifetimeStats stats;
  stats.min_level_fraction = config.initial_fraction;
  double now = 0.0;

  while (now < config.horizon_s) {
    // Time until the first sensor crosses the trigger level.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (levels[i] <= trigger_level) {
        dt = 0.0;
        break;
      }
      dt = std::min(dt, (levels[i] - trigger_level) / drain[i]);
    }
    if (now + dt >= config.horizon_s) {
      drain_levels(levels, drain, config.horizon_s - now, capacity, stats);
      now = config.horizon_s;
      break;
    }
    drain_levels(levels, drain, dt, capacity, stats);
    now += dt;

    // Dispatch a mission over the current deficits.
    std::vector<double> deficits(levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i) {
      deficits[i] = std::max(capacity - levels[i], 1e-9);
    }
    const net::Deployment mission =
        net::with_demands(deployment, std::move(deficits));
    const tour::ChargingPlan plan =
        tour::plan_charging_tour(mission, config.algorithm, config.planner);
    const std::vector<double> times = schedule_stop_times(
        mission, plan, config.evaluation.charging, config.evaluation.policy);
    const std::vector<double> received = received_energy_j(
        mission, plan, config.evaluation.charging, times);

    double mission_time =
        config.evaluation.movement.move_time_s(tour::plan_tour_length(plan));
    double radiated_time = 0.0;
    for (const double t : times) {
      mission_time += t;
      radiated_time += t;
    }
    stats.charger_energy_j +=
        config.evaluation.movement.move_energy_j(
            tour::plan_tour_length(plan)) +
        config.evaluation.charging.cost_of_stop_j(radiated_time);
    stats.charger_busy_s += mission_time;
    ++stats.missions;

    // Drain through the mission (recharge credited at the end —
    // conservative); account sensor-seconds spent flat.
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const double survive_s = levels[i] / drain[i];
      if (survive_s < mission_time) {
        stats.dead_time_sensor_s += mission_time - survive_s;
        stats.perpetual = false;
      }
      const double drained = std::max(0.0, levels[i] -
                                               drain[i] * mission_time);
      stats.min_level_fraction =
          std::min(stats.min_level_fraction, drained / capacity);
      levels[i] = std::min(capacity, drained + received[i]);
    }
    now += mission_time;
  }

  stats.simulated_s = now;
  return stats;
}

double max_sustainable_drain_w(const net::Deployment& deployment,
                               LifetimeConfig config, double lo_w,
                               double hi_w, std::size_t probes) {
  support::require(0.0 < lo_w && lo_w < hi_w, "need 0 < lo < hi");
  const auto sustainable = [&](double w) {
    config.drain_w = {w};
    return simulate_lifetime(deployment, config).perpetual;
  };
  if (sustainable(hi_w)) return hi_w;
  if (!sustainable(lo_w)) return 0.0;
  double lo = lo_w;
  double hi = hi_w;
  for (std::size_t i = 0; i < probes; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (sustainable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace bc::sim
