#include "sim/lifetime.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/require.h"

namespace bc::sim {

namespace {

// Advances all levels by `dt` of pure drain, tracking the worst fraction
// and accruing dead sensor-seconds for any sensor that is (or goes) flat
// inside the window. Inter-mission windows cannot kill a sensor when every
// mission restores it above the trigger — but a faulted/truncated mission
// breaks that invariant, and the t = 0 triggering scan starts below the
// trigger whenever initial_fraction <= trigger_fraction, so the accounting
// must be correct for arbitrary windows, not correct by accident.
void drain_levels(std::vector<double>& levels,
                  const std::vector<double>& drain_w, double dt,
                  double capacity, LifetimeStats& stats) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double survive_s = levels[i] / drain_w[i];
    if (survive_s < dt) {
      stats.dead_time_sensor_s += dt - survive_s;
      stats.perpetual = false;
    }
    levels[i] = std::max(0.0, levels[i] - drain_w[i] * dt);
    stats.min_level_fraction =
        std::min(stats.min_level_fraction, levels[i] / capacity);
  }
}

void validate_lifetime_config(const net::Deployment& deployment,
                              const LifetimeConfig& config) {
  support::require(config.battery_capacity_j > 0.0,
                   "battery capacity must be positive");
  support::require(
      config.trigger_fraction > 0.0 && config.trigger_fraction < 1.0,
      "trigger fraction must be in (0, 1)");
  support::require(
      config.initial_fraction > 0.0 && config.initial_fraction <= 1.0,
      "initial fraction must be in (0, 1]");
  support::require(config.horizon_s > 0.0, "horizon must be positive");
  support::require(config.drain_w.size() == 1 ||
                       config.drain_w.size() == deployment.size(),
                   "one drain value, or one per sensor");
  for (const double w : config.drain_w) {
    support::require(w > 0.0, "drain must be positive");
  }
}

std::vector<double> expand_drains(const net::Deployment& deployment,
                                  const LifetimeConfig& config) {
  std::vector<double> drain(deployment.size());
  for (std::size_t i = 0; i < drain.size(); ++i) {
    drain[i] = config.drain_w.size() == 1 ? config.drain_w[0]
                                          : config.drain_w[i];
  }
  return drain;
}

}  // namespace

LifetimeStats simulate_lifetime(const net::Deployment& deployment,
                                const LifetimeConfig& config) {
  validate_lifetime_config(deployment, config);
  const std::vector<double> drain = expand_drains(deployment, config);

  const double capacity = config.battery_capacity_j;
  const double trigger_level = config.trigger_fraction * capacity;
  std::vector<double> levels(deployment.size(),
                             config.initial_fraction * capacity);

  LifetimeStats stats;
  stats.min_level_fraction = config.initial_fraction;
  double now = 0.0;

  while (now < config.horizon_s) {
    // Time until the first sensor crosses the trigger level. At t = 0 with
    // initial_fraction <= trigger_fraction the scan trips immediately and
    // the first mission dispatches at t = 0.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (levels[i] <= trigger_level) {
        dt = 0.0;
        break;
      }
      dt = std::min(dt, (levels[i] - trigger_level) / drain[i]);
    }
    if (now + dt >= config.horizon_s) {
      drain_levels(levels, drain, config.horizon_s - now, capacity, stats);
      now = config.horizon_s;
      break;
    }
    drain_levels(levels, drain, dt, capacity, stats);
    now += dt;

    // Dispatch a mission over the current deficits.
    std::vector<double> deficits(levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i) {
      deficits[i] = std::max(capacity - levels[i], 1e-9);
    }
    const net::Deployment mission =
        net::with_demands(deployment, std::move(deficits));
    const tour::ChargingPlan plan =
        tour::plan_charging_tour(mission, config.algorithm, config.planner);
    const std::vector<double> times = schedule_stop_times(
        mission, plan, config.evaluation.charging, config.evaluation.policy);
    const std::vector<double> received = received_energy_j(
        mission, plan, config.evaluation.charging, times);

    // Tour legs follow the planner's movement metric (null = Euclidean).
    const double tour_length_m =
        tour::plan_tour_length(plan, config.planner.metric.get());
    double mission_time =
        config.evaluation.movement.move_time_s(tour_length_m);
    double radiated_time = 0.0;
    for (const double t : times) {
      mission_time += t;
      radiated_time += t;
    }
    stats.charger_energy_j +=
        config.evaluation.movement.move_energy_j(tour_length_m) +
        config.evaluation.charging.cost_of_stop_j(radiated_time);
    stats.charger_busy_s += mission_time;
    ++stats.missions;

    // Drain through the mission (recharge credited at the end —
    // conservative); drain_levels accrues the sensor-seconds spent flat.
    drain_levels(levels, drain, mission_time, capacity, stats);
    for (std::size_t i = 0; i < levels.size(); ++i) {
      levels[i] = std::min(capacity, levels[i] + received[i]);
    }
    now += mission_time;
  }

  stats.simulated_s = now;
  return stats;
}

double max_sustainable_drain_w(const net::Deployment& deployment,
                               LifetimeConfig config, double lo_w,
                               double hi_w, std::size_t probes) {
  support::require(0.0 < lo_w && lo_w < hi_w, "need 0 < lo < hi");
  const auto sustainable = [&](double w) {
    config.drain_w = {w};
    return simulate_lifetime(deployment, config).perpetual;
  };
  if (sustainable(hi_w)) return hi_w;
  if (!sustainable(lo_w)) return 0.0;
  double lo = lo_w;
  double hi = hi_w;
  for (std::size_t i = 0; i < probes; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (sustainable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Fault-aware loop -----------------------------------------------------------

namespace {

// Drains one window for the fault-aware loop: each hardware-alive sensor
// drains until the window end or its own death time, whichever comes
// first; flat-but-alive sensors accrue dead sensor-seconds. Hardware-dead
// time is *not* energy-dead time (tracked as sensors_failed instead).
void drain_levels_faulted(std::vector<double>& levels,
                          const std::vector<double>& drain_w, double now,
                          double dt, double capacity,
                          const FaultModel& faults, LifetimeStats& stats) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double alive_until =
        std::min(dt, faults.death_time_s(static_cast<net::SensorId>(i)) - now);
    if (alive_until <= 0.0) continue;  // dead before the window
    const double survive_s = levels[i] / drain_w[i];
    if (survive_s < alive_until) {
      stats.dead_time_sensor_s += alive_until - survive_s;
      stats.perpetual = false;
    }
    levels[i] = std::max(0.0, levels[i] - drain_w[i] * alive_until);
    stats.min_level_fraction =
        std::min(stats.min_level_fraction, levels[i] / capacity);
  }
}

}  // namespace

support::Expected<FaultLifetimeStats> simulate_lifetime_with_faults(
    const net::Deployment& deployment, const FaultLifetimeConfig& config) {
  validate_lifetime_config(deployment, config.base);
  support::require(config.recovery_wait_s > 0.0,
                   "recovery wait must be positive");
  const std::vector<double> drain = expand_drains(deployment, config.base);

  FaultConfig fault_config = config.faults;
  fault_config.horizon_s =
      std::max(fault_config.horizon_s, config.base.horizon_s);
  const FaultModel faults(deployment, fault_config);

  ExecutorConfig executor = config.executor;
  if (config.sync_executor_models) {
    executor.charging = config.base.evaluation.charging;
    executor.movement = config.base.evaluation.movement;
    executor.planner = config.base.planner;
  }

  const double capacity = config.base.battery_capacity_j;
  const double trigger_level = config.base.trigger_fraction * capacity;
  const double horizon = config.base.horizon_s;
  const std::size_t n = deployment.size();
  std::vector<double> levels(n, config.base.initial_fraction * capacity);

  FaultLifetimeStats stats;
  stats.base.min_level_fraction = config.base.initial_fraction;
  stats.disruptions_by_kind.assign(
      static_cast<std::size_t>(support::FaultKind::kNumFaultKinds), 0);

  double now = 0.0;
  const auto record_survival = [&]() {
    std::size_t alive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!faults.permanently_failed_by(static_cast<net::SensorId>(i), now) &&
          levels[i] > 0.0) {
        ++alive;
      }
    }
    stats.survival.push_back(
        {now, static_cast<double>(alive) / static_cast<double>(n)});
  };
  record_survival();

  while (now < horizon) {
    // Active = hardware-alive now. Trigger scan and death events both bound
    // the next drain window, so a sensor that would die *before* reaching
    // the trigger just freezes without spuriously dispatching a mission.
    double dt_trigger = std::numeric_limits<double>::infinity();
    double dt_death = std::numeric_limits<double>::infinity();
    std::size_t active = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const net::SensorId id = static_cast<net::SensorId>(i);
      if (faults.permanently_failed_by(id, now)) continue;
      ++active;
      dt_death = std::min(dt_death, faults.death_time_s(id) - now);
      if (levels[i] <= trigger_level) {
        dt_trigger = 0.0;
      } else {
        dt_trigger =
            std::min(dt_trigger, (levels[i] - trigger_level) / drain[i]);
      }
    }
    if (active == 0) {
      now = horizon;  // whole network hardware-dead; nothing left to drain
      break;
    }
    const double dt = std::min(dt_trigger, dt_death);
    if (now + dt >= horizon) {
      drain_levels_faulted(levels, drain, now, horizon - now, capacity, faults,
                           stats.base);
      now = horizon;
      break;
    }
    drain_levels_faulted(levels, drain, now, dt, capacity, faults, stats.base);
    now += dt;
    if (dt_death < dt_trigger) continue;  // pure death event, no trigger yet

    // Dispatch over the believed-alive sensors (permanent deaths known at
    // dispatch; transient outages are discovered by the executor).
    std::vector<net::SensorId> planned_ids;
    std::vector<geometry::Point2> planned_positions;
    std::vector<double> planned_deficits;
    for (std::size_t i = 0; i < n; ++i) {
      const net::SensorId id = static_cast<net::SensorId>(i);
      if (faults.permanently_failed_by(id, now)) continue;
      planned_ids.push_back(id);
      planned_positions.push_back(deployment.sensor(id).position);
      planned_deficits.push_back(std::max(capacity - levels[i], 1e-9));
    }
    const net::Deployment mission(std::move(planned_positions),
                                  deployment.field(), deployment.depot(),
                                  planned_deficits);
    tour::ChargingPlan plan = tour::plan_charging_tour(
        mission, config.base.algorithm, config.base.planner);
    for (tour::Stop& stop : plan.stops) {
      for (net::SensorId& member : stop.members) {
        member = planned_ids[member];
      }
    }
    std::vector<double> demand(n, 0.0);
    for (std::size_t k = 0; k < planned_ids.size(); ++k) {
      demand[planned_ids[k]] = planned_deficits[k];
    }

    auto executed =
        execute_mission(deployment, demand, plan, faults, now, executor);
    if (!executed) return executed.fault();  // malformed plan: library bug
    const MissionReport& report = executed.value();

    stats.base.charger_energy_j += report.battery_used_j;
    stats.base.charger_busy_s += report.mission_time_s;
    ++stats.base.missions;
    if (report.completed) ++stats.missions_completed;
    if (!report.disruptions.empty()) ++stats.missions_degraded;
    if (report.stranded) ++stats.strandings;
    stats.replans += report.replans;
    stats.total_disruptions += report.disruptions.size();
    for (const Disruption& d : report.disruptions) {
      ++stats.disruptions_by_kind[static_cast<std::size_t>(d.kind)];
    }

    // Drain through the mission (recharge credited at the end), then apply
    // what the faulted world actually delivered.
    drain_levels_faulted(levels, drain, now, report.mission_time_s, capacity,
                         faults, stats.base);
    const double mission_end = now + report.mission_time_s;
    for (std::size_t i = 0; i < n; ++i) {
      const net::SensorId id = static_cast<net::SensorId>(i);
      if (faults.permanently_failed_by(id, mission_end)) continue;
      levels[i] = std::min(capacity, levels[i] + report.delivered_j[i]);
    }
    now = mission_end;

    // A mission that consumed no time made no progress (e.g. instant
    // battery shortfall); wait before re-triggering so the loop stays
    // bounded instead of spinning at the same instant.
    if (report.mission_time_s <= 0.0) {
      const double wait = std::min(config.recovery_wait_s, horizon - now);
      drain_levels_faulted(levels, drain, now, wait, capacity, faults,
                           stats.base);
      now += wait;
    }
    record_survival();
  }

  stats.base.simulated_s = now;
  stats.sensors_failed = faults.permanent_failures_by(now);
  record_survival();
  return stats;
}

}  // namespace bc::sim
