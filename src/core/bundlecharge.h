// Umbrella header: include this to use the whole bundlecharge library.
//
// bundlecharge is a from-scratch C++20 implementation of
// "Bundle Charging: Wireless Charging Energy Minimization in Dense
// Wireless Sensor Networks" (Wang, Wu, Dai — IEEE ICDCS 2019).
//
// Typical use:
//
//   #include "core/bundlecharge.h"
//
//   bc::support::Rng rng(7);
//   auto profile = bc::core::icdcs2019_simulation_profile();
//   auto deployment =
//       bc::net::uniform_random_deployment(100, profile.field, rng);
//   bc::core::BundleChargingPlanner planner(profile);
//   auto result = planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
//   // result.plan  : the charging tour (stops + assigned sensors)
//   // result.metrics.total_energy_j : the Eq. 3 objective

#ifndef BUNDLECHARGE_CORE_BUNDLECHARGE_H_
#define BUNDLECHARGE_CORE_BUNDLECHARGE_H_

#include "bundle/bundle.h"          // IWYU pragma: export
#include "bundle/generator.h"       // IWYU pragma: export
#include "charging/model.h"         // IWYU pragma: export
#include "charging/movement.h"      // IWYU pragma: export
#include "core/planner_api.h"       // IWYU pragma: export
#include "io/deployment_io.h"       // IWYU pragma: export
#include "io/plan_io.h"             // IWYU pragma: export
#include "core/profiles.h"          // IWYU pragma: export
#include "core/version.h"           // IWYU pragma: export
#include "net/deployment.h"         // IWYU pragma: export
#include "sim/evaluate.h"           // IWYU pragma: export
#include "sim/experiment.h"         // IWYU pragma: export
#include "sim/schedule.h"           // IWYU pragma: export
#include "support/rng.h"            // IWYU pragma: export
#include "tour/multi_trip.h"        // IWYU pragma: export
#include "tour/plan.h"              // IWYU pragma: export
#include "tour/planner.h"           // IWYU pragma: export
#include "viz/plan_render.h"        // IWYU pragma: export

#endif  // BUNDLECHARGE_CORE_BUNDLECHARGE_H_
