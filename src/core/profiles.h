// Ready-made experiment profiles bundling charging model, movement model,
// evaluation policy, and planner defaults.

#ifndef BUNDLECHARGE_CORE_PROFILES_H_
#define BUNDLECHARGE_CORE_PROFILES_H_

#include "net/deployment.h"
#include "sim/evaluate.h"
#include "support/parallel.h"
#include "tour/planner.h"

namespace bc::core {

struct Profile {
  tour::PlannerConfig planner{};
  sim::EvaluationConfig evaluation{};
  net::FieldSpec field{};
  // Worker threads for planning and sweeps (0 = keep the global setting,
  // i.e. BC_THREADS or hardware_concurrency). Results never depend on it.
  support::ThreadsOption threads{};
};

// The ICDCS'19 simulation setting (§VI-A): 1000 m x 1000 m field, depot at
// the origin, alpha = 36, beta = 30, delta = 2 J, E_m = 5.59 J/m, default
// bundle radius 20 m.
Profile icdcs2019_simulation_profile();

// As above but with the paper's literal 0.9 J/min charging consumption
// (charging energy becomes negligible; used by the ablation bench).
Profile icdcs2019_paper_cost_profile();

// The §VII testbed: 5 m x 5 m office, Powercast TX91501 -> P2110,
// 0.3 m/s robot car, 4 mJ per-sensor demand, default bundle radius 1.2 m.
Profile testbed_profile();

}  // namespace bc::core

#endif  // BUNDLECHARGE_CORE_PROFILES_H_
