// Library version.

#ifndef BUNDLECHARGE_CORE_VERSION_H_
#define BUNDLECHARGE_CORE_VERSION_H_

namespace bc::core {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace bc::core

#endif  // BUNDLECHARGE_CORE_VERSION_H_
