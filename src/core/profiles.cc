#include "core/profiles.h"

namespace bc::core {

Profile icdcs2019_simulation_profile() {
  Profile p;
  p.planner.bundle_radius = 20.0;
  p.planner.charging = charging::ChargingModel::icdcs2019_simulation();
  p.planner.movement = charging::MovementModel::icdcs2019();
  p.evaluation.charging = p.planner.charging;
  p.evaluation.movement = p.planner.movement;
  p.field.field = {{0.0, 0.0}, {1000.0, 1000.0}};
  p.field.depot = {0.0, 0.0};
  p.field.demand_j = 2.0;
  return p;
}

Profile icdcs2019_paper_cost_profile() {
  Profile p = icdcs2019_simulation_profile();
  p.planner.charging = charging::ChargingModel::icdcs2019_paper_cost();
  p.evaluation.charging = p.planner.charging;
  return p;
}

Profile testbed_profile() {
  Profile p;
  p.planner.bundle_radius = 1.2;
  p.planner.charging = charging::ChargingModel::powercast_testbed();
  p.planner.movement = charging::MovementModel::testbed_robot();
  p.evaluation.charging = p.planner.charging;
  p.evaluation.movement = p.planner.movement;
  p.field.field = {{0.0, 0.0}, {5.0, 5.0}};
  p.field.depot = {0.0, 0.0};
  p.field.demand_j = 0.004;
  return p;
}

}  // namespace bc::core
