#include "core/planner_api.h"

#include "support/require.h"

namespace bc::core {

BundleChargingPlanner::BundleChargingPlanner(Profile profile)
    : profile_(std::move(profile)) {}

PlanResult BundleChargingPlanner::plan(const net::Deployment& deployment,
                                       tour::Algorithm algorithm) const {
  PlanResult result;
  result.plan =
      tour::plan_charging_tour(deployment, algorithm, profile_.planner);
  result.metrics =
      sim::evaluate_plan(deployment, result.plan, profile_.evaluation);
  return result;
}

RadiusSweep BundleChargingPlanner::sweep_radius(
    const net::Deployment& deployment, tour::Algorithm algorithm,
    double min_radius, double max_radius, std::size_t steps) const {
  support::require(min_radius > 0.0 && min_radius <= max_radius,
                   "need 0 < min_radius <= max_radius");
  support::require(steps >= 1, "need at least one sweep step");

  RadiusSweep sweep;
  Profile scratch = profile_;
  double best_energy = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double radius =
        steps == 1 ? min_radius
                   : min_radius + (max_radius - min_radius) *
                                      static_cast<double>(i) /
                                      static_cast<double>(steps - 1);
    scratch.planner.bundle_radius = radius;
    const tour::ChargingPlan plan =
        tour::plan_charging_tour(deployment, algorithm, scratch.planner);
    const sim::PlanMetrics metrics =
        sim::evaluate_plan(deployment, plan, scratch.evaluation);
    if (sweep.points.empty() || metrics.total_energy_j < best_energy) {
      best_energy = metrics.total_energy_j;
      sweep.best_radius_m = radius;
    }
    sweep.points.push_back(RadiusPoint{radius, metrics});
  }
  return sweep;
}

PlanResult BundleChargingPlanner::plan_with_tuned_radius(
    const net::Deployment& deployment, tour::Algorithm algorithm,
    double min_radius, double max_radius, std::size_t steps) const {
  const RadiusSweep sweep =
      sweep_radius(deployment, algorithm, min_radius, max_radius, steps);
  Profile tuned = profile_;
  tuned.planner.bundle_radius = sweep.best_radius_m;
  return BundleChargingPlanner(tuned).plan(deployment, algorithm);
}

}  // namespace bc::core
