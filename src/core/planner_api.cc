#include "core/planner_api.h"

#include "obs/trace.h"
#include "support/parallel.h"
#include "support/require.h"

namespace bc::core {

BundleChargingPlanner::BundleChargingPlanner(Profile profile)
    : profile_(std::move(profile)) {}

PlanResult BundleChargingPlanner::plan(const net::Deployment& deployment,
                                       tour::Algorithm algorithm) const {
  profile_.threads.apply();
  obs::TraceSpan span("core.plan");
  span.attr("algorithm", tour::to_string(algorithm))
      .attr("n", static_cast<std::uint64_t>(deployment.size()));
  PlanResult result;
  result.plan =
      tour::plan_charging_tour(deployment, algorithm, profile_.planner);
  result.metrics =
      sim::evaluate_plan(deployment, result.plan, profile_.evaluation);
  span.attr("stops", static_cast<std::uint64_t>(result.plan.stops.size()))
      .attr("total_energy_j", result.metrics.total_energy_j);
  return result;
}

support::Expected<ExecutionResult> BundleChargingPlanner::plan_under_faults(
    const net::Deployment& deployment, tour::Algorithm algorithm,
    const sim::FaultModel& faults, const sim::ExecutorConfig& executor) const {
  profile_.threads.apply();
  obs::TraceSpan span("core.plan_under_faults");
  span.attr("algorithm", tour::to_string(algorithm))
      .attr("n", static_cast<std::uint64_t>(deployment.size()));
  ExecutionResult result;
  result.plan =
      tour::plan_charging_tour(deployment, algorithm, profile_.planner);
  result.planned_metrics =
      sim::evaluate_plan(deployment, result.plan, profile_.evaluation);

  sim::ExecutorConfig config = executor;
  config.planner = profile_.planner;
  config.charging = profile_.evaluation.charging;
  config.movement = profile_.evaluation.movement;
  std::vector<double> demand(deployment.size());
  for (net::SensorId id = 0; id < deployment.size(); ++id) {
    demand[id] = deployment.sensor(id).demand_j;
  }
  auto executed = sim::execute_mission(deployment, demand, result.plan, faults,
                                       /*start_time_s=*/0.0, config);
  if (!executed) return executed.fault();
  result.report = std::move(executed.value());
  return result;
}

RadiusSweep BundleChargingPlanner::sweep_radius(
    const net::Deployment& deployment, tour::Algorithm algorithm,
    double min_radius, double max_radius, std::size_t steps) const {
  support::require(min_radius > 0.0 && min_radius <= max_radius,
                   "need 0 < min_radius <= max_radius");
  support::require(steps >= 1, "need at least one sweep step");
  profile_.threads.apply();
  obs::TraceSpan span("core.sweep_radius");
  span.attr("steps", static_cast<std::uint64_t>(steps))
      .attr("min_radius", min_radius)
      .attr("max_radius", max_radius);

  // Sweep cells are independent (planning draws no randomness), so each
  // radius plans on its own worker; per-cell results land in index order
  // and the argmin scan below is serial, keeping the first-minimum
  // tie-break identical to the historical serial loop.
  RadiusSweep sweep;
  sweep.points = support::parallel_map<RadiusPoint>(
      steps, /*grain=*/1, [&](std::size_t i) {
        const double radius =
            steps == 1 ? min_radius
                       : min_radius + (max_radius - min_radius) *
                                          static_cast<double>(i) /
                                          static_cast<double>(steps - 1);
        tour::PlannerConfig planner = profile_.planner;
        planner.bundle_radius = radius;
        const tour::ChargingPlan plan =
            tour::plan_charging_tour(deployment, algorithm, planner);
        const sim::PlanMetrics metrics =
            sim::evaluate_plan(deployment, plan, profile_.evaluation);
        return RadiusPoint{radius, metrics};
      });
  double best_energy = 0.0;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    if (i == 0 || sweep.points[i].metrics.total_energy_j < best_energy) {
      best_energy = sweep.points[i].metrics.total_energy_j;
      sweep.best_radius_m = sweep.points[i].radius_m;
    }
  }
  return sweep;
}

PlanResult BundleChargingPlanner::plan_with_tuned_radius(
    const net::Deployment& deployment, tour::Algorithm algorithm,
    double min_radius, double max_radius, std::size_t steps) const {
  const RadiusSweep sweep =
      sweep_radius(deployment, algorithm, min_radius, max_radius, steps);
  Profile tuned = profile_;
  tuned.planner.bundle_radius = sweep.best_radius_m;
  return BundleChargingPlanner(tuned).plan(deployment, algorithm);
}

}  // namespace bc::core
