#include "core/request_mapping.h"

#include <cmath>
#include <utility>

namespace bc::core {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

}  // namespace

Expected<Profile> profile_by_name(std::string_view name) {
  if (name.empty() || name == "icdcs2019") {
    return icdcs2019_simulation_profile();
  }
  if (name == "paper-cost") return icdcs2019_paper_cost_profile();
  if (name == "testbed") return testbed_profile();
  return Fault{FaultKind::kInvalidInput,
               "unknown profile '" + std::string(name) +
                   "' (known: " + known_profile_names() + ")"};
}

std::string known_profile_names() { return "icdcs2019, paper-cost, testbed"; }

Expected<tour::Algorithm> algorithm_by_name(std::string_view name) {
  for (const tour::Algorithm algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt, tour::Algorithm::kTspn,
        tour::Algorithm::kBcSharded}) {
    if (name == tour::to_string(algorithm)) return algorithm;
  }
  return Fault{FaultKind::kInvalidInput,
               "unknown algorithm '" + std::string(name) +
                   "' (known: " + known_algorithm_names() + ")"};
}

std::string known_algorithm_names() {
  return "SC, CSS, BC, BC-OPT, TSPN, BC-SHARD";
}

Expected<ResolvedPlanRequest> resolve_plan_request(
    std::string_view profile_name, std::string_view algorithm_name,
    double radius_m, double deadline_s) {
  auto profile = profile_by_name(profile_name);
  if (!profile.has_value()) return profile.fault();
  auto algorithm = algorithm_by_name(
      algorithm_name.empty() ? "BC" : algorithm_name);
  if (!algorithm.has_value()) return algorithm.fault();
  if (!std::isfinite(radius_m)) {
    return Fault{FaultKind::kInvalidInput, "radius must be finite"};
  }
  ResolvedPlanRequest resolved;
  resolved.profile = std::move(profile.value());
  resolved.algorithm = algorithm.value();
  if (radius_m > 0.0) resolved.profile.planner.bundle_radius = radius_m;
  if (deadline_s > 0.0 && std::isfinite(deadline_s)) {
    resolved.profile.planner.budget.deadline_s = deadline_s;
  }
  return resolved;
}

}  // namespace bc::core
