// Mapping from service-level plan requests onto planner configuration.
//
// The planning daemon (src/service) receives requests naming a profile, an
// algorithm, and a bundle radius as *strings* off the wire. This module
// owns the resolution of those strings into the core types — profiles by
// name, algorithms by name, and the override of the request's radius and
// deadline onto the profile's PlannerConfig — so the service layer never
// hand-builds planner state and every CLI/daemon surface resolves names
// identically. All failures are structured kInvalidInput faults listing
// the accepted values: the wire is untrusted input.

#ifndef BUNDLECHARGE_CORE_REQUEST_MAPPING_H_
#define BUNDLECHARGE_CORE_REQUEST_MAPPING_H_

#include <string>
#include <string_view>

#include "core/profiles.h"
#include "support/expected.h"
#include "tour/planner.h"

namespace bc::core {

// Profile registry: "icdcs2019" (simulation, the default), "paper-cost"
// (literal 0.9 J/min charging consumption), "testbed" (§VII office).
support::Expected<Profile> profile_by_name(std::string_view name);

// Accepted names, comma-separated, for diagnostics and --help text.
std::string known_profile_names();

// Algorithm registry over tour::to_string names: "SC", "CSS", "BC",
// "BC-OPT", "TSPN", "BC-SHARD" (case-sensitive, matching every other
// surface of the repo).
support::Expected<tour::Algorithm> algorithm_by_name(std::string_view name);

std::string known_algorithm_names();

// A fully resolved plan request: the profile with the request's overrides
// applied. `config` is the profile's planner config with bundle_radius
// replaced (when radius > 0) and the per-request deadline installed.
struct ResolvedPlanRequest {
  Profile profile;
  tour::Algorithm algorithm = tour::Algorithm::kBc;
};

// Resolves (profile, algorithm, radius) strings into planner state.
// radius <= 0 keeps the profile's default radius; deadline_s <= 0 means no
// deadline. The returned profile's planner budget carries the deadline —
// callers pass a BudgetMeter over it to detect degraded (anytime) plans.
support::Expected<ResolvedPlanRequest> resolve_plan_request(
    std::string_view profile_name, std::string_view algorithm_name,
    double radius_m, double deadline_s);

}  // namespace bc::core

#endif  // BUNDLECHARGE_CORE_REQUEST_MAPPING_H_
