// High-level facade: plan + evaluate in one call, and the bundle-radius
// auto-tuner motivated by §IV-C ("it is good to try different charging
// bundle radii until a best bundle radius r is found").

#ifndef BUNDLECHARGE_CORE_PLANNER_API_H_
#define BUNDLECHARGE_CORE_PLANNER_API_H_

#include <vector>

#include "core/profiles.h"
#include "net/deployment.h"
#include "sim/evaluate.h"
#include "sim/faults.h"
#include "sim/mission_executor.h"
#include "support/expected.h"
#include "tour/planner.h"

namespace bc::core {

struct PlanResult {
  tour::ChargingPlan plan;
  sim::PlanMetrics metrics;
};

// Result of planning + executing one mission against a faulted world: the
// plan as dispatched, the nominal (fault-free) metrics the planner believed,
// and what actually happened.
struct ExecutionResult {
  tour::ChargingPlan plan;
  sim::PlanMetrics planned_metrics;
  sim::MissionReport report;
};

// One point of a radius sweep.
struct RadiusPoint {
  double radius_m = 0.0;
  sim::PlanMetrics metrics;
};

struct RadiusSweep {
  std::vector<RadiusPoint> points;  // in ascending radius order
  double best_radius_m = 0.0;       // argmin of total energy
};

// The main entry point a downstream user calls.
class BundleChargingPlanner {
 public:
  explicit BundleChargingPlanner(Profile profile);

  const Profile& profile() const { return profile_; }
  Profile& mutable_profile() { return profile_; }

  // Plans with the requested algorithm and evaluates the result.
  PlanResult plan(const net::Deployment& deployment,
                  tour::Algorithm algorithm) const;

  // Plans a full-demand mission, then executes it through the
  // disruption-tolerant executor against `faults`. The executor inherits
  // the profile's planner and physics models so planning, execution, and
  // any online replans share one configuration; the remaining executor
  // knobs (policies, tolerance, replan budget) come from `executor`.
  // Structured faults (e.g. a malformed plan) come back on the fault
  // channel; runtime disruptions land inside the report.
  support::Expected<ExecutionResult> plan_under_faults(
      const net::Deployment& deployment, tour::Algorithm algorithm,
      const sim::FaultModel& faults,
      const sim::ExecutorConfig& executor = {}) const;

  // Sweeps the bundle radius over [min_radius, max_radius] in `steps`
  // evenly spaced values and returns the per-radius metrics plus the
  // energy-optimal radius for this deployment (the experiment behind
  // Figs. 6 and 14). Preconditions: 0 < min_radius <= max_radius,
  // steps >= 1 (steps == 1 evaluates min_radius only).
  RadiusSweep sweep_radius(const net::Deployment& deployment,
                           tour::Algorithm algorithm, double min_radius,
                           double max_radius, std::size_t steps) const;

  // Convenience: sweep, then re-plan at the best radius.
  PlanResult plan_with_tuned_radius(const net::Deployment& deployment,
                                    tour::Algorithm algorithm,
                                    double min_radius, double max_radius,
                                    std::size_t steps) const;

 private:
  Profile profile_;
};

}  // namespace bc::core

#endif  // BUNDLECHARGE_CORE_PLANNER_API_H_
