// Deterministic thread-pool parallelism.
//
// A lazily-started global worker pool executes chunked index loops. The
// design rule that makes the rest of the library safe to parallelise is
// *determinism by construction*: work is partitioned into contiguous index
// chunks whose boundaries never depend on the thread count, every result is
// written to a slot selected by its index, and callers merge in index
// order. Under that contract a run with 8 workers is bit-identical to a run
// with 1 — the pool only changes wall-clock time.
//
// The worker count resolves, in priority order, from set_thread_count(),
// the BC_THREADS environment variable, and hardware_concurrency().
// BC_THREADS=1 (or set_thread_count(1)) forces single-threaded execution:
// every parallel section then runs inline on the calling thread with no
// pool started at all, which is the reference behaviour the multi-threaded
// runs must reproduce exactly.

#ifndef BUNDLECHARGE_SUPPORT_PARALLEL_H_
#define BUNDLECHARGE_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace bc::support {

// Worker threads parallel sections may use, >= 1. First call resolves the
// automatic value (BC_THREADS env var, else hardware_concurrency).
std::size_t thread_count();

// Overrides the worker count; n = 0 restores the automatic value. Any
// running pool is stopped and restarted lazily on the next parallel call.
// Call between parallel sections only (benches sweeping thread counts,
// tests pinning 1/2/8) — not concurrently with parallel work.
// Precondition: n <= 1024 (oversized env values clamp instead).
void set_thread_count(std::size_t n);

// True on a pool worker thread. Nested parallel sections detect this and
// execute inline, so library layers can parallelise independently without
// deadlocking the pool.
bool in_parallel_worker();

// True while executing a parallel_for chunk, on *any* path — pool worker,
// the caller participating in a pooled run, or the serial inline fallback
// (worker count 1, single chunk, nested section). Code whose output must
// be identical at every BC_THREADS (e.g. trace-span emission in the obs
// layer) keys off this instead of in_parallel_worker(): the inline path
// never sets the worker flag, so suppressing only on workers would make
// single-threaded runs emit records that multi-threaded runs drop.
bool in_parallel_region();

// True only while executing a parallel_for chunk body on this thread —
// a strict subset of in_parallel_region(), which is also true for the
// whole lifetime of a ScopedInlineExecution. Lets span emission
// distinguish "inside a chunk" (never journal: order is BC_THREADS-
// dependent) from "on a request thread that merely solves inline"
// (journalable when the request handler opts in).
bool in_parallel_chunk();

// Forces every parallel section entered by *this thread* to run inline for
// the lifetime of the scope, exactly as if the thread were a pool worker.
// Servers that parallelise *across* requests (one worker thread per
// request) install this at the top of each request: the solver's internal
// parallel_for calls then stay on the request's thread, which keeps
// per-request state (scoped metrics registries, budgets) thread-confined
// and makes concurrent requests independent of the shared pool. Nestable;
// restores the previous state on destruction.
class ScopedInlineExecution {
 public:
  ScopedInlineExecution();
  ~ScopedInlineExecution();
  ScopedInlineExecution(const ScopedInlineExecution&) = delete;
  ScopedInlineExecution& operator=(const ScopedInlineExecution&) = delete;

 private:
  bool previous_;
};

// Chunked parallel loop over [0, n): partitions the range into contiguous
// chunks of `grain` indices (the tail chunk may be shorter) and invokes
// fn(begin, end) once per chunk, in parallel. grain = 0 picks a chunk size
// automatically — note that the automatic grain depends on the worker
// count, so pass an explicit grain wherever chunk boundaries must be
// thread-count-invariant (they are invisible to callers that only write
// per-index slots, which is the recommended pattern).
//
// Exceptions thrown by fn are caught per chunk; after all chunks have run,
// the exception from the lowest-indexed throwing chunk is rethrown on the
// calling thread. Chunks are never cancelled — every chunk executes even
// when an earlier one threw — so both the rethrown exception and all side
// effects are identical at every thread count, inline path included.
//
// Runs inline (in chunk order, on the calling thread) when the worker
// count is 1, when there is a single chunk, or when called from inside a
// pool worker.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

// out[i] = fn(i) for i in [0, n), evaluated in parallel with the chunking
// rules of parallel_for. The output vector is pre-sized so every worker
// writes only its own slots; result order is index order, independent of
// the thread count. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t grain, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

// Thread-count request carried through configuration structs (profiles,
// experiment specs, CLI flags) down to the pool.
struct ThreadsOption {
  // 0 leaves the current global setting untouched; any other value is
  // applied as if by set_thread_count(threads).
  std::size_t threads = 0;

  void apply() const;
};

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_PARALLEL_H_
