#include "support/atomic_file.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <fstream>
#include <process.h>
#include <sstream>
#else
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>
#endif

#include <sys/stat.h>

#include "support/iofault.h"

namespace bc::support {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

int current_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

Fault io_fault(const std::string& what, const std::string& path) {
  return Fault{FaultKind::kInvalidInput,
               what + " '" + path + "': " + std::strerror(errno)};
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string temp_prefix(const std::string& path) { return path + ".tmp."; }

#ifndef _WIN32

// POSIX implementation on raw descriptors. Every loop retries EINTR and
// the write loop continues after short writes: a checkpoint or cache
// flush interrupted by a signal (SIGCHLD, a profiler, the daemon's own
// shutdown signals) must either complete or fail loudly — a partially
// flushed buffer surfacing as "spurious corruption" on the next open is
// the failure mode this file exists to prevent.
//
// Each syscall is armed through iofault first; an injected kind turns
// into the corresponding errno so callers see exactly what a real
// failing disk would produce.

namespace {

int open_retry(const char* path, int flags, mode_t mode) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

bool write_fully(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t wrote =
        ::write(fd, data.data() + written, data.size() - written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool fsync_retry(int fd) {
  for (;;) {
    if (::fsync(fd) == 0) return true;
    if (errno != EINTR) return false;
  }
}

int guarded_open(const char* path, int flags, mode_t mode) {
  const iofault::Kind kind = iofault::arm(iofault::Op::kOpen);
  if (kind != iofault::Kind::kNone) {
    errno = kind == iofault::Kind::kEnospc ? ENOSPC : EIO;
    return -1;
  }
  return open_retry(path, flags, mode);
}

bool guarded_write(int fd, std::string_view data) {
  const iofault::Kind kind = iofault::arm(iofault::Op::kWrite);
  if (kind == iofault::Kind::kShortWrite) {
    // Persist a genuine prefix before failing so recovery code faces a
    // real torn tail, not a cleanly absent write.
    write_fully(fd, data.substr(0, data.size() / 2));
    errno = EIO;
    return false;
  }
  if (kind != iofault::Kind::kNone) {
    errno = kind == iofault::Kind::kEnospc ? ENOSPC : EIO;
    return false;
  }
  return write_fully(fd, data);
}

bool guarded_fsync(int fd) {
  const iofault::Kind kind = iofault::arm(iofault::Op::kFsync);
  if (kind != iofault::Kind::kNone) {
    errno = EIO;
    return false;
  }
  return fsync_retry(fd);
}

bool guarded_close(int fd) {
  const iofault::Kind kind = iofault::arm(iofault::Op::kClose);
  if (kind != iofault::Kind::kNone) {
    ::close(fd);  // still release the descriptor; only the result lies
    errno = EIO;
    return false;
  }
  // close() is not retried on EINTR — POSIX leaves the fd unspecified and
  // a retry can close an unrelated reused descriptor. The data is already
  // synced, so an EINTR'd close is a success for durability purposes.
  return ::close(fd) == 0 || errno == EINTR;
}

}  // namespace

Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  const std::string tmp = temp_prefix(path) + std::to_string(current_pid());
  const int fd =
      guarded_open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_fault("cannot create", tmp);
  const bool wrote = guarded_write(fd, contents);
  // fsync before rename: a rename of unsynced data could survive the
  // rename yet lose the bytes on power failure.
  const bool synced = wrote && guarded_fsync(fd);
  const bool closed = (wrote && synced) ? guarded_close(fd)
                                        : (::close(fd) == 0 || errno == EINTR);
  if (!wrote || !synced || !closed) {
    const int saved_errno = errno;
    std::remove(tmp.c_str());
    errno = saved_errno;
    return io_fault("cannot write", tmp);
  }
  const iofault::Kind rename_kind = iofault::arm(iofault::Op::kRename);
  if (rename_kind == iofault::Kind::kCrashBeforeRename) {
    // Simulated kill between fsync and rename: the temp survives (as it
    // would under a real SIGKILL) and the destination is untouched.
    // remove_stale_temps() on the next journal open is the GC path.
    return Fault{FaultKind::kInvalidInput,
                 "simulated crash before rename of '" + tmp + "'"};
  }
  if (rename_kind == iofault::Kind::kCrashAfterRename) {
    // Simulated kill just after the commit point: the rename happens,
    // but the caller never learns it succeeded — recovery must treat
    // "failed" flushes as possibly-committed.
    std::rename(tmp.c_str(), path.c_str());
    return Fault{FaultKind::kInvalidInput,
                 "simulated crash after rename into '" + path + "'"};
  }
  if (rename_kind != iofault::Kind::kNone) {
    std::remove(tmp.c_str());
    errno = EIO;
    return io_fault("cannot rename into", path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved_errno = errno;
    std::remove(tmp.c_str());
    errno = saved_errno;
    return io_fault("cannot rename into", path);
  }
  return true;
}

Expected<bool> append_file_durable(const std::string& path,
                                   std::string_view data) {
  const int fd =
      guarded_open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return io_fault("cannot open for append", path);
  const bool wrote = guarded_write(fd, data);
  const bool synced = wrote && guarded_fsync(fd);
  const bool closed = (wrote && synced) ? guarded_close(fd)
                                        : (::close(fd) == 0 || errno == EINTR);
  if (!wrote || !synced || !closed) {
    // The file may now carry a torn final line; journal recovery drops
    // it on read and the next sync compacts the file atomically.
    return io_fault("cannot append to", path);
  }
  return true;
}

std::size_t remove_stale_temps(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string prefix = base + ".tmp.";
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return 0;
  std::size_t removed = 0;
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(handle);
    if (entry == nullptr) break;
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string victim =
        (dir == "/" ? std::string("/") : dir + "/") + name;
    if (std::remove(victim.c_str()) == 0) ++removed;
  }
  ::closedir(handle);
  return removed;
}

Expected<std::string> read_file(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return io_fault("cannot open", path);
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got > 0) {
      contents.append(buffer, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) break;
    if (errno == EINTR) continue;
    const Fault fault = io_fault("cannot read", path);
    ::close(fd);
    return fault;
  }
  ::close(fd);
  return contents;
}

#else  // _WIN32: stdio fallback (no fsync-by-fd portability concerns here,
       // and no fault injection — chaos suites are POSIX/CI-only).

Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  const std::string tmp = temp_prefix(path) + std::to_string(current_pid());
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return io_fault("cannot create", tmp);
  const bool wrote =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), file) ==
          contents.size();
  const bool synced = wrote && std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return io_fault("cannot write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_fault("cannot rename into", path);
  }
  return true;
}

Expected<bool> append_file_durable(const std::string& path,
                                   std::string_view data) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return io_fault("cannot open for append", path);
  const bool wrote = data.empty() ||
                     std::fwrite(data.data(), 1, data.size(), file) ==
                         data.size();
  const bool synced = wrote && std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !synced || !closed) return io_fault("cannot append to", path);
  return true;
}

std::size_t remove_stale_temps(const std::string& path) {
  // Best effort without dirent: reap this process's own temp name.
  const std::string tmp = temp_prefix(path) + std::to_string(current_pid());
  return std::remove(tmp.c_str()) == 0 ? 1u : 0u;
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return io_fault("cannot open", path);
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) return io_fault("cannot read", path);
  return std::move(contents).str();
}

#endif

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace bc::support
