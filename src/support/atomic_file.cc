#include "support/atomic_file.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <fstream>
#include <process.h>
#include <sstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include <sys/stat.h>

namespace bc::support {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

int current_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

Fault io_fault(const std::string& what, const std::string& path) {
  return Fault{FaultKind::kInvalidInput,
               what + " '" + path + "': " + std::strerror(errno)};
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#ifndef _WIN32

// POSIX implementation on raw descriptors. Every loop retries EINTR and
// the write loop continues after short writes: a checkpoint or cache
// flush interrupted by a signal (SIGCHLD, a profiler, the daemon's own
// shutdown signals) must either complete or fail loudly — a partially
// flushed buffer surfacing as "spurious corruption" on the next open is
// the failure mode this file exists to prevent.

namespace {

int open_retry(const char* path, int flags, mode_t mode) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

bool write_fully(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t wrote =
        ::write(fd, data.data() + written, data.size() - written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool fsync_retry(int fd) {
  for (;;) {
    if (::fsync(fd) == 0) return true;
    if (errno != EINTR) return false;
  }
}

}  // namespace

Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(current_pid());
  const int fd =
      open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_fault("cannot create", tmp);
  const bool wrote = write_fully(fd, contents);
  // fsync before rename: a rename of unsynced data could survive the
  // rename yet lose the bytes on power failure.
  const bool synced = wrote && fsync_retry(fd);
  // close() is not retried on EINTR — POSIX leaves the fd unspecified and
  // a retry can close an unrelated reused descriptor. The data is already
  // synced, so an EINTR'd close is a success for durability purposes.
  const bool closed = ::close(fd) == 0 || errno == EINTR;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return io_fault("cannot write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_fault("cannot rename into", path);
  }
  return true;
}

Expected<std::string> read_file(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return io_fault("cannot open", path);
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got > 0) {
      contents.append(buffer, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) break;
    if (errno == EINTR) continue;
    const Fault fault = io_fault("cannot read", path);
    ::close(fd);
    return fault;
  }
  ::close(fd);
  return contents;
}

#else  // _WIN32: stdio fallback (no fsync-by-fd portability concerns here).

Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(current_pid());
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return io_fault("cannot create", tmp);
  const bool wrote =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), file) ==
          contents.size();
  const bool synced = wrote && std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return io_fault("cannot write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_fault("cannot rename into", path);
  }
  return true;
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return io_fault("cannot open", path);
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) return io_fault("cannot read", path);
  return std::move(contents).str();
}

#endif

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace bc::support
