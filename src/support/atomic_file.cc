#include "support/atomic_file.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include <sys/stat.h>

namespace bc::support {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

int current_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

Fault io_fault(const std::string& what, const std::string& path) {
  return Fault{FaultKind::kInvalidInput,
               what + " '" + path + "': " + std::strerror(errno)};
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(current_pid());
  // stdio instead of ofstream: fsync needs the file descriptor, and a
  // rename of unsynced data could survive the rename yet lose the bytes.
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return io_fault("cannot create", tmp);
  const bool wrote =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), file) ==
          contents.size();
  bool synced = wrote && std::fflush(file) == 0;
#ifndef _WIN32
  synced = synced && ::fsync(fileno(file)) == 0;
#endif
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return io_fault("cannot write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_fault("cannot rename into", path);
  }
  return true;
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return io_fault("cannot open", path);
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) return io_fault("cannot read", path);
  return std::move(contents).str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace bc::support
