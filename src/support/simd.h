// Runtime SIMD dispatch for the word-level bitset kernels and the
// coordinate distance scans that dominate large-n planning.
//
// Three rules keep vectorisation from ever changing behaviour:
//
//   1. The scalar implementation is the oracle. Every vector kernel is an
//      exact reimplementation — integer popcounts are exact by nature, and
//      the distance scans perform the same IEEE multiply/add/compare per
//      element as the scalar loop (no FMA contraction: the AVX2 bodies use
//      explicit mul/add intrinsics and are compiled without the fma target
//      feature), so results are byte-identical at every ISA.
//   2. One process-wide ISA choice, resolved once: set_isa() override,
//      else the BC_SIMD environment variable (scalar | avx2 | neon |
//      auto), else auto. Requesting an ISA the build or the CPU cannot
//      run falls back to scalar — a missing feature degrades speed, never
//      correctness or availability.
//   3. Dispatch is a single relaxed-atomic table-pointer load per call.
//      Like set_thread_count(), set_isa() must not race in-flight kernels;
//      call it between solves (benches and tests do).

#ifndef BUNDLECHARGE_SUPPORT_SIMD_H_
#define BUNDLECHARGE_SUPPORT_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bc::support::simd {

enum class Isa {
  kScalar = 0,  // portable reference; the bit-exact oracle
  kAvx2 = 1,    // x86-64 AVX2 (256-bit)
  kNeon = 2,    // aarch64 NEON (128-bit)
};

std::string_view to_string(Isa isa);

// Parses "scalar" / "avx2" / "neon" / "auto". Returns true and writes
// `out` on success ("auto" maps to best_supported_isa()).
bool parse_isa(std::string_view text, Isa& out);

// True when this binary contains code for `isa` (compile-time support).
bool isa_compiled(Isa isa);

// True when `isa` is compiled in AND the running CPU can execute it.
bool isa_supported(Isa isa);

// The fastest supported ISA (kScalar when nothing better is available).
Isa best_supported_isa();

// The ISA kernels currently dispatch to. First call resolves BC_SIMD.
Isa active_isa();

// Overrides the active ISA. An unsupported request falls back to kScalar
// (mirroring the env-var behaviour) and returns the ISA actually
// installed. Must not race in-flight kernels.
Isa set_isa(Isa isa);

// --- dispatched kernels ---------------------------------------------------

// Fused dst = src & ~mask over `words` 64-bit words, returning
// popcount(src & mask) (the number of bits cleared). `dst` may alias `src`
// exactly, but must not partially overlap `src` or `mask`.
std::size_t subtract_and_count(std::uint64_t* dst, const std::uint64_t* src,
                               const std::uint64_t* mask, std::size_t words);

// popcount(a & b) over `words` 64-bit words.
std::size_t intersect_count(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words);

// Appends ids[i] to `out` (not cleared) for every i in [0, count) with
// (xs[i] - qx)^2 + (ys[i] - qy)^2 <= r2, in ascending i order. The SoA
// distance scan behind every spatial-index row walk and candidate member
// collection.
void filter_within(const double* xs, const double* ys,
                   const std::uint32_t* ids, std::size_t count, double qx,
                   double qy, double r2, std::vector<std::uint32_t>& out);

// --- per-ISA entry points (differential tests; not for hot paths) ---------

struct KernelTable {
  std::size_t (*subtract_and_count)(std::uint64_t*, const std::uint64_t*,
                                    const std::uint64_t*, std::size_t);
  std::size_t (*intersect_count)(const std::uint64_t*, const std::uint64_t*,
                                 std::size_t);
  void (*filter_within)(const double*, const double*, const std::uint32_t*,
                        std::size_t, double, double, double,
                        std::vector<std::uint32_t>&);
};

// The kernel table for `isa`. Precondition: isa_supported(isa) — tests
// guard with it; calling an unsupported table is undefined (SIGILL).
const KernelTable& kernels(Isa isa);

}  // namespace bc::support::simd

#endif  // BUNDLECHARGE_SUPPORT_SIMD_H_
