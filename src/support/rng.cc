#include "support/rng.h"

#include <cmath>

#include "support/require.h"

namespace bc::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.next();
}

Rng::result_type Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  require(n > 0, "below(n) needs n > 0");
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "between(lo, hi) needs lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) {
  require(stddev >= 0.0, "gaussian stddev must be non-negative");
  return mean + stddev * gaussian();
}

bool Rng::chance(double p) {
  require(p >= 0.0 && p <= 1.0, "chance(p) needs p in [0, 1]");
  return uniform() < p;
}

Rng Rng::split() {
  // Mix two outputs into a child seed; streams are practically independent.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace bc::support
