#include "support/journal.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/atomic_file.h"
#include "support/require.h"

namespace bc::support {

namespace {

std::string crc_hex(std::string_view data) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08" PRIx32, crc32(data));
  return buf;
}

// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

bool is_clean_token(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\0') {
      return false;
    }
  }
  return true;
}

}  // namespace

Expected<AppendJournal> AppendJournal::open(std::string path,
                                            JournalFormat format,
                                            JournalLimits limits) {
  AppendJournal journal(std::move(path), std::move(format), limits);
  if (journal.path_.empty()) return journal;
  // Reap temps abandoned by a writer that crashed between creating its
  // temp file and renaming it into place — the one failure mode where
  // write_file_atomic cannot clean up after itself.
  journal.stale_temps_removed_ = remove_stale_temps(journal.path_);
  if (!file_exists(journal.path_)) return journal;

  auto contents = read_file(journal.path_);
  if (!contents.has_value()) return contents.fault();

  std::istringstream in(contents.value());
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool torn_tail = false;
  while (std::getline(in, line)) {
    ++line_no;
    // getline only reports eof mid-line when the final line has no
    // trailing newline — the signature of a torn append.
    const bool is_final_torn = in.eof() && !contents.value().empty() &&
                               contents.value().back() != '\n';
    if (line.empty()) continue;
    if (!saw_header) {
      // A damaged header is never "just torn": our writers create the
      // file with an atomic compaction, so a file that exists but lacks
      // a valid first line was tampered with or belongs to someone else.
      if (journal.format_.validate_header) {
        auto verdict = journal.format_.validate_header(line, line_no);
        if (!verdict.has_value()) return verdict.fault();
      } else if (line != journal.format_.header_line) {
        return Fault{FaultKind::kInvalidInput,
                     "journal '" + journal.path_ +
                         "': missing or wrong header"};
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = tokens_of(line);
    std::string why;
    if (fields.size() != 4 || fields[0] != journal.format_.record_tag) {
      why = "malformed record";
    } else if (crc_hex(fields[2] + " " + fields[3]) != fields[1]) {
      why = "CRC mismatch for " + fields[2];
    }
    if (!why.empty()) {
      if (is_final_torn) {
        ++journal.torn_tails_dropped_;
        torn_tail = true;
        break;
      }
      if (journal.format_.record_fault) {
        return journal.format_.record_fault(line_no, why);
      }
      return Fault{FaultKind::kInvalidInput,
                   "journal '" + journal.path_ + "': line " +
                       std::to_string(line_no) + ": " + why};
    }
    journal.entries_[fields[2]] =
        Entry{fields[3], journal.next_seq_++};
  }
  journal.file_bytes_ = contents.value().size();
  // Appending is only safe onto a healthy tail under a real header.
  journal.append_ok_ = saw_header && !torn_tail;
  return journal;
}

bool AppendJournal::contains(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

const std::string* AppendJournal::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.payload;
}

void AppendJournal::put(const std::string& key, std::string payload) {
  require(is_clean_token(key), "journal key must be whitespace-free");
  require(is_clean_token(payload),
          "journal payload must be whitespace-free");
  entries_[key] = Entry{payload, next_seq_++};
  pending_.emplace_back(key, std::move(payload));
}

std::string AppendJournal::record_line(const std::string& key,
                                       const std::string& payload) const {
  const std::string body = key + " " + payload;
  std::string out = format_.record_tag;
  out += ' ';
  out += crc_hex(body);
  out += ' ';
  out += body;
  out += '\n';
  return out;
}

Expected<bool> AppendJournal::sync() {
  if (path_.empty()) {
    pending_.clear();
    return true;
  }
  const bool over_entries =
      limits_.max_entries != 0 && entries_.size() > limits_.max_entries;
  if (!append_ok_ || over_entries) return compact();
  if (pending_.empty()) return true;
  std::string delta;
  for (const auto& [key, payload] : pending_) {
    delta += record_line(key, payload);
  }
  if (file_bytes_ + delta.size() > limits_.compact_threshold_bytes) {
    return compact();
  }
  auto appended = append_file_durable(path_, delta);
  if (!appended.has_value()) {
    // The failed append may have persisted a prefix of `delta` — a torn
    // tail we must not append after (the next record would merge into
    // the partial line). Pending records are kept; the retry compacts.
    append_ok_ = false;
    return appended.fault();
  }
  file_bytes_ += delta.size();
  appended_records_ += pending_.size();
  pending_.clear();
  return true;
}

Expected<bool> AppendJournal::compact() {
  if (path_.empty()) {
    pending_.clear();
    return true;
  }
  while (limits_.max_entries != 0 && entries_.size() > limits_.max_entries) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.seq < oldest->second.seq) oldest = it;
    }
    entries_.erase(oldest);
    ++evictions_;
  }
  const std::string image = compacted_image();
  auto wrote = write_file_atomic(path_, image);
  if (!wrote.has_value()) {
    // Includes the crash-after-rename ambiguity: the file may or may
    // not hold `image` now. Staying in needs-compact mode makes the
    // retry idempotent — compacting the same entry set writes the same
    // bytes either way.
    append_ok_ = false;
    return wrote.fault();
  }
  pending_.clear();
  file_bytes_ = image.size();
  append_ok_ = true;
  ++compactions_;
  return true;
}

std::string AppendJournal::compacted_image() const {
  std::string out;
  out.reserve(format_.header_line.size() + 1 + entries_.size() * 96);
  out += format_.header_line;
  out += '\n';
  // std::map iterates key-sorted: the image depends only on the entry
  // set, never on insertion order, thread count, or resume history.
  for (const auto& [key, entry] : entries_) {
    out += record_line(key, entry.payload);
  }
  return out;
}

}  // namespace bc::support
