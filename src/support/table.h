// Column-aligned plain-text tables and CSV output for bench harnesses.
//
// Every figure-reproduction bench prints one table whose rows match the
// series the paper plots, so results can be eyeballed or piped to a CSV
// for external plotting.

#ifndef BUNDLECHARGE_SUPPORT_TABLE_H_
#define BUNDLECHARGE_SUPPORT_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace bc::support {

class Table {
 public:
  // Creates a table with the given column headers (at least one).
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  // Appends a row; the cell count must equal the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats arithmetic values with fixed precision.
  static std::string num(double value, int precision = 2);
  static std::string num(long long value);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  // Renders with padded columns and a header underline.
  void print(std::ostream& os) const;
  // Renders as RFC-4180-ish CSV (cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_TABLE_H_
