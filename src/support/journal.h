// Shared crash-safe, self-healing append journal.
//
// The plan cache (service/plan_cache) and the checkpoint journal
// (sim/checkpoint) started as two copies of the same design: one CRC'd
// whitespace-free record per line under a header line, rewritten in full
// through support::write_file_atomic on every flush. Full rewrites are
// crash-atomic but O(entries) per flush — a daemon journaling its
// millionth cached plan rewrote the other 999,999 every time — and both
// files grew without bound. This class is the shared engine with two
// upgrades:
//
//   * Append-mode sync: new records are appended + fsynced (O(delta)).
//     A crash can tear at most the final line; open() drops a torn tail
//     (a file that does not end in '\n'), schedules a compaction, and
//     keeps every complete record. A complete-but-corrupt record is a
//     structured fault — recompute beats replaying garbage.
//   * Size-triggered self-healing compaction: when the file would grow
//     past `compact_threshold_bytes` (or `max_entries` is exceeded, or
//     a failed append left the tail in doubt), sync() falls back to a
//     full key-sorted atomic rewrite. Compacted bytes are a pure
//     function of the live entry set — independent of insertion order,
//     thread count, and crash/resume history.
//
// Every I/O this class performs goes through support/atomic_file and is
// therefore fault-injectable via support/iofault: the chaos suite sweeps
// ENOSPC/EIO/short-write/fsync-fail/torn-rename over every fault point
// and asserts recovery-or-structured-error, never accepted corruption.
//
// On-disk format (unchanged from v1 of both consumers):
//
//   <header line>
//   <tag> <crc32hex> <key> <payload>
//
// with CRC-32 (IEEE) over "<key> <payload>". Duplicate keys are legal
// on disk (append-mode updates); readers apply last-write-wins.

#ifndef BUNDLECHARGE_SUPPORT_JOURNAL_H_
#define BUNDLECHARGE_SUPPORT_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/expected.h"

namespace bc::support {

// Consumer-specific formatting: the header line written on compaction,
// the record tag ("entry", "cell"), and fault construction so each
// consumer keeps its historical error messages.
struct JournalFormat {
  std::string header_line;
  std::string record_tag;
  // Validates a header line read from disk; a fault aborts open(). When
  // unset, the line must equal `header_line` exactly.
  std::function<Expected<bool>(const std::string& line, std::size_t line_no)>
      validate_header;
  // Builds the fault for a complete-but-corrupt record. `why` is
  // "malformed record" or "CRC mismatch for <key>". When unset, a
  // generic kInvalidInput fault names the path and line.
  std::function<Fault(std::size_t line_no, const std::string& why)>
      record_fault;
};

struct JournalLimits {
  // Maximum live entries; 0 = unbounded. Enforced at compaction by
  // deterministic FIFO eviction (oldest insertion sequence first; a
  // re-put refreshes an entry's sequence).
  std::size_t max_entries = 0;
  // sync() compacts instead of appending when the file would exceed
  // this many bytes.
  std::size_t compact_threshold_bytes = 1u << 20;
};

class AppendJournal {
 public:
  // Opens `path`, creating an empty journal when the file does not
  // exist (an empty path is purely in-memory; sync is a no-op). Also
  // garbage-collects `<path>.tmp.*` temps left by a crashed writer. A
  // missing/blank file is fresh; a torn final line is dropped; any
  // other damage is a structured fault.
  static Expected<AppendJournal> open(std::string path, JournalFormat format,
                                      JournalLimits limits = {});

  const std::string& path() const { return path_; }
  std::size_t size() const { return entries_.size(); }
  bool contains(const std::string& key) const;
  // Payload for `key`, or nullptr when absent.
  const std::string* lookup(const std::string& key) const;

  // Records an entry in memory (last write wins); persisted by the next
  // sync(). Preconditions: key and payload non-empty, whitespace-free.
  void put(const std::string& key, std::string payload);

  // Persists everything put() since the last successful sync. Appends
  // when the on-disk tail is known-good and under the size threshold;
  // compacts otherwise. On failure the pending records are retained, so
  // a later sync retries them — and always retries via compaction,
  // because a failed append may have left a torn tail.
  Expected<bool> sync();

  // Full atomic rewrite: header + live entries, key-sorted, after FIFO
  // eviction down to max_entries. The resulting bytes are exactly
  // compacted_image() — a pure function of the surviving entry set.
  Expected<bool> compact();

  // The bytes compact() writes for the current entry set (pre-eviction).
  std::string compacted_image() const;

  // Robustness telemetry since open().
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t stale_temps_removed() const { return stale_temps_removed_; }
  std::uint64_t torn_tails_dropped() const { return torn_tails_dropped_; }

 private:
  AppendJournal(std::string path, JournalFormat format, JournalLimits limits)
      : path_(std::move(path)),
        format_(std::move(format)),
        limits_(limits) {}

  struct Entry {
    std::string payload;
    std::uint64_t seq = 0;  // insertion order, for FIFO eviction
  };

  std::string record_line(const std::string& key,
                          const std::string& payload) const;

  std::string path_;
  JournalFormat format_;
  JournalLimits limits_;
  std::map<std::string, Entry> entries_;
  // Records put() since the last successful sync, in put order.
  std::vector<std::pair<std::string, std::string>> pending_;
  std::uint64_t next_seq_ = 0;
  std::size_t file_bytes_ = 0;
  // False until the on-disk tail is known to end at a record boundary
  // under a valid header — a fresh file, a dropped torn tail, or any
  // failed append all force the next sync through compact().
  bool append_ok_ = false;
  std::uint64_t compactions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t stale_temps_removed_ = 0;
  std::uint64_t torn_tails_dropped_ = 0;
};

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_JOURNAL_H_
