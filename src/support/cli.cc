#include "support/cli.h"

#include <charconv>
#include <cstdlib>

#include "support/require.h"

namespace bc::support {

namespace {

bool parse_int(const std::string& text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

CliFlags::CliFlags(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliFlags::define_int(const std::string& name, std::int64_t default_value,
                          const std::string& help) {
  require(!flags_.contains(name), "flag defined twice");
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value)};
  declaration_order_.push_back(name);
}

void CliFlags::define_double(const std::string& name, double default_value,
                             const std::string& help) {
  require(!flags_.contains(name), "flag defined twice");
  flags_[name] = Flag{Kind::kDouble, help, std::to_string(default_value)};
  declaration_order_.push_back(name);
}

void CliFlags::define_string(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  require(!flags_.contains(name), "flag defined twice");
  flags_[name] = Flag{Kind::kString, help, default_value};
  declaration_order_.push_back(name);
}

void CliFlags::define_bool(const std::string& name, bool default_value,
                           const std::string& help) {
  require(!flags_.contains(name), "flag defined twice");
  flags_[name] = Flag{Kind::kBool, help, default_value ? "true" : "false"};
  declaration_order_.push_back(name);
}

bool CliFlags::assign(const std::string& name, const std::string& value,
                      std::ostream& err) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    err << "unknown flag --" << name << "\n";
    return false;
  }
  switch (it->second.kind) {
    case Kind::kInt: {
      std::int64_t parsed = 0;
      if (!parse_int(value, parsed)) {
        err << "flag --" << name << " expects an integer, got '" << value
            << "'\n";
        return false;
      }
      break;
    }
    case Kind::kDouble: {
      double parsed = 0;
      if (!parse_double(value, parsed)) {
        err << "flag --" << name << " expects a number, got '" << value
            << "'\n";
        return false;
      }
      break;
    }
    case Kind::kBool: {
      bool parsed = false;
      if (!parse_bool(value, parsed)) {
        err << "flag --" << name << " expects a boolean, got '" << value
            << "'\n";
        return false;
      }
      break;
    }
    case Kind::kString:
      break;
  }
  it->second.value = value;
  return true;
}

bool CliFlags::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(err);
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      err << "unexpected positional argument '" << arg << "'\n";
      return false;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!assign(arg.substr(0, eq), arg.substr(eq + 1), err)) return false;
      continue;
    }
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      err << "flag --" << arg << " is missing a value\n";
      return false;
    }
    if (!assign(arg, argv[++i], err)) return false;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Kind kind) const {
  auto it = flags_.find(name);
  require(it != flags_.end(), "flag was never defined");
  require(it->second.kind == kind, "flag accessed with the wrong type");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  std::int64_t out = 0;
  ensure(parse_int(find(name, Kind::kInt).value, out),
         "stored int flag value must parse");
  return out;
}

double CliFlags::get_double(const std::string& name) const {
  double out = 0;
  ensure(parse_double(find(name, Kind::kDouble).value, out),
         "stored double flag value must parse");
  return out;
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  bool out = false;
  ensure(parse_bool(find(name, Kind::kBool).value, out),
         "stored bool flag value must parse");
  return out;
}

void CliFlags::print_help(std::ostream& os) const {
  os << summary_ << "\n\nFlags:\n";
  for (const auto& name : declaration_order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default: " << flag.value << ")\n      "
       << flag.help << "\n";
  }
}

void define_budget_flags(CliFlags& flags) {
  flags.define_double(
      "deadline", 0.0,
      "wall-clock budget per planning call in seconds (0 = none); "
      "a nondeterministic cutoff — results depend on machine speed");
  flags.define_int(
      "node-budget", 0,
      "unit-of-work cap per planning call (0 = none); a deterministic "
      "cutoff — results are bit-identical at every thread count");
}

Budget budget_from_flags(const CliFlags& flags) {
  Budget budget;
  budget.deadline_s = flags.get_double("deadline");
  budget.node_cap = static_cast<std::size_t>(flags.get_int("node-budget"));
  return budget;
}

}  // namespace bc::support
