// Contract-checking helpers for public API boundaries.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions on public
// functions are checked eagerly and violations reported as exceptions that
// carry the failing expression and a caller-supplied explanation. Internal
// invariants use bc_assert(), which is compiled out in release builds.

#ifndef BUNDLECHARGE_SUPPORT_REQUIRE_H_
#define BUNDLECHARGE_SUPPORT_REQUIRE_H_

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bc::support {

// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Thrown when an internal postcondition/invariant fails (a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_precondition(std::string_view what,
                                     const std::source_location& loc);
[[noreturn]] void throw_invariant(std::string_view what,
                                  const std::source_location& loc);

}  // namespace detail

// Precondition check: `require(n > 0, "n must be positive")`.
inline void require(
    bool condition, std::string_view what,
    const std::source_location& loc = std::source_location::current()) {
  if (!condition) detail::throw_precondition(what, loc);
}

// Invariant/postcondition check for conditions the library itself
// guarantees; failure indicates a bug in this library, not in the caller.
inline void ensure(
    bool condition, std::string_view what,
    const std::source_location& loc = std::source_location::current()) {
  if (!condition) detail::throw_invariant(what, loc);
}

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_REQUIRE_H_
