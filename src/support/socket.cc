#include "support/socket.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace bc::support {

namespace {

Fault socket_fault(const std::string& what) {
  return Fault{FaultKind::kInvalidInput, what + ": " + std::strerror(errno)};
}

}  // namespace

#ifndef _WIN32

void ignore_sigpipe() {
  // Idempotent and async-signal-trivial: SIG_IGN survives fork/exec of
  // children only when they do not reset it, which is exactly what a
  // supervised daemon wants.
  ::signal(SIGPIPE, SIG_IGN);
}

Expected<ListenSocket> listen_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_fault("socket");
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const Fault fault = socket_fault("setsockopt(SO_REUSEADDR)");
    close_fd(fd);
    return fault;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Fault fault = socket_fault("bind 127.0.0.1:" + std::to_string(port));
    close_fd(fd);
    return fault;
  }
  if (::listen(fd, backlog) != 0) {
    const Fault fault = socket_fault("listen");
    close_fd(fd);
    return fault;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Fault fault = socket_fault("getsockname");
    close_fd(fd);
    return fault;
  }
  return ListenSocket{fd, ntohs(bound.sin_port)};
}

Expected<int> accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return socket_fault("accept");
  }
}

void shutdown_socket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Expected<int> connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_fault("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) {
      // POSIX: an EINTR'd connect continues asynchronously; the portable
      // recovery is to wait for writability. For a loopback connect the
      // simplest correct handling is retrying the connect — EISCONN then
      // reports the (already established) connection.
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0 ||
          errno == EISCONN) {
        return fd;
      }
    }
    const Fault fault =
        socket_fault("connect 127.0.0.1:" + std::to_string(port));
    close_fd(fd);
    return fault;
  }
}

Expected<bool> set_io_timeout(int fd, double timeout_s) {
  if (timeout_s <= 0.0) return true;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - static_cast<double>(
                                                         tv.tv_sec)) *
                                        1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return socket_fault("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return socket_fault("setsockopt(SO_SNDTIMEO)");
  }
  return true;
}

Expected<std::size_t> read_some(int fd, char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t got = ::read(fd, buffer, capacity);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    return socket_fault("read");
  }
}

Expected<bool> write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a dead peer must produce EPIPE on *this* call, not a
    // process-wide signal. send() fails with ENOTSOCK on regular files;
    // fall back to write() there so the helper works for any fd.
    ssize_t wrote = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (wrote < 0 && errno == ENOTSOCK) {
      wrote = ::write(fd, data.data() + sent, data.size() - sent);
    }
    if (wrote < 0) {
      if (errno == EINTR) continue;  // retry; `sent` already tracks progress
      return socket_fault("write");
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

#else  // _WIN32: the daemon is POSIX-only; stubs keep the library linking.

void ignore_sigpipe() {}

Expected<ListenSocket> listen_loopback(std::uint16_t, int) {
  return Fault{FaultKind::kInvalidInput,
               "loopback sockets are not supported on this platform"};
}

Expected<int> accept_connection(int) {
  return Fault{FaultKind::kInvalidInput,
               "loopback sockets are not supported on this platform"};
}

Expected<int> connect_loopback(std::uint16_t) {
  return Fault{FaultKind::kInvalidInput,
               "loopback sockets are not supported on this platform"};
}

void shutdown_socket(int) {}

Expected<bool> set_io_timeout(int, double) { return true; }

Expected<std::size_t> read_some(int, char*, std::size_t) {
  return Fault{FaultKind::kInvalidInput,
               "loopback sockets are not supported on this platform"};
}

Expected<bool> write_all(int, std::string_view) {
  return Fault{FaultKind::kInvalidInput,
               "loopback sockets are not supported on this platform"};
}

void close_fd(int) {}

#endif

}  // namespace bc::support
