// Minimal command-line flag parser for examples and bench harnesses.
//
// Accepts `--name=value`, `--name value`, and boolean `--name` forms. Flags
// are declared with defaults, so every binary is runnable with no
// arguments; `--help` prints the declared flags and exits the parse with
// `help_requested() == true`.

#ifndef BUNDLECHARGE_SUPPORT_CLI_H_
#define BUNDLECHARGE_SUPPORT_CLI_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/deadline.h"

namespace bc::support {

class CliFlags {
 public:
  // `program_summary` is printed at the top of --help output.
  explicit CliFlags(std::string program_summary);

  // Declaration API: call once per flag before parse().
  void define_int(const std::string& name, std::int64_t default_value,
                  const std::string& help);
  void define_double(const std::string& name, double default_value,
                     const std::string& help);
  void define_string(const std::string& name, const std::string& default_value,
                     const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);

  // Parses argv. Returns false (and prints a diagnostic) on malformed input
  // or an unknown flag. On `--help`, prints usage and sets help_requested().
  bool parse(int argc, const char* const* argv, std::ostream& err);

  bool help_requested() const { return help_requested_; }

  // Accessors; precondition: the flag was defined with the matching type.
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  void print_help(std::ostream& os) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Flag& find(const std::string& name, Kind kind) const;
  bool assign(const std::string& name, const std::string& value,
              std::ostream& err);

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
  bool help_requested_ = false;
};

// Declares the shared solver-budget flags: --deadline (wall-clock seconds
// per planning call, 0 = none, nondeterministic cutoff) and --node-budget
// (deterministic unit-of-work cap per planning call, 0 = none).
void define_budget_flags(CliFlags& flags);

// Builds a Budget from the flags declared by define_budget_flags. The
// returned budget carries a fresh CancelToken; callers that want Ctrl-C to
// cancel solvers can pass it to cancel_on_signals.
Budget budget_from_flags(const CliFlags& flags);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_CLI_H_
