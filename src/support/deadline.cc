#include "support/deadline.h"

#include <csignal>

namespace bc::support {

namespace {

// The flag the signal handlers write through. A raw pointer into shared
// state kept alive by g_signal_token below; only ever swapped from
// cancel_on_signals (normal context), only read from handlers.
std::atomic<std::atomic<bool>*> g_signal_flag{nullptr};

void handle_cancel_signal(int /*signum*/) {
  std::atomic<bool>* flag = g_signal_flag.load(std::memory_order_relaxed);
  if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
}

}  // namespace

void cancel_on_signals(const CancelToken& token) {
  // Keep every installed token's shared state alive forever (leaked by
  // design): a handler racing a re-install must never observe a dangling
  // flag, and processes install at most a handful of tokens.
  auto* holder = new std::shared_ptr<std::atomic<bool>>(token.flag_);
  g_signal_flag.store(holder->get(), std::memory_order_relaxed);
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);
}

std::string to_string(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::kNone:
      return "none";
    case BudgetTrip::kNodeCap:
      return "node-cap";
    case BudgetTrip::kDeadline:
      return "deadline";
    case BudgetTrip::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string describe_trip(const BudgetMeter& meter) {
  return "budget exhausted (" + to_string(meter.trip()) + ") after " +
         std::to_string(meter.nodes_used()) + " units";
}

}  // namespace bc::support
