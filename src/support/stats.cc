#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/require.h"

namespace bc::support {

void RunningStat::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::mean() const {
  require(count_ > 0, "mean() of empty RunningStat");
  return mean_;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  require(count_ > 0, "min() of empty RunningStat");
  return min_;
}

double RunningStat::max() const {
  require(count_ > 0, "max() of empty RunningStat");
  return max_;
}

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double percentile(std::span<const double> samples, double q) {
  require(!samples.empty(), "percentile of empty sample set");
  require(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::string format_mean_ci(const RunningStat& stat, int precision) {
  require(!stat.empty(), "format_mean_ci of empty RunningStat");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, stat.mean(),
                precision, stat.ci95_half_width());
  return buf;
}

}  // namespace bc::support
