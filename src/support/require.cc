#include "support/require.h"

#include <string>

namespace bc::support::detail {

namespace {

std::string format_message(std::string_view kind, std::string_view what,
                           const std::source_location& loc) {
  std::string msg;
  msg.reserve(what.size() + 128);
  msg.append(kind);
  msg.append(" violated at ");
  msg.append(loc.file_name());
  msg.push_back(':');
  msg.append(std::to_string(loc.line()));
  msg.append(" (");
  msg.append(loc.function_name());
  msg.append("): ");
  msg.append(what);
  return msg;
}

}  // namespace

void throw_precondition(std::string_view what,
                        const std::source_location& loc) {
  throw PreconditionError(format_message("precondition", what, loc));
}

void throw_invariant(std::string_view what, const std::source_location& loc) {
  throw InvariantError(format_message("invariant", what, loc));
}

}  // namespace bc::support::detail
