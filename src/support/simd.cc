#include "support/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define BC_SIMD_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define BC_SIMD_HAVE_NEON_BUILD 1
#include <arm_neon.h>
#endif

namespace bc::support::simd {

namespace {

// --- scalar oracle --------------------------------------------------------

std::size_t subtract_and_count_scalar(std::uint64_t* dst,
                                      const std::uint64_t* src,
                                      const std::uint64_t* mask,
                                      std::size_t words) {
  std::size_t cleared = 0;
  for (std::size_t i = 0; i < words; ++i) {
    cleared += static_cast<std::size_t>(std::popcount(src[i] & mask[i]));
    dst[i] = src[i] & ~mask[i];
  }
  return cleared;
}

std::size_t intersect_count_scalar(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t words) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

void filter_within_scalar(const double* xs, const double* ys,
                          const std::uint32_t* ids, std::size_t count,
                          double qx, double qy, double r2,
                          std::vector<std::uint32_t>& out) {
  for (std::size_t i = 0; i < count; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    if (dx * dx + dy * dy <= r2) out.push_back(ids[i]);
  }
}

constexpr KernelTable kScalarTable = {
    &subtract_and_count_scalar,
    &intersect_count_scalar,
    &filter_within_scalar,
};

// --- AVX2 -----------------------------------------------------------------
//
// The target attribute (avx2 only — deliberately NOT fma, so the compiler
// cannot contract the explicit mul/add pairs below into fused ops that
// would round differently from the scalar oracle) lets these bodies live
// in a TU compiled without -mavx2; dispatch guards execution at runtime.

#if BC_SIMD_HAVE_AVX2_BUILD

// 4 parallel 64-bit popcounts via the nibble-LUT (vpshufb) algorithm.
__attribute__((target("avx2"))) inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  // Horizontal byte sums per 64-bit lane.
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) std::size_t subtract_and_count_avx2(
    std::uint64_t* dst, const std::uint64_t* src, const std::uint64_t* mask,
    std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(s, m)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(m, s));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t cleared = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                                 lanes[2] + lanes[3]);
  for (; i < words; ++i) {
    cleared += static_cast<std::size_t>(std::popcount(src[i] & mask[i]));
    dst[i] = src[i] & ~mask[i];
  }
  return cleared;
}

__attribute__((target("avx2"))) std::size_t intersect_count_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(va, vb)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (; i < words; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) void filter_within_avx2(
    const double* xs, const double* ys, const std::uint32_t* ids,
    std::size_t count, double qx, double qy, double r2,
    std::vector<std::uint32_t>& out) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d vr2 = _mm256_set1_pd(r2);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vqy);
    // Separate mul and add intrinsics: elementwise IEEE identical to the
    // scalar dx*dx + dy*dy (no FMA feature enabled, so no contraction).
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ)));
    while (m != 0) {
      out.push_back(ids[i + static_cast<std::size_t>(std::countr_zero(m))]);
      m &= m - 1;
    }
  }
  for (; i < count; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    if (dx * dx + dy * dy <= r2) out.push_back(ids[i]);
  }
}

constexpr KernelTable kAvx2Table = {
    &subtract_and_count_avx2,
    &intersect_count_avx2,
    &filter_within_avx2,
};

#endif  // BC_SIMD_HAVE_AVX2_BUILD

// --- NEON -----------------------------------------------------------------
//
// aarch64 NEON is baseline (no runtime probe needed). 128-bit lanes; the
// float64x2 scans keep mul and add as separate intrinsic statements for
// the same no-contraction reason as the AVX2 path.

#if BC_SIMD_HAVE_NEON_BUILD

inline std::uint64_t popcount_u64x2(uint64x2_t v) {
  const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddlvq_u8(counts);
}

std::size_t subtract_and_count_neon(std::uint64_t* dst,
                                    const std::uint64_t* src,
                                    const std::uint64_t* mask,
                                    std::size_t words) {
  std::uint64_t cleared = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t s = vld1q_u64(src + i);
    const uint64x2_t m = vld1q_u64(mask + i);
    cleared += popcount_u64x2(vandq_u64(s, m));
    vst1q_u64(dst + i, vbicq_u64(s, m));  // s & ~m
  }
  for (; i < words; ++i) {
    cleared += static_cast<std::uint64_t>(std::popcount(src[i] & mask[i]));
    dst[i] = src[i] & ~mask[i];
  }
  return static_cast<std::size_t>(cleared);
}

std::size_t intersect_count_neon(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t words) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    total += popcount_u64x2(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < words; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

void filter_within_neon(const double* xs, const double* ys,
                        const std::uint32_t* ids, std::size_t count,
                        double qx, double qy, double r2,
                        std::vector<std::uint32_t>& out) {
  const float64x2_t vqx = vdupq_n_f64(qx);
  const float64x2_t vqy = vdupq_n_f64(qy);
  const float64x2_t vr2 = vdupq_n_f64(r2);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vqx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vqy);
    const float64x2_t dx2 = vmulq_f64(dx, dx);
    const float64x2_t dy2 = vmulq_f64(dy, dy);
    const uint64x2_t le = vcleq_f64(vaddq_f64(dx2, dy2), vr2);
    if (vgetq_lane_u64(le, 0) != 0) out.push_back(ids[i]);
    if (vgetq_lane_u64(le, 1) != 0) out.push_back(ids[i + 1]);
  }
  for (; i < count; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    if (dx * dx + dy * dy <= r2) out.push_back(ids[i]);
  }
}

constexpr KernelTable kNeonTable = {
    &subtract_and_count_neon,
    &intersect_count_neon,
    &filter_within_neon,
};

#endif  // BC_SIMD_HAVE_NEON_BUILD

// --- resolution and dispatch ----------------------------------------------

const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
#if BC_SIMD_HAVE_AVX2_BUILD
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if BC_SIMD_HAVE_NEON_BUILD
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Isa resolve_from_env() {
  const char* env = std::getenv("BC_SIMD");
  Isa requested = best_supported_isa();
  if (env != nullptr && *env != '\0') {
    // Unparseable values resolve to auto: an ISA typo should degrade to
    // the best supported path, never crash a long-running bench.
    if (!parse_isa(env, requested)) requested = best_supported_isa();
  }
  return isa_supported(requested) ? requested : Isa::kScalar;
}

// The active table, published with the active ISA; dispatch loads it with
// a single relaxed atomic read. -1 means "not resolved yet".
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_isa{-1};

const KernelTable* active_table() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  const Isa isa = resolve_from_env();
  // Racing first calls resolve to the same value (pure function of env +
  // CPU), so last-writer-wins is benign.
  g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  t = table_for(isa);
  g_table.store(t, std::memory_order_release);
  return t;
}

}  // namespace

std::string_view to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool parse_isa(std::string_view text, Isa& out) {
  if (text == "scalar") {
    out = Isa::kScalar;
  } else if (text == "avx2") {
    out = Isa::kAvx2;
  } else if (text == "neon") {
    out = Isa::kNeon;
  } else if (text == "auto") {
    out = best_supported_isa();
  } else {
    return false;
  }
  return true;
}

bool isa_compiled(Isa isa) { return table_for(isa) != nullptr; }

bool isa_supported(Isa isa) {
  if (!isa_compiled(isa)) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if BC_SIMD_HAVE_AVX2_BUILD
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
      // NEON is architecturally mandatory on aarch64; compiled-in implies
      // runnable.
      return true;
  }
  return false;
}

Isa best_supported_isa() {
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa active_isa() {
  active_table();  // force resolution
  return static_cast<Isa>(g_isa.load(std::memory_order_relaxed));
}

Isa set_isa(Isa isa) {
  const Isa installed = isa_supported(isa) ? isa : Isa::kScalar;
  g_isa.store(static_cast<int>(installed), std::memory_order_relaxed);
  g_table.store(table_for(installed), std::memory_order_release);
  return installed;
}

std::size_t subtract_and_count(std::uint64_t* dst, const std::uint64_t* src,
                               const std::uint64_t* mask, std::size_t words) {
  // Small sets (the paper-scale instances) stay on the inlined-able scalar
  // path: an indirect call costs more than it saves below a few words.
  if (words < 8) return subtract_and_count_scalar(dst, src, mask, words);
  return active_table()->subtract_and_count(dst, src, mask, words);
}

std::size_t intersect_count(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
  if (words < 8) return intersect_count_scalar(a, b, words);
  return active_table()->intersect_count(a, b, words);
}

void filter_within(const double* xs, const double* ys,
                   const std::uint32_t* ids, std::size_t count, double qx,
                   double qy, double r2, std::vector<std::uint32_t>& out) {
  if (count < 8) {
    filter_within_scalar(xs, ys, ids, count, qx, qy, r2, out);
    return;
  }
  active_table()->filter_within(xs, ys, ids, count, qx, qy, r2, out);
}

const KernelTable& kernels(Isa isa) {
  const KernelTable* t = table_for(isa);
  return t != nullptr ? *t : kScalarTable;
}

}  // namespace bc::support::simd
