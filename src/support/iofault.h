// Deterministic system-I/O fault injection.
//
// The planner side of the repo has had a seeded fault model since PR 2
// (`sim/faults`): sensor deaths and battery shortfalls are drawn from a
// SplitMix64 stream so every disruption scenario is replayable from one
// integer. The serving side had nothing comparable — disk-full during a
// cache flush, EIO on fsync, or a rename torn by a crash were simply
// untested. This header brings the same discipline to system I/O: every
// guarded syscall in `support/atomic_file` (and therefore every journal
// built on it) passes through `iofault::arm()`, which assigns the call a
// process-wide fault-point index and consults the active plan. A chaos
// test first records a clean run to enumerate the fault points, then
// replays the same workload once per point with an injected failure —
// the sweep over *all* points is exhaustive by construction, not by
// sampling.
//
// Disabled (the default) the layer is a single relaxed atomic load per
// guarded call; production binaries pay essentially nothing.
//
// Plans come from the test API (`set_plan`) or from the `BC_IOFAULT`
// environment variable:
//
//   BC_IOFAULT=enospc@7          inject ENOSPC at fault point 7
//   BC_IOFAULT=eio@3:sticky      EIO at point 3 and every later point
//                                (a persistently failing disk)
//   BC_IOFAULT=seed:42           derive {kind, point, stickiness} from
//                                SplitMix64(42) — the nightly sweep mode
//   BC_IOFAULT=trace             inject nothing, just count fault points

#ifndef BUNDLECHARGE_SUPPORT_IOFAULT_H_
#define BUNDLECHARGE_SUPPORT_IOFAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bc::support::iofault {

// The guarded operation classes. Each call to `arm` names the operation
// it is about to perform; the plan decides whether that call fails.
enum class Op : std::uint8_t {
  kOpen = 0,
  kWrite,
  kFsync,
  kClose,
  kRename,
  kNumOps,  // count sentinel
};

// What to inject. Crash kinds model a process killed around the
// rename(2) commit point: "before" leaves only the temp file (the
// caller sees a fault and the destination is stale), "after" commits
// the rename but the caller never learns it succeeded — the classic
// ambiguous-outcome window that recovery code must tolerate.
enum class Kind : std::uint8_t {
  kNone = 0,
  kEnospc,             // open/write fails with ENOSPC
  kEio,                // open/write/fsync fails with EIO
  kShortWrite,         // write persists a prefix, then fails
  kFsyncFail,          // fsync fails with EIO (data may be lost)
  kCloseFail,          // close fails with EIO
  kRenameFail,         // rename fails with EIO, destination untouched
  kCrashBeforeRename,  // simulated kill: temp left behind, no rename
  kCrashAfterRename,   // simulated kill: rename done, result lost
  kNumKinds,           // count sentinel
};

struct Plan {
  Kind kind = Kind::kNone;
  // Fault-point index (0-based, process-wide across all guarded ops) at
  // which the fault fires. With `sticky`, every compatible op at index
  // >= at_op fails — a disk that stays broken, not a one-off glitch.
  std::uint64_t at_op = 0;
  bool sticky = false;
};

// True iff `kind` can be injected at operation class `op` (e.g. a short
// write only makes sense on kWrite). `arm` returns kNone at
// non-compatible points even when the index matches.
bool kind_applies(Kind kind, Op op);

// Installs `plan` and resets the fault-point counter, the trace, and
// the injection count. Passing a kNone plan still enables tracing.
void set_plan(const Plan& plan);

// Disables the layer entirely and clears all recorded state. The next
// `arm` call will re-read BC_IOFAULT (tests call `clear` + `set_plan`
// before the env is ever consulted, so the two modes do not interact).
void clear();

// The guarded hook. Assigns the next fault-point index to this call and
// returns the fault to inject, or Kind::kNone to proceed normally.
Kind arm(Op op);

// Number of fault points observed since the last set_plan/clear.
std::uint64_t ops_observed();

// Number of faults actually injected since the last set_plan/clear.
std::uint64_t injected();

// The operation class of every fault point observed so far, in order.
// A clean traced run of a workload yields the exhaustive fault-point
// list that sweep tests iterate over.
std::vector<Op> trace();

// Parses a BC_IOFAULT-style spec ("enospc@7", "eio@3:sticky",
// "seed:42", "trace"). Returns false on a malformed spec.
bool parse_plan(const std::string& spec, Plan* out);

// Expands a sweep seed into a concrete plan via SplitMix64 — the same
// derivation `BC_IOFAULT=seed:<n>` uses, exposed so the nightly sweep
// can enumerate seeds in-process.
Plan plan_from_seed(std::uint64_t seed);

// Human-readable names, for test output and the /statsz snapshot.
const char* op_name(Op op);
const char* kind_name(Kind kind);

}  // namespace bc::support::iofault

#endif  // BUNDLECHARGE_SUPPORT_IOFAULT_H_
