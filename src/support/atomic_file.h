// Crash-safe file helpers for checkpoint persistence.
//
// A checkpoint that can be torn by a crash is worse than none: a resumed
// sweep would silently trust half-written state. Writers therefore go
// through write-temp-then-rename — POSIX rename(2) atomically replaces the
// destination, so readers observe either the old complete file or the new
// complete file, never a prefix — and records carry CRC-32 checksums so a
// corrupted journal is detected instead of replayed.
//
// On POSIX every open/write/fsync/close/rename here passes through
// `support/iofault`, so chaos tests can fail any individual syscall
// deterministically (ENOSPC, EIO, short writes, torn renames).

#ifndef BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_
#define BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "support/expected.h"

namespace bc::support {

// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) of `data`.
std::uint32_t crc32(std::string_view data);

// Writes `contents` to `path` atomically: write to `<path>.tmp.<pid>`,
// flush + fsync, rename over `path`. On any failure the destination is
// untouched and the temp file is removed. Faults use kInvalidInput with
// the failing path in the message. The one exception to temp cleanup is
// an injected crash-before-rename, which deliberately leaves the temp
// behind — that is what a real SIGKILL between fsync and rename leaves,
// and `remove_stale_temps` is the recovery path for it.
Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents);

// Appends `data` to `path` (creating it if absent) with O_APPEND, then
// fsyncs. On failure the file may be left with a torn tail — a partial
// final line. Callers that append framed records (support/journal)
// tolerate exactly one torn final line on read and heal it by rewriting
// the file atomically on the next sync.
Expected<bool> append_file_durable(const std::string& path,
                                   std::string_view data);

// Removes leftover `<path>.tmp.*` files abandoned by a writer that
// crashed between creating its temp and renaming it into place.
// Returns the number of files removed. Journal open() calls this so a
// crashed predecessor can never leak temps indefinitely.
std::size_t remove_stale_temps(const std::string& path);

// The `<path>.tmp.` prefix write_file_atomic uses for its temp files —
// exposed so leak-regression tests can scan a directory for strays.
std::string temp_prefix(const std::string& path);

// Reads a whole file; kInvalidInput fault when it cannot be opened/read.
Expected<std::string> read_file(const std::string& path);

// True iff `path` names an existing filesystem entry.
bool file_exists(const std::string& path);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_
