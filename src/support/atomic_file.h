// Crash-safe file helpers for checkpoint persistence.
//
// A checkpoint that can be torn by a crash is worse than none: a resumed
// sweep would silently trust half-written state. Writers therefore go
// through write-temp-then-rename — POSIX rename(2) atomically replaces the
// destination, so readers observe either the old complete file or the new
// complete file, never a prefix — and records carry CRC-32 checksums so a
// corrupted journal is detected instead of replayed.

#ifndef BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_
#define BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "support/expected.h"

namespace bc::support {

// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) of `data`.
std::uint32_t crc32(std::string_view data);

// Writes `contents` to `path` atomically: write to `<path>.tmp.<pid>`,
// flush + fsync, rename over `path`. On any failure the destination is
// untouched and the temp file is removed. Faults use kInvalidInput with
// the failing path in the message.
Expected<bool> write_file_atomic(const std::string& path,
                                 std::string_view contents);

// Reads a whole file; kInvalidInput fault when it cannot be opened/read.
Expected<std::string> read_file(const std::string& path);

// True iff `path` names an existing filesystem entry.
bool file_exists(const std::string& path);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_ATOMIC_FILE_H_
