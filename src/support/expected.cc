#include "support/expected.h"

namespace bc::support {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kSensorDead:
      return "sensor-dead";
    case FaultKind::kStopOverrun:
      return "stop-overrun";
    case FaultKind::kBatteryShortfall:
      return "battery-shortfall";
    case FaultKind::kMcStranded:
      return "mc-stranded";
    case FaultKind::kReplanExhausted:
      return "replan-exhausted";
    case FaultKind::kCoverageGap:
      return "coverage-gap";
    case FaultKind::kInvalidInput:
      return "invalid-input";
    case FaultKind::kBudgetExhausted:
      return "budget-exhausted";
    case FaultKind::kDisconnected:
      return "disconnected";
    case FaultKind::kNumFaultKinds:
      break;
  }
  return "unknown";
}

std::string describe(const Fault& fault) {
  std::string text(to_string(fault.kind));
  if (fault.stop_index != kNoStop) {
    text += " at stop " + std::to_string(fault.stop_index);
  }
  if (!fault.message.empty()) {
    text += ": " + fault.message;
  }
  return text;
}

}  // namespace bc::support
