// Loopback TCP sockets and EINTR-safe file-descriptor I/O.
//
// The planning daemon (src/service) talks HTTP over 127.0.0.1 with no
// third-party networking dependency, so the socket plumbing lives here:
// thin wrappers over the POSIX calls whose error handling is easy to get
// subtly wrong in a long-lived server. Every loop retries EINTR — a signal
// delivered mid-read must never surface as a spurious protocol error — and
// every write loop handles short writes, which regular files rarely
// produce but sockets produce routinely.
//
// All functions report failures as structured faults (kInvalidInput with
// errno text), never exceptions: a disconnecting client is an outcome the
// server handles, not a bug.

#ifndef BUNDLECHARGE_SUPPORT_SOCKET_H_
#define BUNDLECHARGE_SUPPORT_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/expected.h"

namespace bc::support {

// Ignores SIGPIPE process-wide (idempotent). A daemon must call this
// before serving: without it, writing a response to a client that already
// disconnected kills the whole process instead of failing the one write
// with EPIPE. Individual sends additionally pass MSG_NOSIGNAL where
// available, but that does not cover every path (e.g. writev via stdio).
void ignore_sigpipe();

// A listening TCP socket bound to 127.0.0.1. `port` on return is the
// actually bound port (useful with requested port 0 = ephemeral).
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
// port) with SO_REUSEADDR. Loopback only by construction: the daemon is a
// localhost service and must not be reachable from the network.
Expected<ListenSocket> listen_loopback(std::uint16_t port, int backlog = 64);

// Accepts one connection, retrying EINTR. Returns the connected fd.
// A shut-down/invalid listening fd is reported as a fault (the server's
// shutdown path calls shutdown_socket on the listen fd to unblock the
// accept loop — close(2) alone does NOT wake a thread blocked in accept).
Expected<int> accept_connection(int listen_fd);

// shutdown(2) both directions. The one reliable way to wake another
// thread blocked in accept(2)/read(2) on this fd; closing the descriptor
// from a different thread leaves the blocked call sleeping on Linux.
void shutdown_socket(int fd);

// Connects to 127.0.0.1:`port`, retrying EINTR.
Expected<int> connect_loopback(std::uint16_t port);

// Sets SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer cannot wedge a handler
// thread forever. timeout_s <= 0 leaves the socket blocking.
Expected<bool> set_io_timeout(int fd, double timeout_s);

// Reads up to `capacity` bytes, retrying EINTR. Returns the byte count
// (0 = orderly EOF). A receive timeout (EAGAIN/EWOULDBLOCK) and any other
// error are faults.
Expected<std::size_t> read_some(int fd, char* buffer, std::size_t capacity);

// Writes all of `data`, retrying EINTR and continuing after short writes.
// Uses send(MSG_NOSIGNAL) on sockets so a dead peer yields EPIPE instead
// of a signal even if ignore_sigpipe() was not called.
Expected<bool> write_all(int fd, std::string_view data);

// close(2) wrapper. EINTR after close is not retried (POSIX leaves the fd
// state unspecified; retrying can close a reused descriptor).
void close_fd(int fd);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_SOCKET_H_
