// Resource budgets and cooperative cancellation.
//
// The bundle-generation + exact-cover pipeline is worst-case exponential,
// and experiment sweeps multiply that by hundreds of cells. A production
// planner therefore needs an *anytime* contract: every solver accepts a
// Budget (wall-clock deadline, unit-of-work cap, external cancellation)
// and, when the budget trips, returns the best feasible answer found so
// far instead of hanging or aborting.
//
// Determinism contract: node/unit caps are counted serially by each solver
// and trip at exactly the same expansion regardless of the thread count,
// so node-capped results are bit-identical at BC_THREADS=1/2/8. Wall-clock
// deadlines and external cancellation are inherently *nondeterministic*
// cutoffs — what is returned depends on machine speed and signal timing —
// and are excluded from determinism tests. Solvers poll the clock only
// every kClockPollStride charges, which bounds both the polling overhead
// and how far any solver can overshoot its deadline (one polling interval
// of its innermost loop).

#ifndef BUNDLECHARGE_SUPPORT_DEADLINE_H_
#define BUNDLECHARGE_SUPPORT_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

namespace bc::support {

// Cooperative cancellation flag. Copies share state, so a token handed to
// a solver can be cancelled from another thread (or a signal handler via
// cancel_on_signals). Cancellation is one-way and sticky.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  friend void cancel_on_signals(const CancelToken& token);
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Installs SIGINT/SIGTERM handlers that request_cancel on `token`, so a
// Ctrl-C turns into a clean flush-and-exit instead of a lost sweep. The
// handler performs a single relaxed atomic store (async-signal-safe).
// Replaces any token installed by a previous call; the token's shared
// state is kept alive for the lifetime of the process.
void cancel_on_signals(const CancelToken& token);

// Declarative resource limits. A default-constructed Budget is unlimited.
// Copies share the cancellation token (cancelling one cancels all).
struct Budget {
  // Wall-clock limit in seconds, measured from BudgetMeter construction
  // (0 = none). Nondeterministic cutoff — see the header comment.
  double deadline_s = 0.0;
  // Deterministic unit-of-work cap: branch-and-bound nodes, simplex
  // pivots, annealing iterations... whatever the solver's natural unit is
  // (0 = none).
  std::size_t node_cap = 0;
  // External cancellation (signals, a supervising thread).
  CancelToken cancel{};

  bool unlimited() const {
    return deadline_s <= 0.0 && node_cap == 0 && !cancel.cancelled();
  }
};

// Why a meter tripped. Ordered by determinism: node caps are bit-exact,
// deadline/cancellation depend on timing.
enum class BudgetTrip {
  kNone = 0,
  kNodeCap,    // deterministic
  kDeadline,   // nondeterministic (wall clock)
  kCancelled,  // nondeterministic (external)
};

std::string to_string(BudgetTrip trip);

// Clock polls happen every this many charges; a power of two so the
// stride test compiles to a mask.
inline constexpr std::size_t kClockPollStride = 1024;

// Running enforcement of one Budget. Construction stamps the start time.
// Not thread-safe: each solver owns one meter (or borrows its caller's)
// and charges it from a single thread — which is exactly what keeps
// node-cap trips deterministic. Once tripped, a meter stays exhausted.
class BudgetMeter {
 public:
  // Unlimited meter: charge() is a counter increment and nothing else.
  BudgetMeter() : BudgetMeter(Budget{}) {}

  explicit BudgetMeter(const Budget& budget)
      : node_cap_(budget.node_cap),
        cancel_(budget.cancel),
        has_deadline_(budget.deadline_s > 0.0) {
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(budget.deadline_s));
    }
  }

  // Counts `units` of work and checks every limit (the clock only on the
  // polling stride). Returns true while the budget holds; false once
  // exhausted. Charging an exhausted meter stays false and keeps counting.
  bool charge(std::size_t units = 1) {
    nodes_ += units;
    if (trip_ != BudgetTrip::kNone) return false;
    if (node_cap_ != 0 && nodes_ > node_cap_) {
      trip_ = BudgetTrip::kNodeCap;
      return false;
    }
    if (cancel_.cancelled()) {
      trip_ = BudgetTrip::kCancelled;
      return false;
    }
    if (has_deadline_ && nodes_ - last_poll_ >= kClockPollStride) {
      last_poll_ = nodes_;
      if (std::chrono::steady_clock::now() >= deadline_) {
        trip_ = BudgetTrip::kDeadline;
        return false;
      }
    }
    return true;
  }

  // Polls deadline and cancellation *now* without counting work — for
  // coarse-grained checkpoints (between ladder rungs, solver phases,
  // sweep chunks) where overshooting by a stride would be too sloppy.
  bool check() {
    if (trip_ != BudgetTrip::kNone) return false;
    if (cancel_.cancelled()) {
      trip_ = BudgetTrip::kCancelled;
      return false;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      trip_ = BudgetTrip::kDeadline;
      return false;
    }
    return true;
  }

  bool exhausted() const { return trip_ != BudgetTrip::kNone; }
  // True when the node budget has no headroom left (already tripped, or
  // exactly at the cap so the next charge must trip). Ladder-style callers
  // use this to fail fast instead of burning retry rungs whose very first
  // unit of work is doomed.
  bool node_budget_depleted() const {
    return trip_ == BudgetTrip::kNodeCap ||
           (node_cap_ != 0 && nodes_ >= node_cap_);
  }
  BudgetTrip trip() const { return trip_; }
  std::size_t nodes_used() const { return nodes_; }

  // Seconds left on the wall deadline (clamped at 0), or negative when the
  // meter has none. For callers that must decide whether waiting (retry
  // backoff, queue dwell) can still pay off before the deadline.
  double remaining_deadline_s() const {
    if (!has_deadline_) return -1.0;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return 0.0;
    return std::chrono::duration<double>(deadline_ - now).count();
  }

 private:
  std::size_t node_cap_ = 0;
  CancelToken cancel_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::size_t nodes_ = 0;
  std::size_t last_poll_ = 0;
  BudgetTrip trip_ = BudgetTrip::kNone;
};

// "budget exhausted (node-cap) after 12345 units" — for fault messages.
std::string describe_trip(const BudgetMeter& meter);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_DEADLINE_H_
