// Structured error reporting for fallible operations.
//
// Disruption-tolerant execution must degrade instead of asserting: a dead
// bundle member or a stranded charger is an *outcome* to report, not a
// programming error. Fallible layers (mission executor, online replanner,
// deployment IO) therefore return Expected<T> — either a value or a Fault
// carrying a machine-readable FaultKind, a human-readable message, and,
// where it applies, the plan stop index the fault was detected at.
// BC_REQUIRE-style exceptions remain reserved for genuine contract
// violations (bad arguments, library bugs).

#ifndef BUNDLECHARGE_SUPPORT_EXPECTED_H_
#define BUNDLECHARGE_SUPPORT_EXPECTED_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "support/require.h"

namespace bc::support {

// Taxonomy of runtime disruptions and recoverable failures. Keep
// kNumFaultKinds last: per-kind counters index by it.
enum class FaultKind {
  kNone = 0,           // no fault (default-constructed Fault)
  kSensorDead,         // a planned bundle member is dead (permanent or outage)
  kStopOverrun,        // actual stop time exceeded plan x tolerance
  kBatteryShortfall,   // projected MC battery cannot cover stop + depot return
  kMcStranded,        // MC battery exhausted before reaching the depot
  kReplanExhausted,    // bounded-retry replanning ran out of attempts
  kCoverageGap,        // a candidate replan failed to cover every sensor
  kInvalidInput,       // malformed external input (IO, config)
  kBudgetExhausted,    // a resource budget (deadline/node cap/cancel) tripped
  kDisconnected,       // waypoint graph cannot reach every sensor/depot
  kNumFaultKinds,      // count sentinel, not a fault
};

std::string_view to_string(FaultKind kind);

// No stop index applies (fault not tied to a particular plan stop).
inline constexpr std::size_t kNoStop = static_cast<std::size_t>(-1);

struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::string message;
  std::size_t stop_index = kNoStop;
};

// "fault kind at stop 3: message" / "fault kind: message".
std::string describe(const Fault& fault);

// Minimal expected/result type: holds either a T or a Fault. Intentionally
// smaller than std::expected (C++23): no monadic chaining, just checked
// access, which keeps call sites explicit about the degraded path.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}            // NOLINT
  Expected(Fault fault) : state_(std::move(fault)) {}        // NOLINT
  Expected(FaultKind kind, std::string message,
           std::size_t stop_index = kNoStop)
      : state_(Fault{kind, std::move(message), stop_index}) {}

  bool has_value() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return has_value(); }

  // Checked access; calling the wrong accessor is a caller bug.
  const T& value() const& {
    require(has_value(), "Expected holds a fault, not a value");
    return std::get<T>(state_);
  }
  T& value() & {
    require(has_value(), "Expected holds a fault, not a value");
    return std::get<T>(state_);
  }
  T&& value() && {
    require(has_value(), "Expected holds a fault, not a value");
    return std::get<T>(std::move(state_));
  }
  const Fault& fault() const {
    require(!has_value(), "Expected holds a value, not a fault");
    return std::get<Fault>(state_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Fault> state_;
};

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_EXPECTED_H_
