#include "support/table.h"

#include <algorithm>
#include <cstdio>

#include "support/require.h"

namespace bc::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table needs at least one column");
}

Table::Table(std::initializer_list<std::string> headers)
    : Table(std::vector<std::string>(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "row cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::num(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace bc::support
