#include "support/iofault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/rng.h"

namespace bc::support::iofault {

namespace {

// 0 = env not yet consulted, 1 = disabled (fast path), 2 = enabled.
std::atomic<int> g_state{0};

std::mutex g_mutex;
Plan g_plan;                 // guarded by g_mutex
std::uint64_t g_ops = 0;     // guarded by g_mutex
std::uint64_t g_injected = 0;  // guarded by g_mutex
std::vector<Op> g_trace;     // guarded by g_mutex

// A runaway loop retrying a sticky fault could otherwise grow the trace
// without bound; sweeps never need more points than this.
constexpr std::size_t kTraceCap = 1 << 16;

// Called under g_mutex with g_state == 0: consult BC_IOFAULT once.
void load_env_locked() {
  const char* spec = std::getenv("BC_IOFAULT");
  if (spec == nullptr || *spec == '\0') {
    g_state.store(1, std::memory_order_release);
    return;
  }
  Plan plan;
  if (!parse_plan(spec, &plan)) {
    std::fprintf(stderr, "bundlecharge: ignoring malformed BC_IOFAULT=%s\n",
                 spec);
    g_state.store(1, std::memory_order_release);
    return;
  }
  g_plan = plan;
  g_ops = 0;
  g_injected = 0;
  g_trace.clear();
  g_state.store(2, std::memory_order_release);
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

Kind kind_from_name(const std::string& name) {
  for (int k = 0; k < static_cast<int>(Kind::kNumKinds); ++k) {
    if (name == kind_name(static_cast<Kind>(k))) return static_cast<Kind>(k);
  }
  return Kind::kNumKinds;
}

}  // namespace

bool kind_applies(Kind kind, Op op) {
  switch (kind) {
    case Kind::kEnospc:
      return op == Op::kOpen || op == Op::kWrite;
    case Kind::kEio:
      return op == Op::kOpen || op == Op::kWrite || op == Op::kFsync;
    case Kind::kShortWrite:
      return op == Op::kWrite;
    case Kind::kFsyncFail:
      return op == Op::kFsync;
    case Kind::kCloseFail:
      return op == Op::kClose;
    case Kind::kRenameFail:
    case Kind::kCrashBeforeRename:
    case Kind::kCrashAfterRename:
      return op == Op::kRename;
    case Kind::kNone:
    case Kind::kNumKinds:
      return false;
  }
  return false;
}

void set_plan(const Plan& plan) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_plan = plan;
  g_ops = 0;
  g_injected = 0;
  g_trace.clear();
  g_state.store(2, std::memory_order_release);
}

void clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_plan = Plan{};
  g_ops = 0;
  g_injected = 0;
  g_trace.clear();
  g_state.store(0, std::memory_order_release);
}

Kind arm(Op op) {
  int state = g_state.load(std::memory_order_acquire);
  if (state == 1) return Kind::kNone;  // the production fast path
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state.load(std::memory_order_relaxed) == 0) load_env_locked();
  if (g_state.load(std::memory_order_relaxed) != 2) return Kind::kNone;
  const std::uint64_t index = g_ops++;
  if (g_trace.size() < kTraceCap) g_trace.push_back(op);
  const bool hit =
      g_plan.sticky ? index >= g_plan.at_op : index == g_plan.at_op;
  if (!hit || !kind_applies(g_plan.kind, op)) return Kind::kNone;
  ++g_injected;
  return g_plan.kind;
}

std::uint64_t ops_observed() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_ops;
}

std::uint64_t injected() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_injected;
}

std::vector<Op> trace() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_trace;
}

Plan plan_from_seed(std::uint64_t seed) {
  SplitMix64 stream(seed);
  Plan plan;
  const std::uint64_t n_kinds = static_cast<std::uint64_t>(Kind::kNumKinds);
  plan.kind = static_cast<Kind>(1 + stream.next() % (n_kinds - 1));
  // Journals touch a handful of fault points per sync; 24 keeps most
  // seeds landing on a live point while still probing "past the end"
  // (which must be a clean no-fault run).
  plan.at_op = stream.next() % 24;
  plan.sticky = (stream.next() & 1u) != 0;
  return plan;
}

bool parse_plan(const std::string& spec, Plan* out) {
  if (spec == "trace") {
    *out = Plan{};
    return true;
  }
  const std::string seed_prefix = "seed:";
  if (spec.rfind(seed_prefix, 0) == 0) {
    std::uint64_t seed = 0;
    if (!parse_u64(spec.substr(seed_prefix.size()), &seed)) return false;
    *out = plan_from_seed(seed);
    return true;
  }
  const std::size_t at = spec.find('@');
  if (at == std::string::npos) return false;
  Plan plan;
  plan.kind = kind_from_name(spec.substr(0, at));
  if (plan.kind == Kind::kNumKinds || plan.kind == Kind::kNone) return false;
  std::string rest = spec.substr(at + 1);
  const std::string sticky_suffix = ":sticky";
  if (rest.size() >= sticky_suffix.size() &&
      rest.compare(rest.size() - sticky_suffix.size(), sticky_suffix.size(),
                   sticky_suffix) == 0) {
    plan.sticky = true;
    rest.resize(rest.size() - sticky_suffix.size());
  }
  if (!parse_u64(rest, &plan.at_op)) return false;
  *out = plan;
  return true;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kOpen:
      return "open";
    case Op::kWrite:
      return "write";
    case Op::kFsync:
      return "fsync";
    case Op::kClose:
      return "close";
    case Op::kRename:
      return "rename";
    case Op::kNumOps:
      break;
  }
  return "?";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kEnospc:
      return "enospc";
    case Kind::kEio:
      return "eio";
    case Kind::kShortWrite:
      return "short_write";
    case Kind::kFsyncFail:
      return "fsync_fail";
    case Kind::kCloseFail:
      return "close_fail";
    case Kind::kRenameFail:
      return "rename_fail";
    case Kind::kCrashBeforeRename:
      return "crash_before_rename";
    case Kind::kCrashAfterRename:
      return "crash_after_rename";
    case Kind::kNumKinds:
      break;
  }
  return "?";
}

}  // namespace bc::support::iofault
