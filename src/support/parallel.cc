#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "support/require.h"

namespace bc::support {

namespace {

// Hard ceiling on the pool size: far above any sane oversubscription, low
// enough that a stray huge value (BC_THREADS=99999999, --threads=-1 cast
// to size_t) cannot exhaust process resources spawning threads.
constexpr std::size_t kMaxThreads = 1024;

thread_local bool t_in_worker = false;

// Depth of parallel_for chunk execution on this thread. Unlike
// t_in_worker it is also set on the *inline* path, so "am I inside a
// parallel region" answers the same on every thread count — the property
// the obs layer needs to suppress trace emission consistently.
thread_local int t_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++t_region_depth; }
  ~RegionGuard() { --t_region_depth; }
};

std::size_t auto_thread_count() {
  if (const char* env = std::getenv("BC_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) {
      // Oversized values clamp rather than abort: an env var is not a
      // checked API boundary. Malformed ones fall through to hardware.
      return std::min(static_cast<std::size_t>(value), kMaxThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// One parallel_for invocation. Chunks are claimed from an atomic counter;
// which thread runs which chunk is the only scheduling freedom, and no
// output depends on it.
struct Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> next_chunk{0};

  std::mutex mutex;
  std::exception_ptr error;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();

  void work() {
    for (;;) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        RegionGuard region;
        (*fn)(begin, end);
      } catch (...) {
        // Keep the exception from the lowest-indexed throwing chunk so the
        // rethrown error is the one serial execution would have raised.
        std::lock_guard<std::mutex> lock(mutex);
        if (chunk < error_chunk) {
          error_chunk = chunk;
          error = std::current_exception();
        }
      }
    }
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t thread_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (configured_ == 0) configured_ = auto_thread_count();
    return configured_;
  }

  void set_thread_count(std::size_t n) {
    stop_workers();
    std::lock_guard<std::mutex> lock(mutex_);
    configured_ = n == 0 ? auto_thread_count() : n;
  }

  // Runs `job` on the pool workers plus the calling thread and returns
  // once every chunk has been executed. Top-level sections are serialised
  // by region_mutex_ — the library issues one parallel section at a time;
  // a second concurrent caller simply waits its turn.
  void run(Job& job) {
    std::lock_guard<std::mutex> region(region_mutex_);
    std::size_t helpers;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (configured_ == 0) configured_ = auto_thread_count();
      const std::size_t wanted = configured_ - 1;
      if (workers_.size() != wanted) {
        start_workers_locked(lock, wanted);
      }
      helpers = workers_.size();
      job_ = &job;
      ++job_seq_;
      pending_ = helpers;
      cv_.notify_all();
    }

    // The caller is a participant too; with zero helpers this is simply
    // the serial loop.
    t_in_worker = true;
    job.work();
    t_in_worker = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }

  ~Pool() { stop_workers(); }

 private:
  void start_workers_locked(std::unique_lock<std::mutex>& lock,
                            std::size_t wanted) {
    // Resize by full restart; worker counts change rarely (benches and
    // tests sweeping thread counts), never inside a parallel section.
    if (!workers_.empty()) {
      stopping_ = true;
      cv_.notify_all();
      lock.unlock();
      for (auto& worker : workers_) worker.join();
      lock.lock();
      workers_.clear();
      stopping_ = false;
    }
    workers_.reserve(wanted);
    for (std::size_t i = 0; i < wanted; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (workers_.empty()) return;
      stopping_ = true;
      cv_.notify_all();
      to_join = std::move(workers_);
      workers_.clear();
    }
    for (auto& worker : to_join) worker.join();
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen_seq = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return stopping_ || (job_ != nullptr && job_seq_ != seen_seq);
        });
        if (stopping_) return;
        job = job_;
        seen_seq = job_seq_;
      }
      job->work();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex region_mutex_;  // one top-level parallel section at a time

  std::mutex mutex_;
  std::condition_variable cv_;       // wakes workers for a new job or stop
  std::condition_variable done_cv_;  // wakes the caller when helpers finish
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::size_t configured_ = 0;  // 0 = not yet resolved
};

// Same contract as the pooled path — every chunk runs, the first chunk's
// exception wins — so side effects are identical at every thread count.
void run_inline(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  std::exception_ptr error;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    try {
      RegionGuard region;
      fn(begin, std::min(n, begin + grain));
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

std::size_t thread_count() { return Pool::instance().thread_count(); }

void set_thread_count(std::size_t n) {
  require(n <= kMaxThreads,
          "thread count must be between 0 (= automatic) and 1024");
  Pool::instance().set_thread_count(n);
}

bool in_parallel_worker() { return t_in_worker; }

ScopedInlineExecution::ScopedInlineExecution() : previous_(t_in_worker) {
  t_in_worker = true;
}

ScopedInlineExecution::~ScopedInlineExecution() { t_in_worker = previous_; }

bool in_parallel_region() { return t_region_depth > 0 || t_in_worker; }

bool in_parallel_chunk() { return t_region_depth > 0; }

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = thread_count();
  if (grain == 0) {
    // Automatic grain: ~4 chunks per worker for load balance. Depends on
    // the worker count, so only per-index-slot writers should rely on it.
    grain = std::max<std::size_t>(1, n / (4 * workers));
  }
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (workers == 1 || num_chunks == 1 || t_in_worker) {
    run_inline(n, grain, fn);
    return;
  }

  Job job;
  job.n = n;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  Pool::instance().run(job);
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadsOption::apply() const {
  if (threads != 0) set_thread_count(threads);
}

}  // namespace bc::support
