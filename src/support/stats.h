// Streaming statistics and multi-run experiment summaries.
//
// Benches average each data point over many seeded runs (the paper uses
// 100 runs per point); RunningStat accumulates mean/variance in one pass
// using Welford's algorithm, and Summary renders them with a 95 %
// confidence interval.

#ifndef BUNDLECHARGE_SUPPORT_STATS_H_
#define BUNDLECHARGE_SUPPORT_STATS_H_

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace bc::support {

// One-pass mean / variance / extrema accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Mean of the accumulated samples. Precondition: !empty().
  double mean() const;
  // Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  // Sample standard deviation.
  double stddev() const;
  double min() const;
  double max() const;
  // Half-width of the 95 % normal-approximation confidence interval.
  double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentile (linear interpolation) over a copied sample set.
// Precondition: !samples.empty() and 0 <= q <= 1.
double percentile(std::span<const double> samples, double q);

// Formats "mean ± ci95" with the given precision; used by bench tables.
std::string format_mean_ci(const RunningStat& stat, int precision = 1);

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_STATS_H_
