// Deterministic pseudo-random number generation.
//
// Experiments in this repository must be reproducible from a single integer
// seed, independent of the standard library implementation, so we carry our
// own generators: SplitMix64 for seeding and xoshiro256++ as the workhorse.
// Both are public-domain algorithms by Blackman & Vigna.

#ifndef BUNDLECHARGE_SUPPORT_RNG_H_
#define BUNDLECHARGE_SUPPORT_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace bc::support {

// SplitMix64: a tiny, statistically strong 64-bit generator used here to
// expand one seed into the larger state of xoshiro256++.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ 1.0 — fast, 256-bit state, passes BigCrush. Satisfies the
// UniformRandomBitGenerator concept so it also works with <random>
// distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the full state via SplitMix64 so that nearby seeds give
  // uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  result_type next();

  // Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);
  // Standard normal via Marsaglia polar method.
  double gaussian();
  // Normal with given mean and standard deviation (stddev >= 0).
  double gaussian(double mean, double stddev);
  // Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

  // Fisher–Yates shuffle of any random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

  // Derives an independent child generator; useful to give each experiment
  // repetition its own stream while keeping a single top-level seed.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bc::support

#endif  // BUNDLECHARGE_SUPPORT_RNG_H_
