#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "support/atomic_file.h"
#include "support/parallel.h"

namespace bc::obs {
namespace {

TraceJournal* g_current_journal = nullptr;
thread_local int t_span_depth = 0;
thread_local bool t_worker_tracing = false;

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Spans are recorded only from deterministic serial control flow: inside
// a parallel_for chunk the records' existence and order would depend on
// BC_THREADS, so chunks never journal. Threads flagged as workers are
// suppressed too, *unless* they opted in via ScopedWorkerTracing — a
// request thread under ScopedInlineExecution runs strictly serially, so
// its spans are as well-ordered as a main-thread run.
bool tracing_suppressed() {
  if (g_current_journal == nullptr || support::in_parallel_chunk()) {
    return true;
  }
  return support::in_parallel_worker() && !t_worker_tracing;
}

}  // namespace

std::int64_t SteadyTraceClock::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceJournal::Impl {
  std::unique_ptr<TraceClock> clock;
  std::string clock_name;
  mutable std::mutex mu;
  std::uint64_t next_seq = 0;
  std::vector<TraceRecord> records;
};

TraceJournal::TraceJournal(std::unique_ptr<TraceClock> clock)
    : impl_(new Impl()) {
  if (clock == nullptr) {
    impl_->clock = std::make_unique<SteadyTraceClock>();
    impl_->clock_name = "steady";
  } else {
    impl_->clock = std::move(clock);
    impl_->clock_name =
        dynamic_cast<VirtualTraceClock*>(impl_->clock.get()) != nullptr
            ? "virtual"
            : "steady";
  }
}

TraceJournal::~TraceJournal() { delete impl_; }

const std::string& TraceJournal::clock_name() const {
  return impl_->clock_name;
}

std::int64_t TraceJournal::now_ns() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->clock->now_ns();
}

void TraceJournal::append(TraceRecord record) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  record.seq = impl_->next_seq++;
  impl_->records.push_back(std::move(record));
}

std::size_t TraceJournal::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records.size();
}

std::vector<TraceRecord> TraceJournal::records() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records;
}

std::string TraceJournal::to_jsonl() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"schema\": \"bc-trace\", \"version\": 1, \"clock\": " +
                    json_quote(impl_->clock_name) + "}\n";
  for (const TraceRecord& r : impl_->records) {
    out += "{\"seq\": " + std::to_string(r.seq);
    out += ", \"type\": ";
    out += r.is_span ? "\"span\"" : "\"point\"";
    out += ", \"name\": " + json_quote(r.name);
    out += ", \"depth\": " + std::to_string(r.depth);
    if (r.is_span) {
      out += ", \"t0_ns\": " + std::to_string(r.t0_ns);
      out += ", \"t1_ns\": " + std::to_string(r.t1_ns);
    } else {
      out += ", \"t_ns\": " + std::to_string(r.t0_ns);
    }
    out += ", \"attrs\": {";
    for (std::size_t i = 0; i < r.attrs.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_quote(r.attrs[i].key) + ": " + r.attrs[i].json;
    }
    out += "}}\n";
  }
  return out;
}

support::Expected<bool> TraceJournal::write(const std::string& path) const {
  if (!support::write_file_atomic(path, to_jsonl())) {
    return support::Fault{support::FaultKind::kInvalidInput,
                          "cannot write trace file: " + path};
  }
  return true;
}

TraceJournal* trace_journal() { return g_current_journal; }

ScopedWorkerTracing::ScopedWorkerTracing() : previous_(t_worker_tracing) {
  t_worker_tracing = true;
}

ScopedWorkerTracing::~ScopedWorkerTracing() { t_worker_tracing = previous_; }

ScopedTraceJournal::ScopedTraceJournal(TraceJournal& journal)
    : previous_(g_current_journal) {
  g_current_journal = &journal;
}

ScopedTraceJournal::~ScopedTraceJournal() {
  g_current_journal = previous_;
}

TraceSpan::TraceSpan(std::string_view name)
    : journal_(tracing_suppressed() ? nullptr : g_current_journal) {
  if (journal_ == nullptr) return;
  record_.is_span = true;
  record_.name = std::string(name);
  record_.depth = t_span_depth++;
  record_.t0_ns = journal_->now_ns();
}

TraceSpan::~TraceSpan() {
  if (journal_ == nullptr) return;
  --t_span_depth;
  record_.t1_ns = journal_->now_ns();
  journal_->append(std::move(record_));
}

TraceSpan& TraceSpan::attr(std::string_view key, std::int64_t value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, std::uint64_t value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, double value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), format_double(value)});
  }
  return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, bool value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), value ? "true" : "false"});
  }
  return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, std::string_view value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), json_quote(value)});
  }
  return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, const char* value) {
  return attr(key, std::string_view(value));
}

TracePoint::TracePoint(std::string_view name)
    : journal_(tracing_suppressed() ? nullptr : g_current_journal) {
  if (journal_ == nullptr) return;
  record_.is_span = false;
  record_.name = std::string(name);
  record_.depth = t_span_depth;
  record_.t0_ns = journal_->now_ns();
}

TracePoint::~TracePoint() { emit(); }

void TracePoint::emit() {
  if (journal_ == nullptr) return;
  journal_->append(std::move(record_));
  journal_ = nullptr;
}

TracePoint& TracePoint::attr(std::string_view key, std::int64_t value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

TracePoint& TracePoint::attr(std::string_view key, std::uint64_t value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

TracePoint& TracePoint::attr(std::string_view key, double value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), format_double(value)});
  }
  return *this;
}

TracePoint& TracePoint::attr(std::string_view key, bool value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), value ? "true" : "false"});
  }
  return *this;
}

TracePoint& TracePoint::attr(std::string_view key, std::string_view value) {
  if (journal_ != nullptr) {
    record_.attrs.push_back({std::string(key), json_quote(value)});
  }
  return *this;
}

TracePoint& TracePoint::attr(std::string_view key, const char* value) {
  return attr(key, std::string_view(value));
}

std::string json_quote(std::string_view raw) {
  std::string out = "\"";
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace bc::obs
