// Scoped trace spans emitting a schema-versioned JSONL journal.
//
// A trace answers "what did the solver ladder *do*" — which rungs ran, in
// what order, with what aggregate outcomes — where the metrics registry
// only answers "how much". The journal is a sequence of records, one JSON
// object per line:
//
//   {"schema": "bc-trace", "version": 1, "clock": "virtual"}   <- header
//   {"seq": 0, "type": "span", "name": "plan", "depth": 0,
//    "t0_ns": 1000, "t1_ns": 9000, "attrs": {...}}
//   {"seq": 1, "type": "point", "name": "executor.disruption",
//    "depth": 2, "t_ns": 12000, "attrs": {...}}
//
// Records are appended when a span *ends* (so a span's attrs can include
// results computed during it); `seq` restores causal order for readers.
//
// Determinism contract (see DESIGN.md §9): spans and points are only
// recorded from deterministic serial control flow. Inside a parallel
// region — pooled worker or the caller's inline execution of a chunk,
// i.e. whenever `support::in_parallel_region()` holds — emission is
// suppressed, because chunk interleaving (and even *whether* a given
// chunk runs on the caller) varies with BC_THREADS. Parallel work shows
// up instead as aggregate attrs on the enclosing serial span. Under the
// virtual clock (logical time: each query ticks a fixed step) the journal
// is therefore byte-identical at every thread count, which is what the
// golden tests pin.
//
// With no journal installed every macro-free call site reduces to one
// thread-local pointer test — cheap enough to leave compiled in.

#ifndef BUNDLECHARGE_OBS_TRACE_H_
#define BUNDLECHARGE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/expected.h"

namespace bc::obs {

// Nanosecond timestamp source for trace records.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  virtual std::int64_t now_ns() = 0;
};

// Wall time from std::chrono::steady_clock (not byte-stable across runs).
class SteadyTraceClock final : public TraceClock {
 public:
  std::int64_t now_ns() override;
};

// Logical time: every query returns start + i*step for the i-th query.
// Two runs that make the same sequence of clock queries — which the
// determinism contract guarantees — produce identical timestamps, making
// journals byte-stable for golden tests.
class VirtualTraceClock final : public TraceClock {
 public:
  explicit VirtualTraceClock(std::int64_t start_ns = 0,
                             std::int64_t step_ns = 1000)
      : next_(start_ns), step_(step_ns) {}
  std::int64_t now_ns() override {
    const std::int64_t t = next_;
    next_ += step_;
    return t;
  }

 private:
  std::int64_t next_;
  std::int64_t step_;
};

// Pre-rendered attribute: `json` is the already-escaped JSON value text.
struct TraceAttr {
  std::string key;
  std::string json;
};

struct TraceRecord {
  std::uint64_t seq = 0;
  bool is_span = false;  // span has [t0,t1]; point has a single t
  std::string name;
  int depth = 0;
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::vector<TraceAttr> attrs;
};

// Collects records and serialises them to JSONL. Appends are mutex-
// protected (points may fire from serial sections of different call
// chains), but the determinism contract above keeps the *order* fixed.
class TraceJournal {
 public:
  // The journal takes ownership of the clock. Defaults to steady time.
  explicit TraceJournal(std::unique_ptr<TraceClock> clock = nullptr);
  ~TraceJournal();
  TraceJournal(const TraceJournal&) = delete;
  TraceJournal& operator=(const TraceJournal&) = delete;

  // "steady" or "virtual" — recorded in the JSONL header line.
  const std::string& clock_name() const;

  std::int64_t now_ns();
  void append(TraceRecord record);  // stamps seq
  std::size_t size() const;
  std::vector<TraceRecord> records() const;

  // Header line + one line per record, in seq order, '\n'-terminated.
  std::string to_jsonl() const;

  // Atomically writes to_jsonl() to `path`.
  support::Expected<bool> write(const std::string& path) const;

 private:
  struct Impl;
  Impl* impl_;
};

// Journal instrumentation currently appends to, or nullptr (tracing off).
TraceJournal* trace_journal();

// Installs `journal` as current for the scope. Must not race span
// emission, same as ScopedMetricsRegistry.
class ScopedTraceJournal {
 public:
  explicit ScopedTraceJournal(TraceJournal& journal);
  ~ScopedTraceJournal();
  ScopedTraceJournal(const ScopedTraceJournal&) = delete;
  ScopedTraceJournal& operator=(const ScopedTraceJournal&) = delete;

 private:
  TraceJournal* previous_;
};

// Re-enables span emission on a thread that is flagged as a parallel
// worker. Request handlers that solve inline (ScopedInlineExecution)
// install this right after the inline scope: the request runs strictly
// serially on its thread, so its spans are as well-ordered as a
// main-thread run, and without the opt-in a serving daemon could never
// journal its own service.* spans. Spans inside parallel_for chunks stay
// suppressed either way. Spans from concurrently-served requests
// interleave in journal order — a daemon trace is a diagnostic timeline,
// not a byte-stable artifact; drive the daemon serially when comparing
// journals.
class ScopedWorkerTracing {
 public:
  ScopedWorkerTracing();
  ~ScopedWorkerTracing();
  ScopedWorkerTracing(const ScopedWorkerTracing&) = delete;
  ScopedWorkerTracing& operator=(const ScopedWorkerTracing&) = delete;

 private:
  bool previous_;
};

// RAII span: records [construction, destruction] with nesting depth from
// a thread-local counter. Inactive (all methods no-ops) when no journal
// is installed or when constructed inside a parallel region.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& attr(std::string_view key, std::int64_t value);
  TraceSpan& attr(std::string_view key, std::uint64_t value);
  TraceSpan& attr(std::string_view key, double value);
  TraceSpan& attr(std::string_view key, bool value);
  TraceSpan& attr(std::string_view key, std::string_view value);
  TraceSpan& attr(std::string_view key, const char* value);

  bool active() const { return journal_ != nullptr; }

 private:
  TraceJournal* journal_;
  TraceRecord record_;
};

// Instantaneous event with the same activation rules as TraceSpan. The
// record is appended by emit() (or the destructor if emit() was never
// called), so attrs added before then are included.
class TracePoint {
 public:
  explicit TracePoint(std::string_view name);
  ~TracePoint();
  TracePoint(const TracePoint&) = delete;
  TracePoint& operator=(const TracePoint&) = delete;

  TracePoint& attr(std::string_view key, std::int64_t value);
  TracePoint& attr(std::string_view key, std::uint64_t value);
  TracePoint& attr(std::string_view key, double value);
  TracePoint& attr(std::string_view key, bool value);
  TracePoint& attr(std::string_view key, std::string_view value);
  TracePoint& attr(std::string_view key, const char* value);

  void emit();

 private:
  TraceJournal* journal_;
  TraceRecord record_;
};

// JSON-escapes `raw` and wraps it in double quotes.
std::string json_quote(std::string_view raw);

}  // namespace bc::obs

#endif  // BUNDLECHARGE_OBS_TRACE_H_
