#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "support/atomic_file.h"
#include "support/require.h"

namespace bc::obs {
namespace {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

// One interned metric. `offset` is the metric's first slot in a shard;
// counters and gauges use 1 slot, histograms use bounds.size() + 1.
struct MetricInfo {
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint32_t offset = 0;
  std::uint32_t slot_count = 1;
  std::vector<double> bounds;
};

// Process-wide append-only intern table shared by every registry, so
// handles stay valid across registry swaps.
struct InternTable {
  std::mutex mu;
  std::vector<MetricInfo> metrics;
  std::unordered_map<std::string, std::uint32_t> by_name;
  std::uint32_t next_offset = 0;

  static InternTable& instance() {
    static InternTable* table = new InternTable();  // never destroyed
    return *table;
  }

  std::uint32_t intern(std::string_view name, Kind kind,
                       std::span<const double> bounds) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(std::string(name));
    if (it != by_name.end()) {
      const MetricInfo& info = metrics[it->second];
      support::require(info.kind == kind,
                       "metric re-interned with a different kind: " +
                           std::string(name));
      if (kind == Kind::kHistogram) {
        support::require(
            std::equal(info.bounds.begin(), info.bounds.end(), bounds.begin(),
                       bounds.end()),
            "histogram re-interned with different bounds: " +
                std::string(name));
      }
      return it->second;
    }
    MetricInfo info;
    info.name = std::string(name);
    info.kind = kind;
    info.offset = next_offset;
    info.bounds.assign(bounds.begin(), bounds.end());
    if (kind == Kind::kHistogram) {
      support::require(!bounds.empty(), "histogram needs at least one bound");
      support::require(std::is_sorted(bounds.begin(), bounds.end()),
                       "histogram bounds must be ascending");
      info.slot_count = static_cast<std::uint32_t>(bounds.size()) + 1;
    }
    next_offset += info.slot_count;
    const auto id = static_cast<std::uint32_t>(metrics.size());
    metrics.push_back(std::move(info));
    by_name.emplace(metrics.back().name, id);
    return id;
  }
};

// Registries get process-unique serials; the TLS shard cache is keyed by
// serial (not pointer) so a destroyed test registry whose address is
// reused can never produce a false cache hit.
std::atomic<std::uint64_t> g_registry_serial{0};

}  // namespace

struct MetricsRegistry::Impl {
  std::uint64_t serial = 0;
  std::mutex mu;  // guards shard registration only
  // Stable addresses: shards are heap slabs owned by the registry, kept
  // alive (and counted) even after their recording thread exits.
  std::vector<std::unique_ptr<std::vector<std::uint64_t>>> shards;
};

namespace {

struct ShardCacheEntry {
  std::uint64_t serial = 0;
  std::vector<std::uint64_t>* shard = nullptr;
};

// Small direct-mapped per-thread cache over (registry serial → shard).
// One entry suffices in practice (one registry active at a time); a few
// extra slots keep nested scoped registries cheap.
constexpr int kShardCacheSize = 4;
thread_local ShardCacheEntry t_shard_cache[kShardCacheSize];

MetricsRegistry* g_current = nullptr;

// Per-thread override (ScopedThreadMetrics); wins over g_current so a
// server worker's request registry captures everything the request
// records, while unrelated threads keep the process-wide registry.
thread_local MetricsRegistry* t_current = nullptr;

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {
  impl_->serial = 1 + g_registry_serial.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

std::uint64_t* MetricsRegistry::slots(std::uint32_t id) {
  const MetricInfo& info = InternTable::instance().metrics[id];
  const std::uint32_t needed = info.offset + info.slot_count;
  const int slot = static_cast<int>(impl_->serial % kShardCacheSize);
  ShardCacheEntry& entry = t_shard_cache[slot];
  if (entry.serial != impl_->serial) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shards.push_back(std::make_unique<std::vector<std::uint64_t>>());
    entry.serial = impl_->serial;
    entry.shard = impl_->shards.back().get();
  }
  if (entry.shard->size() < needed) entry.shard->resize(needed, 0);
  return entry.shard->data() + info.offset;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  InternTable& table = InternTable::instance();
  std::vector<MetricInfo> infos;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    infos = table.metrics;
  }
  // Merge every shard in registration order. All merge operators are
  // commutative over integers, so the order is irrelevant to the result —
  // it is fixed anyway to keep the loop obviously deterministic.
  std::vector<std::uint64_t> merged;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& shard : impl_->shards) {
      if (shard->size() > merged.size()) merged.resize(shard->size(), 0);
      for (std::size_t i = 0; i < shard->size(); ++i) {
        merged[i] += (*shard)[i];
      }
    }
    // Gauge slots max-merge rather than sum: redo them precisely.
    for (const MetricInfo& info : infos) {
      if (info.kind != Kind::kGauge || info.offset >= merged.size()) continue;
      std::uint64_t mx = 0;
      for (const auto& shard : impl_->shards) {
        if (info.offset < shard->size()) {
          mx = std::max(mx, (*shard)[info.offset]);
        }
      }
      merged[info.offset] = mx;
    }
  }

  MetricsSnapshot snap;
  for (const MetricInfo& info : infos) {
    auto slot_value = [&](std::uint32_t i) -> std::uint64_t {
      const std::uint32_t at = info.offset + i;
      return at < merged.size() ? merged[at] : 0;
    };
    switch (info.kind) {
      case Kind::kCounter: {
        const std::uint64_t v = slot_value(0);
        if (v != 0) snap.counters.emplace_back(info.name, v);
        break;
      }
      case Kind::kGauge: {
        const std::uint64_t v = slot_value(0);
        if (v != 0) snap.gauges.emplace_back(info.name, v);
        break;
      }
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramEntry entry;
        entry.name = info.name;
        entry.upper_bounds = info.bounds;
        entry.counts.resize(info.slot_count);
        for (std::uint32_t i = 0; i < info.slot_count; ++i) {
          entry.counts[i] = slot_value(i);
          entry.total += entry.counts[i];
        }
        if (entry.total != 0) snap.histograms.push_back(std::move(entry));
        break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& shard : impl_->shards) {
    std::fill(shard->begin(), shard->end(), 0);
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry& metrics() {
  if (t_current != nullptr) return *t_current;
  return g_current != nullptr ? *g_current : global_metrics();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : previous_(g_current) {
  g_current = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() { g_current = previous_; }

ScopedThreadMetrics::ScopedThreadMetrics(MetricsRegistry& registry)
    : previous_(t_current) {
  t_current = &registry;
}

ScopedThreadMetrics::~ScopedThreadMetrics() { t_current = previous_; }

Counter::Counter(std::string_view name)
    : id_(InternTable::instance().intern(name, Kind::kCounter, {})) {}

void Counter::add(std::uint64_t delta) const {
  if (delta == 0) return;
  metrics().slots(id_)[0] += delta;
}

Gauge::Gauge(std::string_view name)
    : id_(InternTable::instance().intern(name, Kind::kGauge, {})) {}

void Gauge::record(std::uint64_t value) const {
  std::uint64_t* slot = metrics().slots(id_);
  if (value > *slot) *slot = value;
}

Histogram::Histogram(std::string_view name,
                     std::span<const double> upper_bounds)
    : id_(InternTable::instance().intern(name, Kind::kHistogram,
                                         upper_bounds)) {}

void Histogram::observe(double value) const {
  const MetricInfo& info = InternTable::instance().metrics[id_];
  std::uint32_t bucket = static_cast<std::uint32_t>(info.bounds.size());
  for (std::uint32_t i = 0; i < info.bounds.size(); ++i) {
    if (value <= info.bounds[i]) {
      bucket = i;
      break;
    }
  }
  metrics().slots(id_)[bucket] += 1;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::uint64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

// %.17g round-trips doubles exactly and is locale-independent for the
// values we emit (bounds are plain literals).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json(const std::string& indent) const {
  const std::string pad1 = indent + "  ";
  const std::string pad2 = indent + "    ";
  std::string out = "{\n";
  out += pad1 + "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += pad2 + "\"" + counters[i].first +
           "\": " + std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n" + pad1 + "},\n";
  out += pad1 + "\"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += pad2 + "\"" + gauges[i].first +
           "\": " + std::to_string(gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n" + pad1 + "},\n";
  out += pad1 + "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    out += (i == 0 ? "\n" : ",\n");
    out += pad2 + "\"" + h.name + "\": {\"upper_bounds\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      if (b != 0) out += ", ";
      out += format_double(h.upper_bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "], \"total\": " + std::to_string(h.total) + "}";
  }
  out += histograms.empty() ? "}\n" : "\n" + pad1 + "}\n";
  out += indent + "}";
  return out;
}

support::Expected<bool> write_metrics_json(const std::string& path,
                                           const MetricsSnapshot& snapshot) {
  std::string body = "{\n  \"schema\": \"bc-metrics\",\n  \"version\": 1,\n";
  body += "  \"metrics\": " + snapshot.to_json("  ") + "\n}\n";
  if (!support::write_file_atomic(path, body)) {
    return support::Fault{support::FaultKind::kInvalidInput,
                          "cannot write metrics file: " + path};
  }
  return true;
}

}  // namespace bc::obs
