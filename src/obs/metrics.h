// Deterministic metrics registry: counters, high-water gauges, and
// fixed-bucket histograms.
//
// The registry exists so behavioural regressions — extra search nodes,
// lost pruning, skipped stops — are machine-checkable, which only works if
// a snapshot is *bit-identical at every BC_THREADS*. Three design rules
// buy that determinism:
//
//   1. Every stored quantity is an integer and every merge operator is
//      commutative and associative (counters add, gauges take the max,
//      histogram buckets add). Thread-local shards can then be merged in
//      any order — the registry merges them in shard-registration order —
//      and the result depends only on the multiset of recorded events,
//      which the library's determinism-by-construction contract already
//      pins. Floating-point sums are deliberately excluded: their value
//      depends on merge order, which depends on scheduling.
//   2. Metric *names* are interned into one process-wide table, so a
//      handle (Counter/Gauge/Histogram) is registry-independent and can be
//      cached in a function-local static even when tests swap the current
//      registry underneath it.
//   3. Snapshots emit entries sorted by name with fixed integer
//      formatting, so equal registries serialise to equal bytes.
//
// Hot paths batch: solvers count locally in registers/members and flush
// aggregate deltas once per call, so instrumentation adds a handful of
// shard additions per solver invocation, not per inner-loop iteration.

#ifndef BUNDLECHARGE_OBS_METRICS_H_
#define BUNDLECHARGE_OBS_METRICS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/expected.h"

namespace bc::obs {

class MetricsRegistry;

// Process-wide default registry (never destroyed before exit).
MetricsRegistry& global_metrics();

// The registry instrumentation currently records into. Defaults to
// global_metrics(); ScopedMetricsRegistry overrides it.
MetricsRegistry& metrics();

// Installs `registry` as the current one for the lifetime of the scope.
// Swapping must not race recording (tests swap between runs, CLI tools
// install once at startup) — concurrent recorders could land events on
// either side of the swap.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

// Installs `registry` as the current one *for this thread only*, taking
// precedence over the process-wide ScopedMetricsRegistry. This is the
// concurrency-safe per-request isolation the planning service uses: each
// server worker installs a fresh registry around one request, so two
// requests in flight never share shards — something the process-global
// swap cannot provide (swapping it races concurrent recorders). Callers
// must keep the work thread-confined (support::ScopedInlineExecution);
// pool workers know nothing about this thread's override. Nestable.
class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(MetricsRegistry& registry);
  ~ScopedThreadMetrics();
  ScopedThreadMetrics(const ScopedThreadMetrics&) = delete;
  ScopedThreadMetrics& operator=(const ScopedThreadMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

// Monotonically increasing count. Construction interns the name (mutex +
// hash lookup); add() is lock-free on a thread-local shard — cache handles
// in function-local statics at hot call sites.
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t delta = 1) const;

 private:
  std::uint32_t id_;
};

// High-water mark: record() keeps the maximum value ever seen. Max is
// commutative, so the merged value is thread-count-invariant.
class Gauge {
 public:
  explicit Gauge(std::string_view name);
  void record(std::uint64_t value) const;

 private:
  std::uint32_t id_;
};

// Fixed-bucket histogram over doubles: bucket i counts observations
// <= upper_bounds[i] (first match), with one implicit overflow bucket.
// Bounds are fixed at interning time; re-interning the same name must pass
// identical bounds. Only counts are stored — see the header comment.
class Histogram {
 public:
  Histogram(std::string_view name, std::span<const double> upper_bounds);
  void observe(double value) const;

 private:
  std::uint32_t id_;
};

// Point-in-time merged view of a registry, ready for diffing and
// serialisation. Entries are name-sorted; to_json() is byte-stable for
// equal snapshots.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    std::vector<double> upper_bounds;   // one count per bound...
    std::vector<std::uint64_t> counts;  // ...plus a final overflow count
    std::uint64_t total = 0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<HistogramEntry> histograms;

  // Lookup helpers for tests and reporters; absent names read as 0/null.
  std::uint64_t counter(std::string_view name) const;
  std::uint64_t gauge(std::string_view name) const;
  const HistogramEntry* histogram(std::string_view name) const;

  // The snapshot as one JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {...}} with name-sorted keys. Embeddable (BENCH_*.json
  // v2) or wrappable (write_metrics_json adds the schema version).
  std::string to_json(const std::string& indent = "") const;
};

// Storage for one stream of metrics: a set of thread-local shards over the
// interned metric table. Recording threads register a shard lazily on
// first touch; shards of exited threads are retained so no counts are
// lost when the pool restarts.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Merges all shards (registration order; integer ops make the order
  // irrelevant) into a name-sorted snapshot. Must not race recording —
  // take snapshots between parallel sections, i.e. after parallel_for
  // joined (the join is the happens-before edge that makes shard reads
  // safe).
  MetricsSnapshot snapshot() const;

  // Zeroes every shard. Same non-concurrency contract as snapshot().
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  std::uint64_t* slots(std::uint32_t id);

  struct Impl;
  Impl* impl_;
};

// Writes `{"schema": "bc-metrics", "version": 1, "metrics": {...}}` to
// `path` atomically.
support::Expected<bool> write_metrics_json(const std::string& path,
                                           const MetricsSnapshot& snapshot);

}  // namespace bc::obs

#endif  // BUNDLECHARGE_OBS_METRICS_H_
