#include "bundle/patch_cover.h"

#include <algorithm>
#include <utility>

#include "bundle/exact_cover.h"
#include "bundle/greedy_cover.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/require.h"

namespace bc::bundle {

std::vector<Bundle> cover_subset(const net::Deployment& deployment, double r,
                                 std::span<const net::SensorId> subset,
                                 const SubsetCoverOptions& options,
                                 support::BudgetMeter* meter) {
  support::require(r > 0.0, "cover radius must be positive");
  support::require(std::is_sorted(subset.begin(), subset.end(),
                                  std::less_equal<net::SensorId>()),
                   "subset ids must be strictly ascending");
  if (subset.empty()) return {};

  obs::TraceSpan span("bundle.cover_subset");
  span.attr("subset", static_cast<std::uint64_t>(subset.size())).attr("r", r);

  // Compact sub-view: the hole's sensors become ids 0..m-1, so candidate
  // enumeration and the cover search never see (and can never absorb) a
  // sensor that is still owned by an untouched bundle.
  std::vector<geometry::Point2> positions;
  std::vector<double> demands;
  positions.reserve(subset.size());
  demands.reserve(subset.size());
  for (const net::SensorId id : subset) {
    support::require(id < deployment.size(), "subset id out of range");
    positions.push_back(deployment.sensor(id).position);
    demands.push_back(deployment.sensor(id).demand_j);
  }
  const net::Deployment hole(std::move(positions), deployment.field(),
                             deployment.depot(), std::move(demands));

  // One node-capped meter spans enumeration and search; a caller-supplied
  // meter (the request's budget ladder) takes precedence.
  support::Budget budget;
  budget.node_cap = options.node_budget;
  support::BudgetMeter local_meter(budget);
  if (meter == nullptr) meter = &local_meter;

  // Same pair-circle scan as the full enumeration, over the sub-view; the
  // meter forces the serial path, so cut points are thread-invariant.
  const std::vector<Bundle> candidates =
      enumerate_candidates(hole, r, options.candidates, meter);

  // Budgeted exact-cover/greedy ladder (the replan seed): the branch &
  // bound starts from the greedy incumbent, so a mid-search trip returns
  // the best valid cover so far, and a budget already spent on candidates
  // degrades to the plain greedy cover.
  ExactCoverOptions exact;
  exact.max_nodes = options.node_budget;
  std::vector<Bundle> covered;
  auto solved = exact_cover_anytime(hole, candidates, exact, meter);
  if (solved.has_value()) {
    covered = std::move(solved.value().bundles);
  } else {
    covered = greedy_cover(hole, candidates, nullptr);
  }

  // Back to parent ids (anchors/radii are position-derived and unchanged).
  for (Bundle& bundle : covered) {
    for (net::SensorId& member : bundle.members) {
      member = subset[member];
    }
  }
  std::sort(covered.begin(), covered.end(),
            [](const Bundle& a, const Bundle& b) {
              return a.members < b.members;
            });

  static const obs::Counter calls("bundle.cover_subset.calls");
  static const obs::Counter sensors("bundle.cover_subset.sensors");
  static const obs::Counter bundles("bundle.cover_subset.bundles");
  calls.add();
  sensors.add(subset.size());
  bundles.add(covered.size());
  span.attr("bundles", static_cast<std::uint64_t>(covered.size()));
  return covered;
}

}  // namespace bc::bundle
