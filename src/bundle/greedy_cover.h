// Greedy charging-bundle generation — Algorithm 2 of the paper.
//
// Repeatedly selects the candidate bundle covering the most still-uncovered
// sensors, removes those sensors, and repeats until everything is covered.
// This is greedy set cover and inherits its ln n + 1 approximation ratio
// (Theorem 2). The output is post-processed into a partition: a sensor
// grabbed by an earlier bundle is dropped from later ones and each bundle's
// anchor is recomputed, which can only shrink charging distances.

#ifndef BUNDLECHARGE_BUNDLE_GREEDY_COVER_H_
#define BUNDLECHARGE_BUNDLE_GREEDY_COVER_H_

#include <span>
#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"
#include "support/deadline.h"

namespace bc::bundle {

// Greedy cover over an explicit candidate universe. Ties are broken by the
// smaller SED radius (denser bundle), then lower first member id, making
// the result deterministic. A non-null `meter` is charged one unit per
// candidate scanned; when it trips, the remaining uncovered sensors are
// finished as singleton bundles — a valid (coarser) cover, never a hang.
// Precondition: candidates jointly cover all sensors.
std::vector<Bundle> greedy_cover(const net::Deployment& deployment,
                                 std::span<const Bundle> candidates,
                                 support::BudgetMeter* meter = nullptr);

// Convenience: enumerate candidates of radius r, then run greedy_cover.
// The meter spans both enumeration and covering.
std::vector<Bundle> greedy_bundles(const net::Deployment& deployment,
                                   double r,
                                   support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_GREEDY_COVER_H_
