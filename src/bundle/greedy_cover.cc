#include "bundle/greedy_cover.h"

#include <algorithm>

#include "bundle/candidates.h"
#include "support/require.h"

namespace bc::bundle {

std::vector<Bundle> greedy_cover(const net::Deployment& deployment,
                                 std::span<const Bundle> candidates,
                                 support::BudgetMeter* meter) {
  support::require(covers_all_sensors(deployment, candidates),
                   "candidates must cover every sensor");
  const std::size_t n = deployment.size();
  std::vector<bool> covered(n, false);
  std::size_t remaining = n;

  std::vector<Bundle> selected;
  while (remaining > 0) {
    if (meter != nullptr && !meter->check()) break;
    // Pick the candidate covering the most uncovered sensors.
    const Bundle* best = nullptr;
    std::size_t best_gain = 0;
    for (const Bundle& candidate : candidates) {
      if (meter != nullptr && !meter->charge()) break;
      std::size_t gain = 0;
      for (const net::SensorId id : candidate.members) {
        if (!covered[id]) ++gain;
      }
      if (gain == 0) continue;
      const bool wins =
          best == nullptr || gain > best_gain ||
          (gain == best_gain &&
           (candidate.radius < best->radius ||
            (candidate.radius == best->radius &&
             candidate.members.front() < best->members.front())));
      if (wins) {
        best = &candidate;
        best_gain = gain;
      }
    }
    if (best == nullptr && meter != nullptr && meter->exhausted()) break;
    support::ensure(best != nullptr,
                    "greedy cover ran out of useful candidates");

    // Keep only the newly covered sensors so the output is a partition,
    // then retighten the anchor around the survivors.
    std::vector<net::SensorId> fresh;
    fresh.reserve(best_gain);
    for (const net::SensorId id : best->members) {
      if (!covered[id]) {
        covered[id] = true;
        fresh.push_back(id);
      }
    }
    remaining -= fresh.size();
    selected.push_back(make_bundle(deployment, std::move(fresh)));
  }

  // Budget tripped mid-cover: finish the uncovered tail as singletons.
  // Always radius-feasible, deterministic under a node cap, and the
  // partition invariant every caller relies on still holds.
  if (remaining > 0) {
    for (net::SensorId id = 0; id < n; ++id) {
      if (!covered[id]) {
        selected.push_back(make_bundle(deployment, {id}));
      }
    }
  }
  return selected;
}

std::vector<Bundle> greedy_bundles(const net::Deployment& deployment,
                                   double r, support::BudgetMeter* meter) {
  const std::vector<Bundle> candidates =
      enumerate_candidates(deployment, r, CandidateOptions{}, meter);
  return greedy_cover(deployment, candidates, meter);
}

}  // namespace bc::bundle
