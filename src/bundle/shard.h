// Sharded hierarchical bundle generation for large deployments.
//
// City-scale instances (10^4 - 10^6 sensors) are far beyond what the
// monolithic pair-circle enumeration + greedy cover can touch: both are
// superlinear in n, but bundling is a *local* problem — no bundle spans
// more than 2r, so a sensor's cover decision only ever interacts with its
// O(density * r^2) neighbourhood. The hierarchical solver exploits that:
//
//   1. Tile the field into a uniform grid of spatial shards sized for a
//      target sensor count per shard (never smaller than a few r, so tiles
//      dwarf the 2r interaction range). The tiling is a pure function of
//      the field box, n, r, and the options — never of thread count.
//   2. Solve each shard independently with the monolithic pipeline
//      (candidate enumeration + greedy cover) over the shard's sensors,
//      fanned out over the deterministic pool with grain 1 and merged in
//      tile index order, so the result is bit-identical at every
//      BC_THREADS.
//   3. Stitch: per-tile solves cannot form bundles spanning a tile
//      boundary, so adjacent shards overlap in a 2r-wide stitch band.
//      Bundles anchored inside the band are merged across the border
//      whenever their union still fits a radius-r disk — serially, in
//      canonical (ascending minimum member id) order, which makes the
//      stitch independent of shard solve order too.
//
// A candidate-generation halo would be redundant rather than helpful:
// every maximal r-disk subset of a tile's sensors is witnessed by a
// pair-circle through two of the *tile's own* sensors (or a singleton), so
// enumerating with out-of-tile neighbours adds only sets that trimming
// would discard again. Cross-border bundles are exactly what the stitch
// recovers.

#ifndef BUNDLECHARGE_BUNDLE_SHARD_H_
#define BUNDLECHARGE_BUNDLE_SHARD_H_

#include <cstddef>
#include <vector>

#include "bundle/bundle.h"
#include "geometry/point.h"
#include "net/deployment.h"
#include "support/deadline.h"

namespace bc::bundle {

struct ShardOptions {
  // Aim for roughly this many sensors per shard. Smaller shards cut the
  // superlinear per-shard solve cost but lengthen the stitched border;
  // the default keeps per-shard solves in the milliseconds at the paper's
  // densities.
  std::size_t target_shard_sensors = 512;
  // Tiles are never narrower than this multiple of r, so the 2r stitch
  // band cannot swallow whole tiles.
  double min_tile_factor = 4.0;
  // Merge cross-border bundles whose union fits a radius-r disk. Off only
  // for ablation; the per-tile cover remains a valid partition without it.
  bool stitch = true;
};

// The deterministic tiling: a cols x rows grid over the field with every
// sensor assigned to exactly one tile (row-major tile ids).
struct ShardGrid {
  geometry::Box2 field;
  double tile_w = 0.0;
  double tile_h = 0.0;
  std::size_t cols = 1;
  std::size_t rows = 1;
  // Tile-major, ascending sensor ids within each tile.
  std::vector<std::vector<net::SensorId>> tile_members;

  std::size_t tiles() const { return cols * rows; }
  // Distance from `p` to the nearest *interior* grid line (infinity when
  // the grid is a single tile) — the border test for the stitch band.
  double border_distance(geometry::Point2 p) const;
};

// Builds the tiling for `deployment` at generation radius `r`. Pure
// function of (field, n, r, options); never depends on thread count.
// Preconditions: r > 0.
ShardGrid build_shard_grid(const net::Deployment& deployment, double r,
                           const ShardOptions& options = ShardOptions{});

// Merges bundles anchored within the grid's 2r stitch band whenever the
// merged member set still fits a radius-r disk. Serial and canonical:
// bundles are processed in ascending minimum-member-id order, each
// surviving bundle greedily absorbing later feasible partners within 2r.
// Input must be a partition of the deployment; the output is again a
// partition, ordered by ascending minimum member id.
std::vector<Bundle> stitch_bundles(const net::Deployment& deployment,
                                   double r, const ShardGrid& grid,
                                   std::vector<Bundle> bundles);

// The hierarchical generator: tile, solve each shard with the greedy
// monolithic pipeline, stitch. Returns a partition of the deployment
// ordered by ascending minimum member id, bit-identical at every
// BC_THREADS. A single-tile grid degenerates to exactly
// greedy_bundles(deployment, r) (the monolithic oracle the shard property
// tests compare against). A non-null metered `meter` switches the shard
// loop to the serial path (like the candidate scan) so budget cut points
// stay thread-count-invariant; a trip degrades the remaining shards to
// coarser covers, never to an invalid plan.
// Preconditions: r > 0.
std::vector<Bundle> sharded_bundles(const net::Deployment& deployment,
                                    double r,
                                    const ShardOptions& options =
                                        ShardOptions{},
                                    support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_SHARD_H_
