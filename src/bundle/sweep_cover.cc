#include "bundle/sweep_cover.h"

#include <vector>

#include "geometry/minidisk.h"
#include "support/require.h"

namespace bc::bundle {

std::vector<Bundle> sweep_bundles(const net::Deployment& deployment,
                                  double r,
                                  const tsp::SolverOptions& tsp_options,
                                  support::BudgetMeter* meter) {
  support::require(r >= 0.0, "sweep radius must be non-negative");
  const tsp::Tour order =
      tsp::solve_tsp(deployment.positions(), tsp_options, meter);

  std::vector<Bundle> bundles;
  std::vector<net::SensorId> chain;
  std::vector<geometry::Point2> chain_points;
  const auto flush = [&]() {
    if (chain.empty()) return;
    bundles.push_back(make_bundle(deployment, chain));
    chain.clear();
    chain_points.clear();
  };

  for (const std::uint32_t index : order) {
    const auto id = static_cast<net::SensorId>(index);
    chain_points.push_back(deployment.sensor(id).position);
    if (!geometry::fits_in_radius(chain_points, r)) {
      chain_points.pop_back();
      flush();
      chain_points.push_back(deployment.sensor(id).position);
    }
    chain.push_back(id);
  }
  flush();
  support::ensure(is_partition(deployment, bundles),
                  "sweep cover must partition the sensors");
  return bundles;
}

}  // namespace bc::bundle
