// Sweep (tour-order) bundle generation.
//
// An alternative generator surfaced by this reproduction's ablations:
// Algorithm 2's greedy set cover maximises per-step cardinality, which
// fragments chain-like sensor arrangements (the classic failure mode
// behind its ln n bound). Partitioning instead along a TSP tour —
// greedily extending a chain while the group still fits a radius-r disk —
// respects spatial locality and, at mid radii on uniform fields, often
// needs *fewer* bundles than greedy while being far cheaper to compute
// (no candidate enumeration at all). It is exposed as
// GeneratorKind::kSweep and measured in the Fig. 11 bench.

#ifndef BUNDLECHARGE_BUNDLE_SWEEP_COVER_H_
#define BUNDLECHARGE_BUNDLE_SWEEP_COVER_H_

#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"
#include "tsp/solver.h"

namespace bc::bundle {

// Orders sensors along a TSP tour, then greedily chains tour-consecutive
// sensors into bundles while the chain's smallest enclosing disk stays
// within radius r. A non-null `meter` bounds the TSP ordering stage (the
// only superlinear step); the chaining pass always completes, so the
// result is a partition regardless of the budget. Preconditions: r >= 0.
std::vector<Bundle> sweep_bundles(const net::Deployment& deployment,
                                  double r,
                                  const tsp::SolverOptions& tsp_options =
                                      tsp::SolverOptions{},
                                  support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_SWEEP_COVER_H_
