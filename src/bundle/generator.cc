#include "bundle/generator.h"

#include "bundle/greedy_cover.h"
#include "bundle/grid_cover.h"
#include "bundle/sweep_cover.h"
#include "support/require.h"

namespace bc::bundle {

std::string_view to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kGrid:
      return "grid";
    case GeneratorKind::kGreedy:
      return "greedy";
    case GeneratorKind::kExact:
      return "exact";
    case GeneratorKind::kSweep:
      return "sweep";
  }
  return "unknown";
}

std::vector<Bundle> generate_bundles(const net::Deployment& deployment,
                                     double r,
                                     const GeneratorOptions& options) {
  support::require(r > 0.0, "bundle generation radius must be positive");
  switch (options.kind) {
    case GeneratorKind::kGrid:
      return grid_bundles(deployment, r);
    case GeneratorKind::kGreedy:
      return greedy_bundles(deployment, r);
    case GeneratorKind::kExact: {
      auto exact = optimal_bundles(deployment, r, options.exact);
      if (exact.has_value()) return std::move(*exact);
      return greedy_bundles(deployment, r);
    }
    case GeneratorKind::kSweep:
      return sweep_bundles(deployment, r);
  }
  support::ensure(false, "unreachable generator kind");
  return {};
}

}  // namespace bc::bundle
