#include "bundle/generator.h"

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "bundle/grid_cover.h"
#include "bundle/sweep_cover.h"
#include "support/require.h"

namespace bc::bundle {

std::string_view to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kGrid:
      return "grid";
    case GeneratorKind::kGreedy:
      return "greedy";
    case GeneratorKind::kExact:
      return "exact";
    case GeneratorKind::kSweep:
      return "sweep";
  }
  return "unknown";
}

std::vector<Bundle> generate_bundles(const net::Deployment& deployment,
                                     double r,
                                     const GeneratorOptions& options,
                                     support::BudgetMeter* meter) {
  support::require(r > 0.0, "bundle generation radius must be positive");
  switch (options.kind) {
    case GeneratorKind::kGrid:
      return grid_bundles(deployment, r, meter);
    case GeneratorKind::kGreedy:
      return greedy_bundles(deployment, r, meter);
    case GeneratorKind::kExact: {
      const std::vector<Bundle> candidates =
          enumerate_candidates(deployment, r, CandidateOptions{}, meter);
      auto exact =
          exact_cover_anytime(deployment, candidates, options.exact, meter);
      if (exact.has_value()) return std::move(exact.value().bundles);
      // Budget already exhausted on entry: the cheap greedy cover (with
      // singleton completion) still yields a feasible partition.
      return greedy_cover(deployment, candidates, meter);
    }
    case GeneratorKind::kSweep:
      return sweep_bundles(deployment, r, tsp::SolverOptions{}, meter);
  }
  support::ensure(false, "unreachable generator kind");
  return {};
}

}  // namespace bc::bundle
