// Exact minimum charging-bundle cover — the paper's "optimal" baseline in
// Fig. 11, obtained there "through the exhaustive search".
//
// Minimum set cover over the candidate universe, solved by depth-first
// branch & bound: branch on the lowest-indexed uncovered sensor (one of
// the candidates containing it must be chosen), bound with
// ceil(remaining / largest_candidate) and prune against the greedy
// incumbent. Exponential in the worst case; intended for the small
// instances the paper uses it on.
//
// The search is *anytime*: it always starts from the greedy cover as the
// incumbent, so when a budget (node cap, wall-clock deadline, external
// cancellation) trips mid-search, the best cover found so far is a valid
// — possibly suboptimal — answer, returned with `optimal == false`.

#ifndef BUNDLECHARGE_BUNDLE_EXACT_COVER_H_
#define BUNDLECHARGE_BUNDLE_EXACT_COVER_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"
#include "support/deadline.h"
#include "support/expected.h"

namespace bc::bundle {

struct ExactCoverOptions {
  // Per-call node cap: give up after this many branch-and-bound nodes
  // (0 = unlimited). Kept distinct from `budget.node_cap`, which may be a
  // *shared* allowance spanning several solver calls (the replan ladder);
  // whichever trips first wins.
  std::size_t max_nodes = 20'000'000;
  // Deadline / shared node cap / cancellation. Any non-unlimited budget
  // forces the serial search path so that node-cap cutoffs stay
  // bit-identical across thread counts.
  support::Budget budget{};
};

// A cover solution with its provenance. `bundles` is always a valid
// partition covering every sensor.
struct CoverSolution {
  std::vector<Bundle> bundles;
  // True when the branch & bound ran to completion (bundles is a
  // minimum-cardinality cover); false when a budget tripped and `bundles`
  // is the best incumbent at that point.
  bool optimal = true;
  std::size_t nodes_expanded = 0;
  support::BudgetTrip trip = support::BudgetTrip::kNone;
};

// Anytime exact cover. When `meter` is non-null it is charged one unit per
// search node and shared with the caller (ladder budgets); otherwise a
// local meter is built from `options.budget`. The fault channel
// (kBudgetExhausted) fires only when the meter is already exhausted on
// entry — once the search starts, a tripped budget returns the incumbent
// with `optimal == false` instead.
// Precondition: candidates jointly cover all sensors.
support::Expected<CoverSolution> exact_cover_anytime(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options = ExactCoverOptions{},
    support::BudgetMeter* meter = nullptr);

// Legacy strict form: the minimum cover, or nullopt iff any budget
// tripped (the replan ladder keys its backoff off this).
std::optional<std::vector<Bundle>> exact_cover(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options = ExactCoverOptions{});

// Convenience: enumerate candidates of radius r, then solve exactly.
std::optional<std::vector<Bundle>> optimal_bundles(
    const net::Deployment& deployment, double r,
    const ExactCoverOptions& options = ExactCoverOptions{});

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_EXACT_COVER_H_
