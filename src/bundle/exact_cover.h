// Exact minimum charging-bundle cover — the paper's "optimal" baseline in
// Fig. 11, obtained there "through the exhaustive search".
//
// Minimum set cover over the candidate universe, solved by depth-first
// branch & bound: branch on the lowest-indexed uncovered sensor (one of
// the candidates containing it must be chosen), bound with
// ceil(remaining / largest_candidate) and prune against the greedy
// incumbent. Exponential in the worst case; intended for the small
// instances the paper uses it on.

#ifndef BUNDLECHARGE_BUNDLE_EXACT_COVER_H_
#define BUNDLECHARGE_BUNDLE_EXACT_COVER_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"

namespace bc::bundle {

struct ExactCoverOptions {
  // Abort knob: give up after this many branch-and-bound nodes and return
  // nullopt (0 = unlimited). Keeps benches bounded on unlucky instances.
  std::size_t max_nodes = 20'000'000;
};

// Minimum-cardinality subset of `candidates` covering all sensors, as a
// partition with retightened anchors (same post-processing as greedy).
// Returns nullopt iff the node budget was exhausted.
// Precondition: candidates jointly cover all sensors.
std::optional<std::vector<Bundle>> exact_cover(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options = ExactCoverOptions{});

// Convenience: enumerate candidates of radius r, then solve exactly.
std::optional<std::vector<Bundle>> optimal_bundles(
    const net::Deployment& deployment, double r,
    const ExactCoverOptions& options = ExactCoverOptions{});

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_EXACT_COVER_H_
