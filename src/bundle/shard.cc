#include "bundle/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "bundle/greedy_cover.h"
#include "geometry/minidisk.h"
#include "net/spatial_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/parallel.h"
#include "support/require.h"

namespace bc::bundle {

using geometry::Point2;

namespace {

// Distance from `v` to the nearest interior grid line of a `count`-cell
// axis with cell size `cell` (coordinates relative to the field edge).
double axis_border_distance(double v, double cell, std::size_t count) {
  if (count < 2 || cell <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Interior lines sit at k * cell for k = 1 .. count-1.
  double k = std::round(v / cell);
  k = std::clamp(k, 1.0, static_cast<double>(count) - 1.0);
  return std::abs(v - k * cell);
}

// Solves one tile with the monolithic pipeline and maps the result back to
// global sensor ids. The sub-deployment uses the very same coordinates, so
// the bundles' anchors and radii transfer unchanged; only member ids need
// remapping (ascending local -> ascending global, since the tile member
// list is ascending).
std::vector<Bundle> solve_tile(const net::Deployment& deployment, double r,
                               const std::vector<net::SensorId>& ids,
                               support::BudgetMeter* meter) {
  if (ids.empty()) return {};
  std::vector<Point2> positions;
  std::vector<double> demands;
  positions.reserve(ids.size());
  demands.reserve(ids.size());
  for (const net::SensorId id : ids) {
    positions.push_back(deployment.positions()[id]);
    demands.push_back(deployment.sensor(id).demand_j);
  }
  const geometry::Box2 box = geometry::bounding_box(positions);
  const net::Deployment sub(std::move(positions), box, deployment.depot(),
                            std::move(demands));
  std::vector<Bundle> bundles = greedy_bundles(sub, r, meter);
  for (Bundle& b : bundles) {
    for (net::SensorId& member : b.members) member = ids[member];
  }
  return bundles;
}

void sort_by_front_member(std::vector<Bundle>& bundles) {
  std::sort(bundles.begin(), bundles.end(),
            [](const Bundle& a, const Bundle& b) {
              return a.members.front() < b.members.front();
            });
}

}  // namespace

double ShardGrid::border_distance(Point2 p) const {
  return std::min(axis_border_distance(p.x - field.lo.x, tile_w, cols),
                  axis_border_distance(p.y - field.lo.y, tile_h, rows));
}

ShardGrid build_shard_grid(const net::Deployment& deployment, double r,
                           const ShardOptions& options) {
  support::require(r > 0.0, "shard grid needs a positive radius");
  const std::size_t n = deployment.size();
  ShardGrid grid;
  grid.field = deployment.field();

  // Target tile side from the field's average density, floored at a few r
  // so the 2r stitch band stays a band, not the whole tile.
  const double width = grid.field.width();
  const double height = grid.field.height();
  const double area = width * height;
  const std::size_t target = std::max<std::size_t>(options.target_shard_sensors,
                                                   1);
  double side = std::numeric_limits<double>::infinity();
  if (area > 0.0 && n > 0) {
    side = std::sqrt(area * static_cast<double>(target) /
                     static_cast<double>(n));
  }
  side = std::max(side, options.min_tile_factor * r);

  const auto axis_tiles = [&](double extent) {
    if (!(extent > 0.0) || !(side > 0.0) ||
        side == std::numeric_limits<double>::infinity()) {
      return std::size_t{1};
    }
    return std::max<std::size_t>(static_cast<std::size_t>(extent / side), 1);
  };
  grid.cols = axis_tiles(width);
  grid.rows = axis_tiles(height);
  grid.tile_w = grid.cols > 0 ? width / static_cast<double>(grid.cols) : 0.0;
  grid.tile_h = grid.rows > 0 ? height / static_cast<double>(grid.rows) : 0.0;

  grid.tile_members.assign(grid.tiles(), {});
  const auto axis_cell = [](double v, double cell, std::size_t count) {
    if (count < 2 || cell <= 0.0) return std::size_t{0};
    const double g = std::floor(v / cell);
    return static_cast<std::size_t>(
        std::clamp(g, 0.0, static_cast<double>(count) - 1.0));
  };
  const auto positions = deployment.positions();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gx =
        axis_cell(positions[i].x - grid.field.lo.x, grid.tile_w, grid.cols);
    const std::size_t gy =
        axis_cell(positions[i].y - grid.field.lo.y, grid.tile_h, grid.rows);
    grid.tile_members[gy * grid.cols + gx].push_back(
        static_cast<net::SensorId>(i));
  }
  return grid;
}

std::vector<Bundle> stitch_bundles(const net::Deployment& deployment,
                                   double r, const ShardGrid& grid,
                                   std::vector<Bundle> bundles) {
  sort_by_front_member(bundles);
  if (grid.tiles() < 2 || bundles.size() < 2) return bundles;

  // Slightly padded band / pair radius so a borderline-exact merge cannot
  // be lost to rounding in the anchor arithmetic; the minidisk test is the
  // actual gate.
  const double band = 2.0 * r + 1e-6 * (r + 1.0);

  // Bundles anchored in the stitch band, in canonical (ascending front
  // member) order; border_ids[k] is the k-th such bundle's index into
  // `bundles`, so the anchor index below speaks ascending canonical order.
  std::vector<std::uint32_t> border_ids;
  std::vector<Point2> border_anchors;
  for (std::size_t b = 0; b < bundles.size(); ++b) {
    if (grid.border_distance(bundles[b].anchor) <= band) {
      border_ids.push_back(static_cast<std::uint32_t>(b));
      border_anchors.push_back(bundles[b].anchor);
    }
  }
  std::uint64_t merges = 0;
  if (border_anchors.size() >= 2) {
    const net::SpatialIndex anchor_index(border_anchors, std::max(band, 1e-9));
    std::vector<char> dead(bundles.size(), 0);
    std::vector<net::SensorId> near;
    std::vector<net::SensorId> merged_members;
    std::vector<Point2> merged_points;
    const auto positions = deployment.positions();
    for (std::size_t k = 0; k < border_ids.size(); ++k) {
      const std::uint32_t i = border_ids[k];
      if (dead[i] != 0) continue;
      // Any partner of a feasible merge lies inside the same radius-r disk
      // as this anchor, hence within 2r of it.
      anchor_index.within(bundles[i].anchor, band, near);
      bool grew = false;
      for (const net::SensorId nk : near) {
        if (nk <= k) continue;  // canonical order: only absorb forward
        const std::uint32_t j = border_ids[nk];
        if (dead[j] != 0) continue;
        merged_members.clear();
        std::set_union(bundles[i].members.begin(), bundles[i].members.end(),
                       bundles[j].members.begin(), bundles[j].members.end(),
                       std::back_inserter(merged_members));
        merged_points.clear();
        for (const net::SensorId id : merged_members) {
          merged_points.push_back(positions[id]);
        }
        if (!geometry::fits_in_radius(merged_points, r)) continue;
        bundles[i].members = merged_members;
        dead[j] = 1;
        grew = true;
        ++merges;
      }
      if (grew) {
        // Retighten the anchor once per absorbing bundle. The query list
        // is not refreshed for the moved anchor — the stitch is a single
        // canonical greedy pass, not a fixpoint iteration.
        bundles[i] = make_bundle(deployment, std::move(bundles[i].members));
      }
    }
    std::vector<Bundle> alive;
    alive.reserve(bundles.size());
    for (std::size_t b = 0; b < bundles.size(); ++b) {
      if (dead[b] == 0) alive.push_back(std::move(bundles[b]));
    }
    bundles = std::move(alive);
  }
  {
    static const obs::Counter stitch_merges("shard.stitch_merges");
    static const obs::Counter border("shard.border_bundles");
    stitch_merges.add(merges);
    border.add(border_ids.size());
  }
  return bundles;
}

std::vector<Bundle> sharded_bundles(const net::Deployment& deployment,
                                    double r, const ShardOptions& options,
                                    support::BudgetMeter* meter) {
  support::require(r > 0.0, "sharded bundles need a positive radius");
  const ShardGrid grid = build_shard_grid(deployment, r, options);

  obs::TraceSpan span("shard.solve");
  span.attr("n", static_cast<std::uint64_t>(deployment.size()))
      .attr("r", r)
      .attr("cols", static_cast<std::uint64_t>(grid.cols))
      .attr("rows", static_cast<std::uint64_t>(grid.rows));

  std::size_t max_tile = 0;
  for (const auto& members : grid.tile_members) {
    max_tile = std::max(max_tile, members.size());
  }
  {
    static const obs::Counter calls("shard.calls");
    static const obs::Counter tiles("shard.tiles_solved");
    static const obs::Gauge tile_hw("shard.max_tile_sensors");
    calls.add();
    tiles.add(grid.tiles());
    tile_hw.record(max_tile);
  }

  if (grid.tiles() == 1) {
    // Degenerate grid: exactly the monolithic pipeline (the oracle the
    // shard property tests rely on), including its output order.
    std::vector<Bundle> bundles = greedy_bundles(deployment, r, meter);
    span.attr("bundles", static_cast<std::uint64_t>(bundles.size()));
    return bundles;
  }

  std::vector<Bundle> all;
  if (meter != nullptr) {
    // Metered path stays serial so budget cut points are a function of the
    // charge sequence alone, not of thread scheduling. A mid-solve trip
    // degrades later tiles to singleton covers (greedy_bundles' fallback).
    for (const auto& members : grid.tile_members) {
      std::vector<Bundle> tile = solve_tile(deployment, r, members, meter);
      all.insert(all.end(), std::move_iterator(tile.begin()),
                 std::move_iterator(tile.end()));
    }
  } else {
    auto per_tile = support::parallel_map<std::vector<Bundle>>(
        grid.tiles(), /*grain=*/1, [&](std::size_t t) {
          return solve_tile(deployment, r, grid.tile_members[t], nullptr);
        });
    for (auto& tile : per_tile) {
      all.insert(all.end(), std::move_iterator(tile.begin()),
                 std::move_iterator(tile.end()));
    }
  }

  if (options.stitch) {
    all = stitch_bundles(deployment, r, grid, std::move(all));
  } else {
    sort_by_front_member(all);
  }
  span.attr("bundles", static_cast<std::uint64_t>(all.size()));
  return all;
}

}  // namespace bc::bundle
