// Grid-based charging-bundle generation — the baseline of He et al. [8]
// used in Fig. 11.
//
// The field is partitioned into square cells whose circumradius equals the
// generation radius r (cell side r * sqrt(2)); every non-empty cell forms
// one bundle. Anchors are recomputed as the members' SED centre, matching
// how the planner charges any bundle.

#ifndef BUNDLECHARGE_BUNDLE_GRID_COVER_H_
#define BUNDLECHARGE_BUNDLE_GRID_COVER_H_

#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"

namespace bc::bundle {

// Precondition: r > 0.
std::vector<Bundle> grid_bundles(const net::Deployment& deployment, double r);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_GRID_COVER_H_
