// Grid-based charging-bundle generation — the baseline of He et al. [8]
// used in Fig. 11.
//
// The field is partitioned into square cells whose circumradius equals the
// generation radius r (cell side r * sqrt(2)); every non-empty cell forms
// one bundle. Anchors are recomputed as the members' SED centre, matching
// how the planner charges any bundle.

#ifndef BUNDLECHARGE_BUNDLE_GRID_COVER_H_
#define BUNDLECHARGE_BUNDLE_GRID_COVER_H_

#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"
#include "support/deadline.h"

namespace bc::bundle {

// Precondition: r > 0. Binning is a single linear pass that cannot hang,
// so a non-null `meter` is charged one unit per sensor for ladder
// accounting but never aborts the cover.
std::vector<Bundle> grid_bundles(const net::Deployment& deployment, double r,
                                 support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_GRID_COVER_H_
