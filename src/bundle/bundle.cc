#include "bundle/bundle.h"

#include <algorithm>

#include "geometry/minidisk.h"
#include "support/require.h"

namespace bc::bundle {

Bundle make_bundle(const net::Deployment& deployment,
                   std::vector<net::SensorId> members) {
  support::require(!members.empty(), "a bundle needs at least one member");
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  std::vector<geometry::Point2> pts;
  pts.reserve(members.size());
  for (const net::SensorId id : members) {
    pts.push_back(deployment.sensor(id).position);
  }
  const geometry::Circle sed = geometry::smallest_enclosing_disk(pts);
  return Bundle{sed.center, sed.radius, std::move(members)};
}

bool covers_all_sensors(const net::Deployment& deployment,
                        std::span<const Bundle> bundles) {
  std::vector<bool> covered(deployment.size(), false);
  for (const Bundle& b : bundles) {
    for (const net::SensorId id : b.members) {
      if (id >= deployment.size()) return false;
      covered[id] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

bool is_partition(const net::Deployment& deployment,
                  std::span<const Bundle> bundles) {
  std::vector<int> count(deployment.size(), 0);
  for (const Bundle& b : bundles) {
    for (const net::SensorId id : b.members) {
      if (id >= deployment.size()) return false;
      ++count[id];
    }
  }
  return std::all_of(count.begin(), count.end(),
                     [](int c) { return c == 1; });
}

double max_charging_distance(const net::Deployment& deployment,
                             std::span<const Bundle> bundles) {
  double worst = 0.0;
  for (const Bundle& b : bundles) {
    for (const net::SensorId id : b.members) {
      worst = std::max(
          worst, geometry::distance(b.anchor, deployment.sensor(id).position));
    }
  }
  return worst;
}

}  // namespace bc::bundle
