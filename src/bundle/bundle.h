// Charging bundle data model (Definitions 1-3 of the paper).
//
// A bundle is a set of sensors charged simultaneously from one anchor
// point; the anchor is the centre of the members' smallest enclosing disk,
// and the bundle radius is that disk's radius (always <= the configured
// generation radius r).

#ifndef BUNDLECHARGE_BUNDLE_BUNDLE_H_
#define BUNDLECHARGE_BUNDLE_BUNDLE_H_

#include <span>
#include <vector>

#include "geometry/point.h"
#include "net/deployment.h"
#include "net/sensor.h"

namespace bc::bundle {

struct Bundle {
  geometry::Point2 anchor;          // SED centre (Definition 2)
  double radius = 0.0;              // SED radius (Definition 3)
  std::vector<net::SensorId> members;  // ascending sensor ids
};

// Recomputes anchor/radius from the members' positions (SED). Precondition:
// members non-empty and valid for `deployment`.
Bundle make_bundle(const net::Deployment& deployment,
                   std::vector<net::SensorId> members);

// True iff `bundles` jointly cover every sensor of the deployment exactly
// once is NOT required — coverage means every sensor appears in at least
// one bundle (the OBG constraint of Eq. 2).
bool covers_all_sensors(const net::Deployment& deployment,
                        std::span<const Bundle> bundles);

// True iff every sensor appears in exactly one bundle (the generators in
// this library produce partitions, which planners rely on for charging-time
// accounting).
bool is_partition(const net::Deployment& deployment,
                  std::span<const Bundle> bundles);

// Largest member-to-anchor distance over all bundles (0 for none).
double max_charging_distance(const net::Deployment& deployment,
                             std::span<const Bundle> bundles);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_BUNDLE_H_
