// Bundle-generation facade: one entry point over the three generators the
// paper compares in Fig. 11 (grid, greedy, optimal).

#ifndef BUNDLECHARGE_BUNDLE_GENERATOR_H_
#define BUNDLECHARGE_BUNDLE_GENERATOR_H_

#include <string_view>
#include <vector>

#include "bundle/bundle.h"
#include "bundle/exact_cover.h"
#include "net/deployment.h"

namespace bc::bundle {

enum class GeneratorKind {
  kGrid,    // He et al. [8] grid baseline
  kGreedy,  // Algorithm 2 (ln n + 1 approximation)
  kExact,   // exhaustive-search optimum (branch & bound)
  kSweep,   // TSP-order chain partition (this repo's extension; see
            // bundle/sweep_cover.h for the motivation)
};

std::string_view to_string(GeneratorKind kind);

struct GeneratorOptions {
  GeneratorKind kind = GeneratorKind::kGreedy;
  ExactCoverOptions exact;  // only consulted for kExact
};

// Generates a bundle partition of the deployment with generation radius r.
// For kExact the branch & bound is anytime: when a budget trips mid-search
// the best incumbent found so far is returned (a valid, possibly
// suboptimal cover); only a budget already exhausted on entry falls back
// to the greedy cover (the paper only runs the optimum on small instances;
// this keeps large sweeps total). A non-null `meter` threads a shared
// ladder budget through every generator kind.
// Preconditions: r > 0.
std::vector<Bundle> generate_bundles(const net::Deployment& deployment,
                                     double r,
                                     const GeneratorOptions& options =
                                         GeneratorOptions{},
                                     support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_GENERATOR_H_
