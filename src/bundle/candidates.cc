#include "bundle/candidates.h"

#include <algorithm>
#include <set>

#include "geometry/circle.h"
#include "net/spatial_index.h"
#include "support/require.h"

namespace bc::bundle {

using geometry::Point2;

std::vector<Bundle> enumerate_candidates(const net::Deployment& deployment,
                                         double r,
                                         const CandidateOptions& options) {
  support::require(r >= 0.0, "candidate radius must be non-negative");
  const auto positions = deployment.positions();
  const std::size_t n = deployment.size();

  // Collect distinct member sets; std::set gives deduplication for free.
  std::set<std::vector<net::SensorId>> member_sets;

  // Singletons guarantee feasibility of the cover.
  for (net::SensorId id = 0; id < n; ++id) {
    member_sets.insert({id});
  }

  if (r > 0.0 && n > 1) {
    const net::SpatialIndex index(positions, std::max(r, 1e-9));
    std::vector<net::SensorId> near_i;
    std::vector<net::SensorId> members;
    for (net::SensorId i = 0; i < n; ++i) {
      // Partners within 2r of i; j > i avoids enumerating each pair twice.
      index.within(positions[i], 2.0 * r, near_i);
      for (const net::SensorId j : near_i) {
        if (j <= i) continue;
        const auto centers =
            geometry::circles_through_pair(positions[i], positions[j], r);
        if (!centers.has_value()) continue;
        for (const Point2 center : {centers->first, centers->second}) {
          // Relative slack: the defining pair sits exactly on the circle
          // boundary and must not be lost to rounding in the construction
          // of `center`.
          index.within(center, r * (1.0 + 1e-9) + 1e-12, members);
          if (members.size() < 2) continue;
          member_sets.insert(members);
          if (options.max_candidates != 0 &&
              member_sets.size() >= options.max_candidates) {
            goto enumeration_done;
          }
        }
      }
    }
  }
enumeration_done:

  std::vector<std::vector<net::SensorId>> sets(member_sets.begin(),
                                               member_sets.end());

  if (options.prune_dominated) {
    // A set is dominated if some other set strictly contains it. Sort by
    // descending size, then test inclusion against kept supersets. The
    // sets are small (bounded by local density), so the bitset-free check
    // is fine at the paper's scales.
    std::sort(sets.begin(), sets.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    std::vector<std::vector<net::SensorId>> kept;
    for (auto& candidate : sets) {
      const bool dominated = std::any_of(
          kept.begin(), kept.end(), [&](const auto& super) {
            return super.size() > candidate.size() &&
                   std::includes(super.begin(), super.end(),
                                 candidate.begin(), candidate.end());
          });
      if (!dominated) kept.push_back(std::move(candidate));
    }
    sets = std::move(kept);
  }

  std::vector<Bundle> candidates;
  candidates.reserve(sets.size());
  for (auto& members : sets) {
    Bundle b = make_bundle(deployment, std::move(members));
    // Numerical safety: the SED of an r-disk subset can exceed r only by
    // rounding; clamp is unnecessary, but assert the invariant.
    support::ensure(b.radius <= r * (1.0 + 1e-6) + 1e-9,
                    "candidate bundle exceeds the generation radius");
    candidates.push_back(std::move(b));
  }
  return candidates;
}

}  // namespace bc::bundle
