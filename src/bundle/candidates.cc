#include "bundle/candidates.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>

#include "geometry/circle.h"
#include "net/spatial_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/parallel.h"
#include "support/require.h"
#include "support/simd.h"

namespace bc::bundle {

using geometry::Point2;

namespace {

// SplitMix64-style hash over a canonical (ascending-id) member vector.
// Keys the dedup hash set; the canonical order itself is restored by one
// final sort, so insertion order never leaks into the result.
struct MemberSetHash {
  std::size_t operator()(const std::vector<net::SensorId>& members) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ members.size();
    for (const net::SensorId id : members) {
      std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + id;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

using MemberSetTable =
    std::unordered_set<std::vector<net::SensorId>, MemberSetHash>;

// Pair-circle enumeration seeded at sensors [begin, end): for each seed i,
// the two radius-r circles through every pair (i, j > i) within 2r, with
// the sensors inside each circle collected and handed to `emit` (member
// sets of size >= 2, ascending ids; the buffer is reused across calls).
// `emit` returns false to stop the scan early (candidate cap); a non-null
// meter is charged one unit per seed pair and also stops the scan when it
// trips. Returns true iff the scan ran to completion.
//
// This one body serves both the serial metered path and the parallel
// chunked path — it is a pure function of the geometry and the scan
// interval, so chunks can run on any thread (with a null meter).
template <typename Emit>
bool enumerate_seeded_at(std::span<const Point2> positions,
                         const net::SpatialIndex& index, double r,
                         std::size_t begin, std::size_t end,
                         support::BudgetMeter* meter, Emit&& emit) {
  // Relative slack: the defining pair sits exactly on the circle boundary
  // and must not be lost to rounding in the construction of `center`.
  const double member_r = r * (1.0 + 1e-9) + 1e-12;
  const double member_r2 = member_r * member_r;
  const double pair_r2 = 4.0 * r * r;
  // Every member of an r-circle through i lies within dist(i, center) +
  // member_r <= 2r + slack of i, so one padded 2r query per seed serves as
  // the candidate pool for every circle seeded there — the inner loops
  // then filter by exact distance instead of re-querying the grid.
  const double pool_r = 2.0 * r + 1e-6 * (r + 1.0);
  std::vector<net::SensorId> near_i;
  std::vector<net::SensorId> members;
  // SoA shadow of the pool: the per-circle membership scan is a streaming
  // distance filter (support::simd) instead of an id-indirected gather,
  // and it runs twice per in-range pair.
  std::vector<double> pool_xs;
  std::vector<double> pool_ys;
  for (std::size_t i = begin; i < end; ++i) {
    index.within(positions[i], pool_r, near_i);
    pool_xs.resize(near_i.size());
    pool_ys.resize(near_i.size());
    for (std::size_t t = 0; t < near_i.size(); ++t) {
      pool_xs[t] = positions[near_i[t]].x;
      pool_ys[t] = positions[near_i[t]].y;
    }
    for (const net::SensorId j : near_i) {
      if (j <= i) continue;
      // The padded pool can hold partners just beyond 2r; skip them before
      // the meter charge so budget cut points match the unpadded scan.
      if (geometry::distance_squared(positions[i], positions[j]) > pair_r2) {
        continue;
      }
      if (meter != nullptr && !meter->charge()) return false;
      const auto centers =
          geometry::circles_through_pair(positions[i], positions[j], r);
      if (!centers.has_value()) continue;
      for (const Point2 center : {centers->first, centers->second}) {
        members.clear();
        // near_i is id-sorted and filter_within appends in scan order, so
        // members comes out id-sorted too.
        support::simd::filter_within(pool_xs.data(), pool_ys.data(),
                                     near_i.data(), near_i.size(), center.x,
                                     center.y, member_r2, members);
        if (members.size() < 2) continue;
        if (!emit(members)) return false;
      }
    }
  }
  return true;
}

// Removes every set strictly contained in another, in place. Size-bucketed
// bitset subset tests replace the old O(m^2) std::includes scan: sets are
// processed largest-first, every kept set is registered in an inverted
// sensor -> kept-set index with its members packed into a bitset, and a
// candidate only tests the strictly larger kept sets containing its first
// member — each test is then a handful of word-indexed bit probes.
//
// Precondition: `sets` is deduplicated and lexicographically sorted.
// Postcondition: survivors ordered by (size desc, lexicographic asc).
void prune_dominated_sets(std::vector<std::vector<net::SensorId>>& sets,
                          std::size_t n) {
  const std::size_t words = (n + 63) / 64;
  // Stable size-desc sort of the lex-sorted input pins the output order.
  std::stable_sort(sets.begin(), sets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });

  std::vector<std::uint64_t> kept_bits;          // kept-major packed bitsets
  std::vector<std::uint32_t> kept_size;          // member count per kept set
  std::vector<std::vector<std::uint32_t>> by_member(n);  // sensor -> kept ids
  std::vector<std::vector<net::SensorId>> kept;

  for (auto& candidate : sets) {
    bool dominated = false;
    // Only a strictly larger kept set containing the first member can
    // dominate; by_member keeps that probe list short. Checking kept sets
    // alone is complete: had a dominating set itself been dominated, its
    // dominator (kept, by induction) also contains this candidate.
    for (const std::uint32_t k : by_member[candidate.front()]) {
      if (kept_size[k] <= candidate.size()) continue;
      const std::uint64_t* super = kept_bits.data() + k * words;
      bool subset = true;
      for (const net::SensorId id : candidate) {
        if (((super[id >> 6] >> (id & 63)) & 1u) == 0) {
          subset = false;
          break;
        }
      }
      if (subset) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    const auto kept_id = static_cast<std::uint32_t>(kept.size());
    kept_bits.resize(kept_bits.size() + words, 0);
    std::uint64_t* bits = kept_bits.data() + kept_id * words;
    for (const net::SensorId id : candidate) {
      bits[id >> 6] |= std::uint64_t{1} << (id & 63);
      by_member[id].push_back(kept_id);
    }
    kept_size.push_back(static_cast<std::uint32_t>(candidate.size()));
    kept.push_back(std::move(candidate));
  }
  sets = std::move(kept);
}

}  // namespace

std::vector<Bundle> enumerate_candidates(const net::Deployment& deployment,
                                         double r,
                                         const CandidateOptions& options,
                                         support::BudgetMeter* meter) {
  support::require(r >= 0.0, "candidate radius must be non-negative");
  const auto positions = deployment.positions();
  const std::size_t n = deployment.size();

  obs::TraceSpan span("candidates.enumerate");
  span.attr("n", static_cast<std::int64_t>(n)).attr("r", r);
  // Emitted pair-circle sets, counted across both scan paths; dedup hits
  // are recovered afterwards from the table growth.
  std::uint64_t sets_emitted = 0;

  // Collect distinct member sets. The hash set only deduplicates; the
  // canonical candidate order every later stage sees is produced by one
  // lexicographic sort below, so it is independent of insertion order —
  // and therefore of how many threads enumerated.
  // Reserve well past the expected distinct-set count (dense fields emit
  // ~10 sets per sensor); incremental rehashing of a growing table showed
  // up as >20% of enumeration time in profiles.
  MemberSetTable member_sets;
  member_sets.reserve(64 + 16 * n);

  // Singletons guarantee feasibility of the cover.
  for (net::SensorId id = 0; id < n; ++id) {
    member_sets.insert({id});
  }

  if (r > 0.0 && n > 1) {
    const net::SpatialIndex index(positions, std::max(r, 1e-9));
    if (options.max_candidates != 0 || meter != nullptr) {
      // The candidate cap and the budget are early-exits whose cut points
      // depend on visit order, so honour them with the serial scan.
      enumerate_seeded_at(
          positions, index, r, 0, n, meter,
          [&](const std::vector<net::SensorId>& members) {
            ++sets_emitted;
            member_sets.insert(members);
            return options.max_candidates == 0 ||
                   member_sets.size() < options.max_candidates;
          });
    } else {
      // Uncapped path: the O(n^2)-pairs scan dominates bundle generation,
      // so fan the seed sensors out over the pool. The grain is fixed (not
      // derived from the thread count) and each chunk returns its own
      // partial list; the order-blind dedup + final sort make the merged
      // result identical at every thread count.
      constexpr std::size_t kGrain = 8;
      const std::size_t num_chunks = (n + kGrain - 1) / kGrain;
      auto partials =
          support::parallel_map<std::vector<std::vector<net::SensorId>>>(
              num_chunks, 1, [&](std::size_t chunk) {
                const std::size_t begin = chunk * kGrain;
                const std::size_t end = std::min(n, begin + kGrain);
                std::vector<std::vector<net::SensorId>> found;
                enumerate_seeded_at(
                    positions, index, r, begin, end, nullptr,
                    [&](std::vector<net::SensorId>& members) {
                      found.push_back(members);
                      return true;
                    });
                return found;
              });
      std::size_t total = member_sets.size();
      for (const auto& partial : partials) total += partial.size();
      sets_emitted = total - member_sets.size();
      member_sets.reserve(total);  // merge without a single rehash
      for (auto& partial : partials) {
        for (auto& members : partial) {
          member_sets.insert(std::move(members));
        }
      }
    }
  }

  // Emitted sets all have size >= 2, so distinct non-singleton sets =
  // table size - n singletons; the rest of the emissions were dedup hits.
  const std::uint64_t distinct_pairsets = member_sets.size() - n;
  const std::uint64_t dedup_hits = sets_emitted - distinct_pairsets;

  std::vector<std::vector<net::SensorId>> sets;
  sets.reserve(member_sets.size());
  while (!member_sets.empty()) {
    sets.push_back(std::move(member_sets.extract(member_sets.begin()).value()));
  }
  // Canonical lexicographic order (what iterating the old std::set gave).
  std::sort(sets.begin(), sets.end());

  const std::uint64_t before_prune = sets.size();
  if (options.prune_dominated) {
    prune_dominated_sets(sets, n);
  }
  const std::uint64_t dominated_pruned = before_prune - sets.size();

  {
    static const obs::Counter calls("candidates.calls");
    static const obs::Counter emitted("candidates.sets_emitted");
    static const obs::Counter dedup("candidates.dedup_hits");
    static const obs::Counter dominated("candidates.dominated_pruned");
    static const obs::Counter enumerated("candidates.enumerated");
    calls.add();
    emitted.add(sets_emitted);
    dedup.add(dedup_hits);
    dominated.add(dominated_pruned);
    enumerated.add(sets.size());
  }
  span.attr("sets_emitted", sets_emitted)
      .attr("dedup_hits", dedup_hits)
      .attr("dominated_pruned", dominated_pruned)
      .attr("candidates", static_cast<std::uint64_t>(sets.size()));

  std::vector<Bundle> candidates;
  candidates.reserve(sets.size());
  for (auto& members : sets) {
    Bundle b = make_bundle(deployment, std::move(members));
    // Numerical safety: the SED of an r-disk subset can exceed r only by
    // rounding; clamp is unnecessary, but assert the invariant.
    support::ensure(b.radius <= r * (1.0 + 1e-6) + 1e-9,
                    "candidate bundle exceeds the generation radius");
    candidates.push_back(std::move(b));
  }
  return candidates;
}

}  // namespace bc::bundle
