#include "bundle/candidates.h"

#include <algorithm>
#include <set>
#include <span>

#include "geometry/circle.h"
#include "net/spatial_index.h"
#include "support/parallel.h"
#include "support/require.h"

namespace bc::bundle {

using geometry::Point2;

namespace {

// Pair-circle enumeration seeded at sensors [begin, end): for each i, the
// two radius-r circles through every pair (i, j > i) within 2r, collecting
// the sensors inside each circle. Pure function of the geometry, so chunks
// can run on any thread.
std::vector<std::vector<net::SensorId>> enumerate_seeded_at(
    std::span<const Point2> positions, const net::SpatialIndex& index,
    double r, std::size_t begin, std::size_t end) {
  std::vector<std::vector<net::SensorId>> found;
  std::vector<net::SensorId> near_i;
  std::vector<net::SensorId> members;
  for (std::size_t i = begin; i < end; ++i) {
    // Partners within 2r of i; j > i avoids enumerating each pair twice.
    index.within(positions[i], 2.0 * r, near_i);
    for (const net::SensorId j : near_i) {
      if (j <= i) continue;
      const auto centers =
          geometry::circles_through_pair(positions[i], positions[j], r);
      if (!centers.has_value()) continue;
      for (const Point2 center : {centers->first, centers->second}) {
        // Relative slack: the defining pair sits exactly on the circle
        // boundary and must not be lost to rounding in the construction
        // of `center`.
        index.within(center, r * (1.0 + 1e-9) + 1e-12, members);
        if (members.size() < 2) continue;
        found.push_back(members);
      }
    }
  }
  return found;
}

}  // namespace

std::vector<Bundle> enumerate_candidates(const net::Deployment& deployment,
                                         double r,
                                         const CandidateOptions& options,
                                         support::BudgetMeter* meter) {
  support::require(r >= 0.0, "candidate radius must be non-negative");
  const auto positions = deployment.positions();
  const std::size_t n = deployment.size();

  // Collect distinct member sets; std::set gives deduplication for free,
  // and its lexicographic iteration order is the canonical candidate order
  // every later stage sees. Parallel chunks below merge through this set,
  // so the canonical order — and every downstream cover and tour — is
  // independent of how many threads enumerated.
  std::set<std::vector<net::SensorId>> member_sets;

  // Singletons guarantee feasibility of the cover.
  for (net::SensorId id = 0; id < n; ++id) {
    member_sets.insert({id});
  }

  if (r > 0.0 && n > 1) {
    const net::SpatialIndex index(positions, std::max(r, 1e-9));
    if (options.max_candidates != 0 || meter != nullptr) {
      // The candidate cap and the budget are early-exits whose cut points
      // depend on visit order, so honour them with the serial scan.
      std::vector<net::SensorId> near_i;
      std::vector<net::SensorId> members;
      for (net::SensorId i = 0; i < n; ++i) {
        index.within(positions[i], 2.0 * r, near_i);
        for (const net::SensorId j : near_i) {
          if (j <= i) continue;
          if (meter != nullptr && !meter->charge()) goto enumeration_done;
          const auto centers =
              geometry::circles_through_pair(positions[i], positions[j], r);
          if (!centers.has_value()) continue;
          for (const Point2 center : {centers->first, centers->second}) {
            index.within(center, r * (1.0 + 1e-9) + 1e-12, members);
            if (members.size() < 2) continue;
            member_sets.insert(members);
            if (options.max_candidates != 0 &&
                member_sets.size() >= options.max_candidates) {
              goto enumeration_done;
            }
          }
        }
      }
    } else {
      // Uncapped path: the O(n^2)-pairs scan dominates bundle generation,
      // so fan the seed sensors out over the pool. The grain is fixed (not
      // derived from the thread count) and each chunk returns its own
      // partial list; the set merge above makes the union order-blind.
      constexpr std::size_t kGrain = 8;
      const std::size_t num_chunks = (n + kGrain - 1) / kGrain;
      auto partials =
          support::parallel_map<std::vector<std::vector<net::SensorId>>>(
              num_chunks, 1, [&](std::size_t chunk) {
                const std::size_t begin = chunk * kGrain;
                const std::size_t end = std::min(n, begin + kGrain);
                return enumerate_seeded_at(positions, index, r, begin, end);
              });
      for (auto& partial : partials) {
        for (auto& members : partial) {
          member_sets.insert(std::move(members));
        }
      }
    }
  }
enumeration_done:

  std::vector<std::vector<net::SensorId>> sets(member_sets.begin(),
                                               member_sets.end());

  if (options.prune_dominated) {
    // A set is dominated if some other set strictly contains it. Sort by
    // descending size, then test inclusion against kept supersets. The
    // sets are small (bounded by local density), so the bitset-free check
    // is fine at the paper's scales.
    std::sort(sets.begin(), sets.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    std::vector<std::vector<net::SensorId>> kept;
    for (auto& candidate : sets) {
      const bool dominated = std::any_of(
          kept.begin(), kept.end(), [&](const auto& super) {
            return super.size() > candidate.size() &&
                   std::includes(super.begin(), super.end(),
                                 candidate.begin(), candidate.end());
          });
      if (!dominated) kept.push_back(std::move(candidate));
    }
    sets = std::move(kept);
  }

  std::vector<Bundle> candidates;
  candidates.reserve(sets.size());
  for (auto& members : sets) {
    Bundle b = make_bundle(deployment, std::move(members));
    // Numerical safety: the SED of an r-disk subset can exceed r only by
    // rounding; clamp is unnecessary, but assert the invariant.
    support::ensure(b.radius <= r * (1.0 + 1e-6) + 1e-9,
                    "candidate bundle exceeds the generation radius");
    candidates.push_back(std::move(b));
  }
  return candidates;
}

}  // namespace bc::bundle
