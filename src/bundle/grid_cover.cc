#include "bundle/grid_cover.h"

#include <cmath>
#include <map>
#include <numbers>
#include <utility>

#include "support/require.h"

namespace bc::bundle {

std::vector<Bundle> grid_bundles(const net::Deployment& deployment, double r,
                                 support::BudgetMeter* meter) {
  support::require(r > 0.0, "grid bundle radius must be positive");
  if (meter != nullptr) meter->charge(deployment.size());
  const double cell = r * std::numbers::sqrt2;
  const geometry::Box2& field = deployment.field();

  std::map<std::pair<long, long>, std::vector<net::SensorId>> cells;
  for (const net::Sensor& s : deployment.sensors()) {
    const auto gx = static_cast<long>((s.position.x - field.lo.x) / cell);
    const auto gy = static_cast<long>((s.position.y - field.lo.y) / cell);
    cells[{gx, gy}].push_back(s.id);
  }

  std::vector<Bundle> bundles;
  bundles.reserve(cells.size());
  for (auto& [key, members] : cells) {
    bundles.push_back(make_bundle(deployment, std::move(members)));
  }
  return bundles;
}

}  // namespace bc::bundle
