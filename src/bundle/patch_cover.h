// Localized re-covering for incremental replanning.
//
// When a deployment changes by a handful of sensors, the incremental
// engine (service/incremental.h) invalidates only the bundles whose
// neighbourhood intersects the diff and re-covers the resulting "hole" —
// the invalidated bundles' surviving members plus the newly added sensors
// — in isolation. cover_subset is that re-cover: candidate enumeration
// restricted to the hole (the same pair-circle scan as
// enumerate_candidates, run over a compact sub-view), then the budgeted
// exact-cover/greedy ladder the online replanner uses — a node-capped
// branch & bound whose anytime incumbent (seeded by the greedy cover)
// degrades to plain greedy when the budget is spent before the search
// starts. Everything is deterministic: the budget is a node cap, never a
// wall clock, so the returned partition is bit-identical across runs and
// thread counts.

#ifndef BUNDLECHARGE_BUNDLE_PATCH_COVER_H_
#define BUNDLECHARGE_BUNDLE_PATCH_COVER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "bundle/bundle.h"
#include "bundle/candidates.h"
#include "net/deployment.h"
#include "support/deadline.h"

namespace bc::bundle {

struct SubsetCoverOptions {
  // Branch-and-bound node budget for the exact stage, shared with the
  // candidate enumeration (charged per seed pair). A deterministic node
  // cap — not a deadline — so patched plans stay reproducible.
  std::size_t node_budget = 100'000;
  CandidateOptions candidates{};
};

// Partition cover of `subset` with generation radius r: every subset
// sensor appears in exactly one returned bundle, members are ids into
// `deployment`, anchors/radii are tight SEDs, and the bundles are in
// canonical (ascending member) order. Sensors outside `subset` are
// untouched — no returned bundle ever contains one.
// Preconditions: r > 0, subset ids valid and strictly ascending.
// An empty subset yields an empty cover.
std::vector<Bundle> cover_subset(const net::Deployment& deployment, double r,
                                 std::span<const net::SensorId> subset,
                                 const SubsetCoverOptions& options = {},
                                 support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_PATCH_COVER_H_
