// Candidate charging-bundle enumeration.
//
// Algorithm 2 of the paper needs "all potential charging bundle
// candidates" around every node, which is exponential if taken literally.
// We exploit a standard geometric fact: every maximal set of points
// coverable by a disk of radius r admits a covering disk with either two
// points on its boundary or a single point at its centre. Enumerating, for
// each sensor pair closer than 2r, the two radius-r circles through the
// pair — and collecting the sensors inside each — therefore yields every
// maximal candidate bundle. Greedy set cover over this universe is exactly
// the paper's greedy with its ln n + 1 guarantee.

#ifndef BUNDLECHARGE_BUNDLE_CANDIDATES_H_
#define BUNDLECHARGE_BUNDLE_CANDIDATES_H_

#include <vector>

#include "bundle/bundle.h"
#include "net/deployment.h"
#include "support/deadline.h"

namespace bc::bundle {

struct CandidateOptions {
  // Drop candidates whose member set is a subset of another candidate
  // (they can never be preferred by greedy or exact cover). Deduplication
  // of identical sets is always performed.
  bool prune_dominated = true;
  // Safety valve for adversarial inputs: stop after this many distinct
  // candidates (0 = unlimited). The paper's instances stay far below it.
  std::size_t max_candidates = 0;
};

// All maximal candidate bundles of generation radius `r` (each bundle's
// SED radius is <= r by construction; `make_bundle` recomputes the tight
// anchor). Singletons are always included, so a cover always exists.
// A non-null `meter` is charged one unit per seed pair examined; when it
// trips, enumeration stops early — the singleton floor keeps the result a
// valid (if coarse) candidate universe. A metered call scans serially so
// node-cap cut points are thread-count-invariant.
// Preconditions: r >= 0.
std::vector<Bundle> enumerate_candidates(
    const net::Deployment& deployment, double r,
    const CandidateOptions& options = CandidateOptions{},
    support::BudgetMeter* meter = nullptr);

}  // namespace bc::bundle

#endif  // BUNDLECHARGE_BUNDLE_CANDIDATES_H_
