#include "bundle/exact_cover.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "support/parallel.h"
#include "support/require.h"

namespace bc::bundle {

namespace {

// Fixed-width-word dynamic bitset tailored to the cover search.
class BitSet {
 public:
  explicit BitSet(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }
  std::size_t count() const {
    std::size_t total = 0;
    for (const auto w : words_) total += std::popcount(w);
    return total;
  }
  bool none() const {
    return std::all_of(words_.begin(), words_.end(),
                       [](std::uint64_t w) { return w == 0; });
  }
  // Index of the lowest set bit; precondition: !none().
  std::size_t first() const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0) {
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
      }
    }
    support::ensure(false, "BitSet::first on empty set");
    return 0;
  }
  std::size_t intersect_count(const BitSet& other) const {
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      total += std::popcount(words_[w] & other.words_[w]);
    }
    return total;
  }
  void subtract(const BitSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
  }
  bool intersects(const BitSet& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

 private:
  void trim() {
    const std::size_t extra = words_.size() * 64 - bits_;
    if (extra > 0 && !words_.empty()) {
      words_.back() &= (~std::uint64_t{0}) >> extra;
    }
  }

  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

struct SearchState {
  const std::vector<BitSet>* masks = nullptr;
  std::size_t max_candidate_size = 1;
  std::size_t node_budget = 0;  // per-call cap (0 = unlimited)
  std::size_t nodes = 0;
  bool aborted = false;
  // Shared meter charged one unit per node; null = unmetered. Node-cap
  // trips are a function of the serial expansion count alone, so they are
  // bit-identical at every thread count.
  support::BudgetMeter* meter = nullptr;
  std::vector<std::uint32_t> chosen;
  std::vector<std::uint32_t> best;
  std::size_t best_size = 0;  // incumbent bound (strictly improve on it)
};

void search(SearchState& state, BitSet uncovered) {
  if (state.aborted) return;
  ++state.nodes;
  if (state.node_budget != 0 && state.nodes > state.node_budget) {
    state.aborted = true;
    return;
  }
  if (state.meter != nullptr && !state.meter->charge()) {
    state.aborted = true;
    return;
  }
  if (uncovered.none()) {
    if (state.chosen.size() < state.best_size) {
      state.best = state.chosen;
      state.best_size = state.chosen.size();
    }
    return;
  }
  // Lower bound: even perfect candidates need this many more sets.
  const std::size_t remaining = uncovered.count();
  const std::size_t lower =
      (remaining + state.max_candidate_size - 1) / state.max_candidate_size;
  if (state.chosen.size() + lower >= state.best_size) return;

  // Branch on the lowest uncovered sensor: some chosen set must contain it.
  const std::size_t pivot = uncovered.first();
  std::vector<std::pair<std::size_t, std::uint32_t>> branches;
  for (std::uint32_t c = 0; c < state.masks->size(); ++c) {
    const BitSet& mask = (*state.masks)[c];
    if (!mask.test(pivot)) continue;
    branches.emplace_back(mask.intersect_count(uncovered), c);
  }
  // Try high-coverage candidates first for early tight incumbents.
  std::sort(branches.begin(), branches.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [gain, c] : branches) {
    BitSet next = uncovered;
    next.subtract((*state.masks)[c]);
    state.chosen.push_back(c);
    search(state, std::move(next));
    state.chosen.pop_back();
    if (state.aborted) return;
  }
}

// Materialise chosen candidates as a partition (first bundle keeps shared
// sensors), mirroring greedy's post-processing.
std::vector<Bundle> materialise(const net::Deployment& deployment,
                                std::span<const Bundle> candidates,
                                const std::vector<std::uint32_t>& chosen) {
  std::vector<bool> taken(deployment.size(), false);
  std::vector<Bundle> result;
  result.reserve(chosen.size());
  for (const std::uint32_t c : chosen) {
    std::vector<net::SensorId> members;
    for (const net::SensorId id : candidates[c].members) {
      if (!taken[id]) {
        taken[id] = true;
        members.push_back(id);
      }
    }
    support::ensure(!members.empty(),
                    "exact cover selected a redundant candidate");
    result.push_back(make_bundle(deployment, std::move(members)));
  }
  return result;
}

}  // namespace

support::Expected<CoverSolution> exact_cover_anytime(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options, support::BudgetMeter* meter) {
  support::require(covers_all_sensors(deployment, candidates),
                   "candidates must cover every sensor");
  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;
  if (meter->exhausted() || !meter->check()) {
    return support::Fault{support::FaultKind::kBudgetExhausted,
                          "exact cover: " + support::describe_trip(*meter)};
  }

  const std::size_t n = deployment.size();
  std::vector<BitSet> masks;
  masks.reserve(candidates.size());
  std::size_t max_size = 1;
  for (const Bundle& b : candidates) {
    BitSet mask(n);
    for (const net::SensorId id : b.members) mask.set(id);
    max_size = std::max(max_size, b.members.size());
    masks.push_back(std::move(mask));
  }

  // Greedy incumbent provides the initial upper bound — and the anytime
  // answer if the budget trips before the search finds anything better.
  const std::vector<Bundle> incumbent = greedy_cover(deployment, candidates);

  SearchState state;
  state.masks = &masks;
  state.max_candidate_size = max_size;
  state.node_budget = options.max_nodes;
  state.meter = metered ? meter : nullptr;
  state.best_size = incumbent.size() + 1;  // allow matching the greedy size

  BitSet uncovered(n);
  uncovered.set_all();
  if (options.max_nodes == 0 && !metered) {
    // Unlimited budget: fan the root branches out over the pool. Each
    // branch subtree is searched independently with the greedy bound, and
    // the per-branch winners are merged serially in branch order with the
    // same strict-improvement rule the serial DFS applies. Because the
    // bound-pruning can only skip subtrees that contain no strictly
    // better solution, every branch returns the same minimal cover the
    // serial search would have recorded in it, and the ordered merge
    // reproduces the serial result bit for bit. (A shared node counter
    // would make abortion order scheduling-dependent, which is why every
    // budgeted path stays serial.)
    const std::size_t lower = (n + max_size - 1) / max_size;
    if (lower < state.best_size) {
      const std::size_t pivot = uncovered.first();
      std::vector<std::pair<std::size_t, std::uint32_t>> branches;
      for (std::uint32_t c = 0; c < masks.size(); ++c) {
        if (!masks[c].test(pivot)) continue;
        branches.emplace_back(masks[c].intersect_count(uncovered), c);
      }
      std::sort(branches.begin(), branches.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });

      struct BranchResult {
        std::vector<std::uint32_t> best;  // empty = nothing under the bound
        std::size_t nodes = 0;
      };
      const auto results = support::parallel_map<BranchResult>(
          branches.size(), /*grain=*/1, [&](std::size_t b) {
            SearchState branch_state;
            branch_state.masks = &masks;
            branch_state.max_candidate_size = max_size;
            branch_state.best_size = incumbent.size() + 1;
            branch_state.chosen.push_back(branches[b].second);
            BitSet next = uncovered;
            next.subtract(masks[branches[b].second]);
            search(branch_state, std::move(next));
            return BranchResult{std::move(branch_state.best),
                                branch_state.nodes};
          });
      for (const BranchResult& result : results) {
        state.nodes += result.nodes;
        if (!result.best.empty() && result.best.size() < state.best_size) {
          state.best = result.best;
          state.best_size = result.best.size();
        }
      }
    }
  } else {
    search(state, std::move(uncovered));
  }

  CoverSolution solution;
  solution.optimal = !state.aborted;
  solution.nodes_expanded = state.nodes;
  solution.trip = meter->trip();
  if (state.aborted && solution.trip == support::BudgetTrip::kNone) {
    solution.trip = support::BudgetTrip::kNodeCap;  // per-call max_nodes
  }
  solution.bundles = state.best.empty()
                         ? incumbent
                         : materialise(deployment, candidates, state.best);
  return solution;
}

std::optional<std::vector<Bundle>> exact_cover(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options) {
  auto solution = exact_cover_anytime(deployment, candidates, options);
  if (!solution || !solution.value().optimal) return std::nullopt;
  return std::move(solution.value().bundles);
}

std::optional<std::vector<Bundle>> optimal_bundles(
    const net::Deployment& deployment, double r,
    const ExactCoverOptions& options) {
  const std::vector<Bundle> candidates = enumerate_candidates(deployment, r);
  return exact_cover(deployment, candidates, options);
}

}  // namespace bc::bundle
