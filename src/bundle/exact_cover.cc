#include "bundle/exact_cover.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/parallel.h"
#include "support/require.h"
#include "support/simd.h"

namespace bc::bundle {

namespace {

// The branch & bound keeps every bitset it touches in preallocated flat
// storage — candidate masks in one candidate-major array, the per-depth
// uncovered sets in a depth-major pool — so "a bitset" below is a span of
// `words` 64-bit words and the inner loops never allocate.

// Index of the lowest set bit; precondition: some bit is set.
inline std::size_t first_set_bit(const std::uint64_t* w, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    if (w[i] != 0) {
      return (i << 6) + static_cast<std::size_t>(std::countr_zero(w[i]));
    }
  }
  support::ensure(false, "first_set_bit on an empty set");
  return 0;
}

// Word-level set kernels live behind the runtime ISA dispatch in
// support/simd.h; every ISA returns exact integer counts, so the search is
// bit-identical under BC_SIMD=scalar|avx2|neon.
using support::simd::intersect_count;
using support::simd::subtract_and_count;

// Candidate masks plus the inverted pivot -> candidate index: for each
// sensor, the ascending-id list of candidates containing it (CSR layout).
// Branch enumeration walks exactly the candidates containing the pivot
// instead of scanning every mask for the pivot bit.
struct CandidateIndex {
  std::size_t words = 0;
  std::size_t max_candidate_size = 1;
  std::vector<std::uint64_t> masks;      // candidate-major, m * words
  std::vector<std::uint32_t> inv_start;  // n + 1 offsets into inv_items
  std::vector<std::uint32_t> inv_items;  // candidate ids, ascending per row

  const std::uint64_t* mask(std::uint32_t c) const {
    return masks.data() + std::size_t{c} * words;
  }
};

CandidateIndex build_index(std::size_t n, std::span<const Bundle> candidates) {
  CandidateIndex index;
  index.words = (n + 63) / 64;
  index.masks.assign(candidates.size() * index.words, 0);
  index.inv_start.assign(n + 2, 0);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const Bundle& b = candidates[c];
    index.max_candidate_size =
        std::max(index.max_candidate_size, b.members.size());
    std::uint64_t* mask = index.masks.data() + c * index.words;
    for (const net::SensorId id : b.members) {
      mask[id >> 6] |= std::uint64_t{1} << (id & 63);
      ++index.inv_start[id + 1];
    }
  }
  for (std::size_t s = 1; s + 1 < index.inv_start.size(); ++s) {
    index.inv_start[s + 1] += index.inv_start[s];
  }
  index.inv_items.resize(index.inv_start[n]);
  std::vector<std::uint32_t> cursor(index.inv_start.begin(),
                                    index.inv_start.begin() +
                                        static_cast<std::ptrdiff_t>(n));
  for (std::uint32_t c = 0; c < candidates.size(); ++c) {
    for (const net::SensorId id : candidates[c].members) {
      index.inv_items[cursor[id]++] = c;
    }
  }
  index.inv_start.pop_back();  // back to the usual n + 1 CSR offsets
  return index;
}

// Depth-first branch & bound with all per-node scratch preallocated: one
// uncovered bitset per depth in `pool` and one branch vector per depth in
// `scratch`, both reused across the whole DFS. Branch order is pinned to
// (covered count desc, candidate id asc) so results are reproducible by
// any reimplementation (the perf-diff reference suite relies on this).
struct Searcher {
  const CandidateIndex* index = nullptr;
  std::size_t node_budget = 0;  // per-call cap (0 = unlimited)
  // Shared meter charged one unit per node; null = unmetered. Node-cap
  // trips are a function of the serial expansion count alone, so they are
  // bit-identical at every thread count.
  support::BudgetMeter* meter = nullptr;
  std::size_t nodes = 0;
  std::size_t incumbent_updates = 0;
  std::size_t max_depth = 0;
  bool aborted = false;
  // chosen[0..depth) is the current partial cover — a flat buffer indexed
  // by depth (sized by reserve), not a push/pop stack.
  std::vector<std::uint32_t> chosen;
  std::vector<std::uint32_t> best;
  std::size_t best_size = 0;  // incumbent bound (strictly improve on it)

  // A branch packs (covered count, candidate id) into one word ordered so
  // that a plain descending sort yields count desc, id asc — the pinned
  // branch order.
  static std::uint64_t pack_branch(std::size_t count, std::uint32_t id) {
    return (static_cast<std::uint64_t>(count) << 32) |
           static_cast<std::uint32_t>(~id);
  }
  static std::uint32_t branch_id(std::uint64_t packed) {
    return ~static_cast<std::uint32_t>(packed);
  }

  std::vector<std::uint64_t> pool;                  // depth-major uncovered
  std::vector<std::vector<std::uint64_t>> scratch;  // per-depth branch lists

  // Sizes the arena for searches up to `depth_cap` levels deep. The prune
  // `chosen.size() + lower >= best_size` keeps every visited depth below
  // best_size, so the initial incumbent size + 1 is always enough.
  void reserve(std::size_t depth_cap) {
    pool.assign((depth_cap + 1) * index->words, 0);
    scratch.resize(depth_cap + 1);
    chosen.assign(depth_cap + 1, 0);
  }

  std::uint64_t* slot(std::size_t depth) {
    return pool.data() + depth * index->words;
  }

  // Searches the subtree whose uncovered set sits in slot(depth) and has
  // `remaining` bits set; chosen[0..depth) is the partial cover so far.
  // `from` is a word hint: slot(depth) is zero below word `from` (and only
  // guaranteed *initialised* from `from` on), because the pivot is always
  // the lowest uncovered bit, so a child can never regain a bit below the
  // parent's pivot word. Every word loop starts there.
  void search(std::size_t depth, std::size_t remaining, std::size_t from) {
    ++nodes;
    if (node_budget != 0 && nodes > node_budget) {
      aborted = true;
      return;
    }
    if (meter != nullptr && !meter->charge()) {
      aborted = true;
      return;
    }
    if (depth > max_depth) max_depth = depth;
    if (remaining == 0) {
      if (depth < best_size) {
        best.assign(chosen.begin(),
                    chosen.begin() + static_cast<std::ptrdiff_t>(depth));
        best_size = depth;
        ++incumbent_updates;
      }
      return;
    }
    // Lower bound: even perfect candidates need ceil(remaining / max_size)
    // more sets; prune unless that still strictly beats the incumbent.
    // (Division-free form of depth + ceil(remaining / max) >= best_size.)
    if (best_size <= depth + 1) return;
    if (remaining > (best_size - depth - 1) * index->max_candidate_size) {
      return;
    }

    // Branch on the lowest uncovered sensor: some chosen set must contain
    // it. The inverted index yields exactly those sets.
    const std::uint64_t* uncovered = slot(depth);
    const std::size_t tail = index->words - from;
    const std::size_t pivot =
        (from << 6) + first_set_bit(uncovered + from, tail);
    std::vector<std::uint64_t>& branches = scratch[depth];
    branches.clear();
    for (std::uint32_t k = index->inv_start[pivot];
         k < index->inv_start[pivot + 1]; ++k) {
      const std::uint32_t c = index->inv_items[k];
      branches.push_back(pack_branch(
          intersect_count(uncovered + from, index->mask(c) + from, tail), c));
    }
    // Try high-coverage candidates first for early tight incumbents; ties
    // go to the lower candidate id. Branch lists are tiny (one inverted
    // row), so an insertion sort beats std::sort's dispatch overhead.
    for (std::size_t i = 1; i < branches.size(); ++i) {
      const std::uint64_t key = branches[i];
      std::size_t j = i;
      for (; j > 0 && branches[j - 1] < key; --j) branches[j] = branches[j - 1];
      branches[j] = key;
    }
    const std::size_t child_from = pivot >> 6;
    const std::size_t child_tail = index->words - child_from;
    for (const std::uint64_t packed : branches) {
      const std::uint32_t id = branch_id(packed);
      const std::size_t cleared = subtract_and_count(
          slot(depth + 1) + child_from, uncovered + child_from,
          index->mask(id) + child_from, child_tail);
      chosen[depth] = id;
      search(depth + 1, remaining - cleared, child_from);
      if (aborted) return;
    }
  }
};

// Materialise chosen candidates as a partition (first bundle keeps shared
// sensors), mirroring greedy's post-processing.
std::vector<Bundle> materialise(const net::Deployment& deployment,
                                std::span<const Bundle> candidates,
                                const std::vector<std::uint32_t>& chosen) {
  std::vector<bool> taken(deployment.size(), false);
  std::vector<Bundle> result;
  result.reserve(chosen.size());
  for (const std::uint32_t c : chosen) {
    std::vector<net::SensorId> members;
    for (const net::SensorId id : candidates[c].members) {
      if (!taken[id]) {
        taken[id] = true;
        members.push_back(id);
      }
    }
    support::ensure(!members.empty(),
                    "exact cover selected a redundant candidate");
    result.push_back(make_bundle(deployment, std::move(members)));
  }
  return result;
}

void set_all(std::uint64_t* w, std::size_t bits) {
  const std::size_t words = (bits + 63) / 64;
  for (std::size_t i = 0; i < words; ++i) w[i] = ~std::uint64_t{0};
  const std::size_t extra = words * 64 - bits;
  if (extra > 0 && words > 0) w[words - 1] &= (~std::uint64_t{0}) >> extra;
}

}  // namespace

support::Expected<CoverSolution> exact_cover_anytime(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options, support::BudgetMeter* meter) {
  support::require(covers_all_sensors(deployment, candidates),
                   "candidates must cover every sensor");
  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;
  if (meter->exhausted() || !meter->check()) {
    return support::Fault{support::FaultKind::kBudgetExhausted,
                          "exact cover: " + support::describe_trip(*meter)};
  }

  const std::size_t n = deployment.size();
  const CandidateIndex index = build_index(n, candidates);

  obs::TraceSpan span("exact_cover.search");
  span.attr("n", static_cast<std::int64_t>(n))
      .attr("candidates", static_cast<std::uint64_t>(candidates.size()));

  // Greedy incumbent provides the initial upper bound — and the anytime
  // answer if the budget trips before the search finds anything better.
  const std::vector<Bundle> incumbent = greedy_cover(deployment, candidates);
  const std::size_t bound0 = incumbent.size() + 1;  // allow matching greedy

  Searcher state;
  state.index = &index;
  state.node_budget = options.max_nodes;
  state.meter = metered ? meter : nullptr;
  state.best_size = bound0;

  if (n > 0 && options.max_nodes == 0 && !metered) {
    // Unlimited budget: fan the root branches out over the pool. Each
    // branch subtree is searched independently with the greedy bound, and
    // the per-branch winners are merged serially in branch order with the
    // same strict-improvement rule the serial DFS applies. Because the
    // bound-pruning can only skip subtrees that contain no strictly
    // better solution, every branch returns the same minimal cover the
    // serial search would have recorded in it, and the ordered merge
    // reproduces the serial result bit for bit. (A shared node counter
    // would make abortion order scheduling-dependent, which is why every
    // budgeted path stays serial.)
    const std::size_t lower =
        (n + index.max_candidate_size - 1) / index.max_candidate_size;
    if (lower < state.best_size) {
      std::vector<std::uint64_t> root(index.words, 0);
      set_all(root.data(), n);
      const std::size_t pivot = first_set_bit(root.data(), index.words);
      std::vector<std::uint64_t> branches;
      for (std::uint32_t k = index.inv_start[pivot];
           k < index.inv_start[pivot + 1]; ++k) {
        const std::uint32_t c = index.inv_items[k];
        branches.push_back(Searcher::pack_branch(
            intersect_count(root.data(), index.mask(c), index.words), c));
      }
      std::sort(branches.begin(), branches.end(),
                std::greater<std::uint64_t>());

      struct BranchResult {
        std::vector<std::uint32_t> best;  // empty = nothing under the bound
        std::size_t nodes = 0;
        std::size_t incumbent_updates = 0;
        std::size_t max_depth = 0;
      };
      const auto results = support::parallel_map<BranchResult>(
          branches.size(), /*grain=*/1, [&](std::size_t b) {
            const std::uint32_t id = Searcher::branch_id(branches[b]);
            Searcher branch_state;
            branch_state.index = &index;
            branch_state.best_size = bound0;
            branch_state.reserve(bound0 + 1);
            branch_state.chosen[0] = id;
            const std::size_t cleared = subtract_and_count(
                branch_state.slot(1), root.data(), index.mask(id), index.words);
            branch_state.search(1, n - cleared, 0);
            return BranchResult{std::move(branch_state.best),
                                branch_state.nodes,
                                branch_state.incumbent_updates,
                                branch_state.max_depth};
          });
      for (const BranchResult& result : results) {
        state.nodes += result.nodes;
        state.incumbent_updates += result.incumbent_updates;
        state.max_depth = std::max(state.max_depth, result.max_depth);
        if (!result.best.empty() && result.best.size() < state.best_size) {
          state.best = result.best;
          state.best_size = result.best.size();
        }
      }
    }
  } else {
    state.reserve(bound0 + 1);
    set_all(state.slot(0), n);
    state.search(0, n, 0);
  }

  CoverSolution solution;
  solution.optimal = !state.aborted;
  solution.nodes_expanded = state.nodes;
  solution.trip = meter->trip();
  if (state.aborted && solution.trip == support::BudgetTrip::kNone) {
    solution.trip = support::BudgetTrip::kNodeCap;  // per-call max_nodes
  }
  solution.bundles = state.best.empty()
                         ? incumbent
                         : materialise(deployment, candidates, state.best);

  {
    // Every per-branch searcher in the parallel fan-out sizes its arena
    // the same way, so the reserve size doubles as the high-water mark.
    const std::uint64_t arena_words = (bound0 + 2) * index.words;
    static const obs::Counter calls("exact_cover.calls");
    static const obs::Counter nodes("exact_cover.nodes_expanded");
    static const obs::Counter incumbents("exact_cover.incumbent_updates");
    static const obs::Counter trips("exact_cover.budget_trips");
    static const obs::Gauge depth_hw("exact_cover.max_depth");
    static const obs::Gauge arena_hw("exact_cover.arena_words");
    calls.add();
    nodes.add(state.nodes);
    incumbents.add(state.incumbent_updates);
    trips.add(state.aborted ? 1 : 0);
    depth_hw.record(state.max_depth);
    arena_hw.record(arena_words);
  }
  span.attr("nodes", static_cast<std::uint64_t>(state.nodes))
      .attr("incumbent_updates",
            static_cast<std::uint64_t>(state.incumbent_updates))
      .attr("optimal", solution.optimal)
      .attr("bundles", static_cast<std::uint64_t>(solution.bundles.size()));
  return solution;
}

std::optional<std::vector<Bundle>> exact_cover(
    const net::Deployment& deployment, std::span<const Bundle> candidates,
    const ExactCoverOptions& options) {
  auto solution = exact_cover_anytime(deployment, candidates, options);
  if (!solution || !solution.value().optimal) return std::nullopt;
  return std::move(solution.value().bundles);
}

std::optional<std::vector<Bundle>> optimal_bundles(
    const net::Deployment& deployment, double r,
    const ExactCoverOptions& options) {
  const std::vector<Bundle> candidates = enumerate_candidates(deployment, r);
  return exact_cover(deployment, candidates, options);
}

}  // namespace bc::bundle
