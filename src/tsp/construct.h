// Tour construction heuristics: nearest neighbour and greedy edge.
//
// Both are classical O(n^2 log n) constructors; the solver facade runs
// them and keeps the shorter tour before handing off to local search.

#ifndef BUNDLECHARGE_TSP_CONSTRUCT_H_
#define BUNDLECHARGE_TSP_CONSTRUCT_H_

#include <span>

#include "tsp/tour.h"

namespace bc::tsp {

// Starts at `start` and repeatedly visits the closest unvisited point.
// Precondition: start < points.size(), points non-empty. A null metric
// is Euclidean (squared-distance comparisons, bit-exact status quo); a
// graph metric compares true movement distances.
Tour nearest_neighbor_tour(std::span<const geometry::Point2> points,
                           std::uint32_t start = 0,
                           const net::MetricSpace* metric = nullptr);

// Greedy edge matching: sorts all edges by length and adds an edge unless
// it would create a vertex of degree 3 or close a premature cycle.
// Produces a single Hamiltonian cycle; typically a few percent shorter
// than nearest neighbour.
Tour greedy_edge_tour(std::span<const geometry::Point2> points,
                      const net::MetricSpace* metric = nullptr);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_CONSTRUCT_H_
