// TSP solver facade.
//
// Picks the exact Held–Karp solver for tiny instances and
// multi-start-construction + 2-opt/Or-opt local search otherwise. All four
// compared planners (SC, CSS, BC, BC-OPT) route their tours through this
// single entry point so that tour quality never confounds the comparison.

#ifndef BUNDLECHARGE_TSP_SOLVER_H_
#define BUNDLECHARGE_TSP_SOLVER_H_

#include <cstddef>
#include <span>

#include "support/deadline.h"
#include "tsp/improve.h"
#include "tsp/tour.h"

namespace bc::tsp {

struct SolverOptions {
  // Instances up to this size are solved exactly (must be
  // <= kHeldKarpLimit).
  std::size_t exact_threshold = 12;
  // Number of nearest-neighbour starts to try (spread over the points);
  // greedy-edge construction is always tried as well.
  std::size_t nn_starts = 4;
  // improve.metric is the movement metric for the *entire* solve —
  // construction, exact DP, local search and the keep-the-best length
  // comparison all read it, so there is a single source of truth. Null =
  // Euclidean.
  ImproveOptions improve;
  // Resource limits; unlimited by default. When a budget trips the solver
  // degrades instead of hanging: a tripped Held-Karp falls back to the
  // heuristic path, local search stops at a pass boundary, and remaining
  // multi-starts are skipped — the returned tour is always valid.
  support::Budget budget{};
};

// Returns a closed tour over all points. Empty input yields an empty tour.
// A non-null `meter` overrides options.budget (shared ladder budgets).
Tour solve_tsp(std::span<const geometry::Point2> points,
               const SolverOptions& options = SolverOptions{},
               support::BudgetMeter* meter = nullptr);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_SOLVER_H_
