// TSP solver facade.
//
// Picks the exact Held–Karp solver for tiny instances and
// multi-start-construction + 2-opt/Or-opt local search otherwise. All four
// compared planners (SC, CSS, BC, BC-OPT) route their tours through this
// single entry point so that tour quality never confounds the comparison.

#ifndef BUNDLECHARGE_TSP_SOLVER_H_
#define BUNDLECHARGE_TSP_SOLVER_H_

#include <cstddef>
#include <span>

#include "tsp/improve.h"
#include "tsp/tour.h"

namespace bc::tsp {

struct SolverOptions {
  // Instances up to this size are solved exactly (must be
  // <= kHeldKarpLimit).
  std::size_t exact_threshold = 12;
  // Number of nearest-neighbour starts to try (spread over the points);
  // greedy-edge construction is always tried as well.
  std::size_t nn_starts = 4;
  ImproveOptions improve;
};

// Returns a closed tour over all points. Empty input yields an empty tour.
Tour solve_tsp(std::span<const geometry::Point2> points,
               const SolverOptions& options = SolverOptions{});

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_SOLVER_H_
