#include "tsp/solver.h"

#include <algorithm>

#include "support/require.h"
#include "tsp/construct.h"
#include "tsp/exact.h"

namespace bc::tsp {

using geometry::Point2;

Tour solve_tsp(std::span<const Point2> points, const SolverOptions& options,
               support::BudgetMeter* meter) {
  support::require(options.exact_threshold <= kHeldKarpLimit,
                   "exact_threshold exceeds the Held-Karp limit");
  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  const net::MetricSpace* metric = options.improve.metric;
  const std::size_t n = points.size();
  if (n == 0) return Tour{};
  if (n <= 3) {
    Tour trivial(n);
    for (std::uint32_t i = 0; i < n; ++i) trivial[i] = i;
    return trivial;
  }
  if (n <= options.exact_threshold) {
    if (!metered) return held_karp_tour(points, metric);
    // Budgeted exact: fall through to the heuristic path if the DP trips
    // (construction is polynomial, so a tour always comes back).
    auto exact = held_karp_tour_budgeted(points, *meter, metric);
    if (exact.has_value()) return std::move(*exact);
  }

  Tour best = greedy_edge_tour(points, metric);
  improve_tour(points, best, options.improve, metered ? meter : nullptr);
  double best_len = tour_length(points, best, metric);

  const std::size_t starts = std::max<std::size_t>(1, options.nn_starts);
  for (std::size_t s = 0; s < starts; ++s) {
    if (metered && !meter->check()) break;
    const auto start = static_cast<std::uint32_t>((s * n) / starts);
    Tour candidate = nearest_neighbor_tour(points, start, metric);
    improve_tour(points, candidate, options.improve,
                 metered ? meter : nullptr);
    const double len = tour_length(points, candidate, metric);
    if (len < best_len) {
      best_len = len;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace bc::tsp
