#include "tsp/construct.h"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>

#include "support/require.h"

namespace bc::tsp {

using geometry::Point2;

Tour nearest_neighbor_tour(std::span<const Point2> points,
                           std::uint32_t start,
                           const net::MetricSpace* metric) {
  support::require(!points.empty(), "nearest_neighbor_tour needs points");
  support::require(start < points.size(), "start index out of range");
  const std::size_t n = points.size();
  std::vector<bool> visited(n, false);
  Tour order;
  order.reserve(n);
  std::uint32_t current = start;
  visited[current] = true;
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    std::uint32_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::uint32_t candidate = 0; candidate < n; ++candidate) {
      if (visited[candidate]) continue;
      // Null metric keeps the squared-distance comparison (same argmin,
      // no sqrt) — the bit-exact pre-metric path.
      const double d2 =
          metric == nullptr
              ? geometry::distance_squared(points[current], points[candidate])
              : metric->distance(points[current], points[candidate]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = candidate;
      }
    }
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  return order;
}

Tour greedy_edge_tour(std::span<const Point2> points,
                      const net::MetricSpace* metric) {
  support::require(!points.empty(), "greedy_edge_tour needs points");
  const std::size_t n = points.size();
  if (n == 1) return Tour{0};
  if (n == 2) return Tour{0, 1};

  struct Edge {
    double d2;
    std::uint32_t a;
    std::uint32_t b;
  };
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      // Squared distances sort identically to distances under Euclid and
      // skip the sqrt; a real metric needs the true movement distance.
      const double key =
          metric == nullptr
              ? geometry::distance_squared(points[i], points[j])
              : metric->distance(points[i], points[j]);
      edges.push_back({key, i, j});
    }
  }
  if (metric == nullptr) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) { return x.d2 < y.d2; });
  } else {
    // Graph distances tie often (shared shortest paths); break ties by
    // endpoint ids so the greedy order is deterministic.
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) {
                if (x.d2 != y.d2) return x.d2 < y.d2;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
  }

  // Union-find to reject premature subcycles; degree counters to keep the
  // result a single Hamiltonian cycle.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<int> degree(n, 0);
  std::vector<std::array<std::uint32_t, 2>> adjacent(
      n, {std::numeric_limits<std::uint32_t>::max(),
          std::numeric_limits<std::uint32_t>::max()});
  std::size_t added = 0;
  for (const Edge& e : edges) {
    if (added == n) break;
    if (degree[e.a] == 2 || degree[e.b] == 2) continue;
    const auto ra = find(e.a);
    const auto rb = find(e.b);
    // Allow closing the cycle only as the final edge.
    if (ra == rb && added + 1 != n) continue;
    parent[ra] = rb;
    adjacent[e.a][degree[e.a]++] = e.b;
    adjacent[e.b][degree[e.b]++] = e.a;
    ++added;
  }
  support::ensure(added == n, "greedy edge construction must close a cycle");

  // Walk the cycle from node 0.
  Tour order;
  order.reserve(n);
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t current = 0;
  for (std::size_t step = 0; step < n; ++step) {
    order.push_back(current);
    const std::uint32_t next =
        adjacent[current][0] == prev ? adjacent[current][1]
                                     : adjacent[current][0];
    prev = current;
    current = next;
  }
  support::ensure(is_valid_tour(order, n), "greedy edge walk must be a tour");
  return order;
}

}  // namespace bc::tsp
