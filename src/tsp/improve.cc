#include "tsp/improve.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "net/spatial_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/require.h"

namespace bc::tsp {

using geometry::Point2;

namespace {

double edge(const net::MetricSpace* metric,
            const std::span<const Point2>& points, std::uint32_t a,
            std::uint32_t b) {
  return net::metric_distance(metric, points[a], points[b]);
}

// Shared state of the neighbour-list improvers. Cities are renumbered into
// a dense local id space (local id = initial tour position) so neighbour
// lists, positions, and don't-look bits are flat arrays; `order` maps tour
// position -> local id and `pos` is its inverse, both maintained across
// moves. The fast phase only proposes moves towards each city's k nearest
// cities and parks converged cities behind don't-look bits; completeness
// is restored by a full-scan certification sweep at convergence, so a
// returned tour is always a full-neighbourhood local optimum.
class NeighborSearch {
 public:
  NeighborSearch(std::span<const Point2> points, const Tour& tour,
                 const ImproveOptions& options)
      : n_(tour.size()),
        min_gain_(options.min_gain),
        metric_(options.metric),
        cities_(tour.begin(), tour.end()) {
    pts_.reserve(n_);
    for (const std::uint32_t city : cities_) pts_.push_back(points[city]);
    k_ = options.neighbors == 0 ? n_ - 1 : std::min(options.neighbors, n_ - 1);
    build_neighbor_lists();
    order_.resize(n_);
    pos_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      order_[i] = i;
      pos_[i] = i;
    }
    dont_look_.assign(n_, 0);
  }

  double gain_sum() const { return gain_sum_; }
  bool parked(std::uint32_t a) const { return dont_look_[a] != 0; }
  void park(std::uint32_t a) { dont_look_[a] = 1; }
  std::size_t size() const { return n_; }
  std::uint64_t moves() const { return moves_; }
  std::uint64_t dont_look_resets() const { return dont_look_resets_; }
  const std::vector<double>& move_gains() const { return move_gains_; }

  void write_back(Tour& out) const {
    for (std::size_t i = 0; i < n_; ++i) out[i] = cities_[order_[i]];
  }

  // Tries to improve the two tour edges at city `a` by reconnecting
  // towards one of a's nearest neighbours; repeats until no move at `a`
  // helps. Both tour directions are tried, and the neighbour scan stops as
  // soon as d(a, c) >= d(a, b): neighbours are distance-sorted, so no
  // farther c can pay for removing edge (a, b).
  bool improve_city_two_opt(std::uint32_t a) {
    bool any = false;
    bool found = true;
    while (found) {
      found = false;
      for (int dir = 0; dir < 2 && !found; ++dir) {
        const std::size_t pa = pos_[a];
        const std::size_t pb = dir == 0 ? succ(pa) : pred(pa);
        const std::uint32_t b = order_[pb];
        const double d_ab = dist(a, b);
        for (std::size_t t = 0; t < k_; ++t) {
          const std::uint32_t c = nbr_[a * k_ + t];
          if (c == a) continue;
          const double d_ac = dist(a, c);
          if (d_ac >= d_ab) break;
          const std::size_t pc = pos_[c];
          const std::uint32_t d = order_[dir == 0 ? succ(pc) : pred(pc)];
          if (d == a) continue;  // edges share a node: zero gain
          const double gain = d_ab + dist(c, d) - d_ac - dist(b, d);
          if (gain > min_gain_) {
            apply_two_opt(dir == 0 ? pa : pred(pa), dir == 0 ? pc : pred(pc));
            gain_sum_ += gain;
            note_move(gain);
            wake(a, b, c, d);
            found = any = true;
            break;
          }
        }
      }
    }
    return any;
  }

  // Full O(n^2) 2-opt scan; applies the first improving move found and
  // returns true, or returns false when the tour is a true 2-opt local
  // optimum. Run only at convergence of the restricted search.
  bool certify_two_opt() {
    for (std::size_t i = 0; i + 2 < n_; ++i) {
      const std::uint32_t a = order_[i];
      const std::uint32_t b = order_[i + 1];
      const double d_ab = dist(a, b);
      for (std::size_t j = i + 2; j < n_; ++j) {
        if (i == 0 && j + 1 == n_) continue;  // same edge pair
        const std::uint32_t c = order_[j];
        const std::uint32_t d = order_[succ(j)];
        const double gain = d_ab + dist(c, d) - dist(a, c) - dist(b, d);
        if (gain > min_gain_) {
          apply_two_opt(i, j);
          gain_sum_ += gain;
          note_move(gain);
          wake(a, b, c, d);
          return true;
        }
      }
    }
    return false;
  }

  // Tries to relocate the chain of 1..3 cities starting at `f` between an
  // edge adjacent to a near neighbour of either chain endpoint. The
  // `removed <= min_gain` and sorted-neighbour cutoffs are heuristic
  // prunes; moves they miss are recovered by certify_or_opt().
  bool improve_city_or_opt(std::uint32_t f) {
    bool any = false;
    bool found = true;
    while (found) {
      found = false;
      const std::size_t pf = pos_[f];
      for (std::size_t chain = 1; chain <= 3 && chain + 2 <= n_ && !found;
           ++chain) {
        const std::size_t p_last = wrap(pf + chain - 1);
        const std::uint32_t last = order_[p_last];
        const std::uint32_t prev = order_[pred(pf)];
        const std::uint32_t next = order_[succ(p_last)];
        if (next == prev) break;
        const double removed =
            dist(prev, f) + dist(last, next) - dist(prev, next);
        if (removed <= min_gain_) continue;
        for (int side = 0; side < 2 && !found; ++side) {
          const std::uint32_t anchor = side == 0 ? f : last;
          for (std::size_t t = 0; t < k_ && !found; ++t) {
            const std::uint32_t c = nbr_[anchor * k_ + t];
            if (in_chain(c, pf, chain)) continue;
            if (dist(anchor, c) >= removed) break;
            // Insertion slots: the edge after c and the edge before c.
            const std::size_t slots[2] = {pos_[c], pred(pos_[c])};
            for (const std::size_t pu : slots) {
              if (try_or_opt_move(pf, chain, prev, last, next, removed, pu)) {
                found = any = true;
                break;
              }
            }
          }
        }
      }
    }
    return any;
  }

  // Full Or-opt scan (chains 1..3 against every insertion edge); applies
  // the first improving move and returns true, else false.
  bool certify_or_opt() {
    for (std::size_t chain = 1; chain <= 3 && chain + 2 <= n_; ++chain) {
      for (std::size_t i = 0; i + chain < n_; ++i) {
        const std::size_t pf = i + 1;
        const std::uint32_t prev = order_[i];
        const std::uint32_t first = order_[pf];
        const std::uint32_t last = order_[i + chain];
        const std::uint32_t next = order_[wrap(i + chain + 1)];
        if (next == prev) continue;
        const double removed =
            dist(prev, first) + dist(last, next) - dist(prev, next);
        for (std::size_t j = 0; j < n_; ++j) {
          if (j >= i && j <= i + chain) continue;
          if (try_or_opt_move(pf, chain, prev, last, next, removed, j)) {
            return true;
          }
        }
      }
    }
    return false;
  }

 private:
  // Gain evaluation distance. The null branch is the bit-exact Euclidean
  // fast path (see net/metric.h); neighbour lists stay Euclidean-built
  // either way, which only shapes which moves get *proposed*.
  double dist(std::uint32_t a, std::uint32_t b) const {
    return net::metric_distance(metric_, pts_[a], pts_[b]);
  }
  std::size_t succ(std::size_t p) const { return p + 1 == n_ ? 0 : p + 1; }
  std::size_t pred(std::size_t p) const { return p == 0 ? n_ - 1 : p - 1; }
  std::size_t wrap(std::size_t p) const { return p >= n_ ? p - n_ : p; }
  bool in_chain(std::uint32_t c, std::size_t pf, std::size_t chain) const {
    return wrap(pos_[c] + n_ - pf) < chain;
  }
  void wake_one(std::uint32_t a) {
    if (dont_look_[a] != 0) {
      dont_look_[a] = 0;
      ++dont_look_resets_;
    }
  }
  void wake(std::uint32_t a, std::uint32_t b, std::uint32_t c,
            std::uint32_t d) {
    wake_one(a);
    wake_one(b);
    wake_one(c);
    wake_one(d);
  }
  void note_move(double gain) {
    ++moves_;
    move_gains_.push_back(gain);
  }

  // k nearest cities per city (distance-ascending, ascending-id ties) from
  // a uniform grid sized for ~1 city per cell.
  void build_neighbor_lists() {
    const auto box = geometry::bounding_box(pts_);
    const double side = std::max(box.width(), box.height());
    const double cell = std::max(
        1e-9, side / std::max(1.0, std::sqrt(static_cast<double>(n_))));
    const net::SpatialIndex index(pts_, cell);
    nbr_.reserve(n_ * k_);
    std::vector<net::SensorId> scratch;
    for (std::uint32_t l = 0; l < n_; ++l) {
      index.k_nearest(pts_[l], k_ + 1, scratch);
      std::size_t count = 0;
      for (const net::SensorId id : scratch) {
        if (id == l || count == k_) continue;
        nbr_.push_back(static_cast<std::uint32_t>(id));
        ++count;
      }
      // Coincident points can crowd l itself out of its own k+1 list; pad
      // with l (skipped by the move loops) to keep the array rectangular.
      for (; count < k_; ++count) nbr_.push_back(l);
    }
  }

  // Reverses the circular segment of positions [from .. to] (inclusive,
  // mod n), keeping pos_ in sync.
  void reverse_circular(std::size_t from, std::size_t to) {
    const std::size_t len = wrap(to + n_ - from) + 1;
    for (std::size_t s = 0; s < len / 2; ++s) {
      const std::size_t i = wrap(from + s);
      const std::size_t j = wrap(to + n_ - s);
      std::swap(order_[i], order_[j]);
      pos_[order_[i]] = static_cast<std::uint32_t>(i);
      pos_[order_[j]] = static_cast<std::uint32_t>(j);
    }
  }

  // Removes tour edges (e1, e1+1) and (e2, e2+1) (positions, mod n) and
  // reconnects crosswise by reversing the shorter of the two arcs — the
  // two reversals give the same circular tour, so pick the cheaper one.
  void apply_two_opt(std::size_t e1, std::size_t e2) {
    const std::size_t i = std::min(e1, e2);
    const std::size_t j = std::max(e1, e2);
    const std::size_t inner = j - i;  // length of segment [i+1 .. j]
    if (inner <= n_ - inner) {
      reverse_circular(i + 1, j);
    } else {
      reverse_circular(wrap(j + 1), i);
    }
  }

  // Evaluates relocating the chain at positions [pf .. pf+chain-1] into
  // the edge (order[pu], succ) — both chain orientations — and applies the
  // move if it gains. `removed` is the saving from closing the chain's old
  // slot. Returns true iff a move was applied.
  bool try_or_opt_move(std::size_t pf, std::size_t chain, std::uint32_t prev,
                       std::uint32_t last, std::uint32_t next, double removed,
                       std::size_t pu) {
    const std::uint32_t first = order_[pf];
    const std::uint32_t u = order_[pu];
    const std::uint32_t v = order_[succ(pu)];
    if (in_chain(u, pf, chain) || in_chain(v, pf, chain)) return false;
    if (u == prev && v == next) return false;  // reinsert into the old slot
    const double d_uv = dist(u, v);
    const double added_fwd = dist(u, first) + dist(last, v) - d_uv;
    const double added_rev = dist(u, last) + dist(first, v) - d_uv;
    const bool reversed = added_rev < added_fwd;
    const double gain = removed - (reversed ? added_rev : added_fwd);
    if (gain <= min_gain_) return false;
    apply_or_opt(pf, chain, u, reversed);
    gain_sum_ += gain;
    note_move(gain);
    wake(prev, next, u, v);
    wake_one(first);
    wake_one(last);
    return true;
  }

  // Rebuilds the tour with the chain at [pf .. pf+chain-1] spliced in
  // right after city u (which must not be in the chain). O(n), which the
  // rarity of accepted moves amortises; the rebuilt order starts at the
  // old post-chain position — a rotation, i.e. the same circular tour.
  void apply_or_opt(std::size_t pf, std::size_t chain, std::uint32_t u,
                    bool reversed) {
    std::uint32_t chain_nodes[3];
    for (std::size_t s = 0; s < chain; ++s) {
      chain_nodes[s] = order_[wrap(pf + s)];
    }
    if (reversed) std::reverse(chain_nodes, chain_nodes + chain);
    scratch_.clear();
    std::size_t t = wrap(pf + chain);
    for (std::size_t step = 0; step < n_ - chain; ++step, t = succ(t)) {
      scratch_.push_back(order_[t]);
      if (order_[t] == u) {
        scratch_.insert(scratch_.end(), chain_nodes, chain_nodes + chain);
      }
    }
    order_.swap(scratch_);
    for (std::size_t i = 0; i < n_; ++i) {
      pos_[order_[i]] = static_cast<std::uint32_t>(i);
    }
  }

  std::size_t n_;
  std::size_t k_ = 0;
  double min_gain_;
  const net::MetricSpace* metric_ = nullptr;
  double gain_sum_ = 0.0;
  std::uint64_t moves_ = 0;
  std::uint64_t dont_look_resets_ = 0;
  std::vector<double> move_gains_;
  std::vector<std::uint32_t> cities_;  // local id -> original city id
  std::vector<Point2> pts_;            // local id -> position
  std::vector<std::uint32_t> nbr_;     // n * k, distance-ascending
  std::vector<std::uint32_t> order_;   // tour position -> local id
  std::vector<std::uint32_t> pos_;     // local id -> tour position
  std::vector<char> dont_look_;
  std::vector<std::uint32_t> scratch_;
};

// Improving-move gains in metres. The buckets span the range seen across
// the paper's deployment scales (fields up to ~1 km across).
constexpr double kGainBounds[] = {1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};

}  // namespace

double two_opt(std::span<const Point2> points, Tour& order,
               const ImproveOptions& options, support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "two_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 4) return 0.0;
  obs::TraceSpan span("tsp.two_opt");
  span.attr("n", static_cast<std::int64_t>(n));
  NeighborSearch search(points, order, options);
  std::uint64_t passes = 0;
  std::uint64_t certify_sweeps = 0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    ++passes;
    bool improved = false;
    for (std::uint32_t a = 0; a < n; ++a) {
      if (search.parked(a)) continue;
      if (search.improve_city_two_opt(a)) {
        improved = true;
      } else {
        search.park(a);
      }
    }
    // Restricted search done: certify against the full neighbourhood. A
    // move found here wakes its endpoints and the passes continue.
    if (!improved) {
      if (!options.certify) break;
      ++certify_sweeps;
      if (!search.certify_two_opt()) break;
    }
  }
  search.write_back(order);
  {
    static const obs::Counter calls("tsp.two_opt.calls");
    static const obs::Counter moves("tsp.two_opt.moves");
    static const obs::Counter resets("tsp.two_opt.dont_look_resets");
    static const obs::Counter sweeps("tsp.two_opt.certify_sweeps");
    static const obs::Counter pass_count("tsp.two_opt.passes");
    static const obs::Histogram gains("tsp.two_opt.move_gain", kGainBounds);
    calls.add();
    moves.add(search.moves());
    resets.add(search.dont_look_resets());
    sweeps.add(certify_sweeps);
    pass_count.add(passes);
    for (const double gain : search.move_gains()) gains.observe(gain);
  }
  span.attr("passes", passes)
      .attr("moves", search.moves())
      .attr("certify_sweeps", certify_sweeps)
      .attr("gain", search.gain_sum());
  return search.gain_sum();
}

double or_opt(std::span<const Point2> points, Tour& order,
              const ImproveOptions& options, support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "or_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 5) return 0.0;
  obs::TraceSpan span("tsp.or_opt");
  span.attr("n", static_cast<std::int64_t>(n));
  NeighborSearch search(points, order, options);
  std::uint64_t passes = 0;
  std::uint64_t certify_sweeps = 0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    ++passes;
    bool improved = false;
    for (std::uint32_t a = 0; a < n; ++a) {
      if (search.parked(a)) continue;
      if (search.improve_city_or_opt(a)) {
        improved = true;
      } else {
        search.park(a);
      }
    }
    if (!improved) {
      if (!options.certify) break;
      ++certify_sweeps;
      if (!search.certify_or_opt()) break;
    }
  }
  search.write_back(order);
  {
    static const obs::Counter calls("tsp.or_opt.calls");
    static const obs::Counter moves("tsp.or_opt.moves");
    static const obs::Counter resets("tsp.or_opt.dont_look_resets");
    static const obs::Counter sweeps("tsp.or_opt.certify_sweeps");
    static const obs::Counter pass_count("tsp.or_opt.passes");
    static const obs::Histogram gains("tsp.or_opt.move_gain", kGainBounds);
    calls.add();
    moves.add(search.moves());
    resets.add(search.dont_look_resets());
    sweeps.add(certify_sweeps);
    pass_count.add(passes);
    for (const double gain : search.move_gains()) gains.observe(gain);
  }
  span.attr("passes", passes)
      .attr("moves", search.moves())
      .attr("certify_sweeps", certify_sweeps)
      .attr("gain", search.gain_sum());
  return search.gain_sum();
}

double improve_tour(std::span<const Point2> points, Tour& order,
                    const ImproveOptions& options,
                    support::BudgetMeter* meter) {
  double total_gain = 0.0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    if (meter != nullptr && meter->exhausted()) break;
    const double gain = two_opt(points, order, options, meter) +
                        or_opt(points, order, options, meter);
    total_gain += gain;
    if (gain <= options.min_gain) break;
  }
  return total_gain;
}

double two_opt_reference(std::span<const Point2> points, Tour& order,
                         const ImproveOptions& options,
                         support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "two_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 4) return 0.0;
  double total_gain = 0.0;
  std::uint64_t moves = 0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    bool improved = false;
    // Reversing order[i+1..j] replaces edges (i,i+1) and (j,j+1) with
    // (i,j) and (i+1,j+1).
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const std::uint32_t a = order[i];
      const std::uint32_t b = order[i + 1];
      const double d_ab = edge(options.metric, points, a, b);
      for (std::size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j + 1 == n) continue;  // same edge pair
        const std::uint32_t c = order[j];
        const std::uint32_t d = order[(j + 1) % n];
        const double gain = d_ab + edge(options.metric, points, c, d) -
                            edge(options.metric, points, a, c) -
                            edge(options.metric, points, b, d);
        if (gain > options.min_gain) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          total_gain += gain;
          ++moves;
          improved = true;
          break;  // edge (i, i+1) changed; restart the inner scan
        }
      }
    }
    if (!improved) break;
  }
  {
    static const obs::Counter calls("tsp.two_opt_reference.calls");
    static const obs::Counter move_count("tsp.two_opt_reference.moves");
    calls.add();
    move_count.add(moves);
  }
  return total_gain;
}

double or_opt_reference(std::span<const Point2> points, Tour& order,
                        const ImproveOptions& options,
                        support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "or_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 5) return 0.0;
  double total_gain = 0.0;
  std::uint64_t moves = 0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    bool improved = false;
    for (std::size_t chain = 1; chain <= 3 && chain + 2 <= n; ++chain) {
      for (std::size_t i = 0; i + chain < n && !improved; ++i) {
        // Chain = order[i+1 .. i+chain]; removing it joins prev and next.
        const std::uint32_t prev = order[i];
        const std::uint32_t first = order[i + 1];
        const std::uint32_t last = order[i + chain];
        const std::uint32_t next = order[(i + chain + 1) % n];
        if (next == prev) continue;
        const double removed = edge(options.metric, points, prev, first) +
                               edge(options.metric, points, last, next) -
                               edge(options.metric, points, prev, next);
        // Try to reinsert between every other edge (j, j+1).
        for (std::size_t j = 0; j < n; ++j) {
          // Skip positions overlapping the chain or its former slot.
          if (j >= i && j <= i + chain) continue;
          const std::uint32_t u = order[j];
          const std::uint32_t v = order[(j + 1) % n];
          if (u == prev && v == next) continue;
          const double added_fwd = edge(options.metric, points, u, first) +
                                   edge(options.metric, points, last, v) -
                                   edge(options.metric, points, u, v);
          const double added_rev = edge(options.metric, points, u, last) +
                                   edge(options.metric, points, first, v) -
                                   edge(options.metric, points, u, v);
          const bool reversed = added_rev < added_fwd;
          const double added = reversed ? added_rev : added_fwd;
          const double gain = removed - added;
          if (gain > options.min_gain) {
            // Materialise the move on a copy of the order.
            Tour moved;
            moved.reserve(n);
            std::vector<std::uint32_t> chain_nodes(
                order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                order.begin() + static_cast<std::ptrdiff_t>(i + chain) + 1);
            if (reversed) std::reverse(chain_nodes.begin(), chain_nodes.end());
            for (std::size_t k = 0; k < n; ++k) {
              if (k > i && k <= i + chain) continue;  // skip the old chain
              moved.push_back(order[k]);
              if (order[k] == u) {
                // Insert after u only if v really follows u once the chain
                // is deleted; with the skips above this always holds.
                moved.insert(moved.end(), chain_nodes.begin(),
                             chain_nodes.end());
              }
            }
            support::ensure(is_valid_tour(moved, n),
                            "or_opt move must preserve the tour");
            order = std::move(moved);
            total_gain += gain;
            ++moves;
            improved = true;
            break;
          }
        }
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  {
    static const obs::Counter calls("tsp.or_opt_reference.calls");
    static const obs::Counter move_count("tsp.or_opt_reference.moves");
    calls.add();
    move_count.add(moves);
  }
  return total_gain;
}

}  // namespace bc::tsp
