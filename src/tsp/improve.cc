#include "tsp/improve.h"

#include <algorithm>

#include "support/require.h"

namespace bc::tsp {

using geometry::Point2;

namespace {

double edge(const std::span<const Point2>& points, std::uint32_t a,
            std::uint32_t b) {
  return geometry::distance(points[a], points[b]);
}

}  // namespace

double two_opt(std::span<const Point2> points, Tour& order,
               const ImproveOptions& options, support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "two_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 4) return 0.0;
  double total_gain = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    bool improved = false;
    // Reversing order[i+1..j] replaces edges (i,i+1) and (j,j+1) with
    // (i,j) and (i+1,j+1).
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const std::uint32_t a = order[i];
      const std::uint32_t b = order[i + 1];
      const double d_ab = edge(points, a, b);
      for (std::size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j + 1 == n) continue;  // same edge pair
        const std::uint32_t c = order[j];
        const std::uint32_t d = order[(j + 1) % n];
        const double gain =
            d_ab + edge(points, c, d) - edge(points, a, c) - edge(points, b, d);
        if (gain > options.min_gain) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          total_gain += gain;
          improved = true;
          break;  // edge (i, i+1) changed; restart the inner scan
        }
      }
    }
    if (!improved) break;
  }
  return total_gain;
}

double or_opt(std::span<const Point2> points, Tour& order,
              const ImproveOptions& options, support::BudgetMeter* meter) {
  support::require(is_valid_tour(order, order.size()) &&
                       order.size() <= points.size(),
                   "or_opt needs a valid tour");
  const std::size_t n = order.size();
  if (n < 5) return 0.0;
  double total_gain = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    if (meter != nullptr && !meter->charge()) break;
    bool improved = false;
    for (std::size_t chain = 1; chain <= 3 && chain + 2 <= n; ++chain) {
      for (std::size_t i = 0; i + chain < n && !improved; ++i) {
        // Chain = order[i+1 .. i+chain]; removing it joins prev and next.
        const std::uint32_t prev = order[i];
        const std::uint32_t first = order[i + 1];
        const std::uint32_t last = order[i + chain];
        const std::uint32_t next = order[(i + chain + 1) % n];
        if (next == prev) continue;
        const double removed = edge(points, prev, first) +
                               edge(points, last, next) -
                               edge(points, prev, next);
        // Try to reinsert between every other edge (j, j+1).
        for (std::size_t j = 0; j < n; ++j) {
          // Skip positions overlapping the chain or its former slot.
          if (j >= i && j <= i + chain) continue;
          const std::uint32_t u = order[j];
          const std::uint32_t v = order[(j + 1) % n];
          if (u == prev && v == next) continue;
          const double added_fwd = edge(points, u, first) +
                                   edge(points, last, v) - edge(points, u, v);
          const double added_rev = edge(points, u, last) +
                                   edge(points, first, v) - edge(points, u, v);
          const bool reversed = added_rev < added_fwd;
          const double added = reversed ? added_rev : added_fwd;
          const double gain = removed - added;
          if (gain > options.min_gain) {
            // Materialise the move on a copy of the order.
            Tour moved;
            moved.reserve(n);
            std::vector<std::uint32_t> chain_nodes(
                order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                order.begin() + static_cast<std::ptrdiff_t>(i + chain) + 1);
            if (reversed) std::reverse(chain_nodes.begin(), chain_nodes.end());
            for (std::size_t k = 0; k < n; ++k) {
              if (k > i && k <= i + chain) continue;  // skip the old chain
              moved.push_back(order[k]);
              if (order[k] == u) {
                // Insert after u only if v really follows u once the chain
                // is deleted; with the skips above this always holds.
                moved.insert(moved.end(), chain_nodes.begin(),
                             chain_nodes.end());
              }
            }
            support::ensure(is_valid_tour(moved, n),
                            "or_opt move must preserve the tour");
            order = std::move(moved);
            total_gain += gain;
            improved = true;
            break;
          }
        }
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  return total_gain;
}

double improve_tour(std::span<const Point2> points, Tour& order,
                    const ImproveOptions& options,
                    support::BudgetMeter* meter) {
  double total_gain = 0.0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    if (meter != nullptr && meter->exhausted()) break;
    const double gain = two_opt(points, order, options, meter) +
                        or_opt(points, order, options, meter);
    total_gain += gain;
    if (gain <= options.min_gain) break;
  }
  return total_gain;
}

}  // namespace bc::tsp
