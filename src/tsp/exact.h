// Exact TSP via Held–Karp dynamic programming.
//
// O(2^n * n^2) time, O(2^n * n) memory — practical to ~18 points. Used for
// tiny planner instances (e.g. the 6-sensor testbed) and as the ground
// truth oracle for heuristic tests.

#ifndef BUNDLECHARGE_TSP_EXACT_H_
#define BUNDLECHARGE_TSP_EXACT_H_

#include <optional>
#include <span>

#include "support/deadline.h"
#include "tsp/tour.h"

namespace bc::tsp {

// Largest instance held_karp_tour accepts.
inline constexpr std::size_t kHeldKarpLimit = 18;

// Optimal closed tour. Preconditions: 1 <= points.size() <= kHeldKarpLimit.
// A null metric is Euclidean; otherwise the DP runs over the metric's
// distance matrix (optimal for that metric).
Tour held_karp_tour(std::span<const geometry::Point2> points,
                    const net::MetricSpace* metric = nullptr);

// Budgeted variant: charges `meter` one unit per DP subset processed and
// returns nullopt when the budget trips mid-table (Held-Karp has no
// incumbent to fall back on — callers degrade to a heuristic tour).
std::optional<Tour> held_karp_tour_budgeted(
    std::span<const geometry::Point2> points, support::BudgetMeter& meter,
    const net::MetricSpace* metric = nullptr);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_EXACT_H_
