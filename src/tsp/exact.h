// Exact TSP via Held–Karp dynamic programming.
//
// O(2^n * n^2) time, O(2^n * n) memory — practical to ~18 points. Used for
// tiny planner instances (e.g. the 6-sensor testbed) and as the ground
// truth oracle for heuristic tests.

#ifndef BUNDLECHARGE_TSP_EXACT_H_
#define BUNDLECHARGE_TSP_EXACT_H_

#include <span>

#include "tsp/tour.h"

namespace bc::tsp {

// Largest instance held_karp_tour accepts.
inline constexpr std::size_t kHeldKarpLimit = 18;

// Optimal closed tour. Preconditions: 1 <= points.size() <= kHeldKarpLimit.
Tour held_karp_tour(std::span<const geometry::Point2> points);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_EXACT_H_
