// Local-search tour improvement: 2-opt and Or-opt.
//
// 2-opt removes crossing edges by reversing segments; Or-opt relocates
// short chains (1-3 points) elsewhere in the tour. Together they close
// most of the gap to optimal on the instance sizes the paper evaluates
// (tens to low hundreds of stops).

#ifndef BUNDLECHARGE_TSP_IMPROVE_H_
#define BUNDLECHARGE_TSP_IMPROVE_H_

#include <cstddef>
#include <span>

#include "support/deadline.h"
#include "tsp/tour.h"

namespace bc::tsp {

struct ImproveOptions {
  // Upper bound on full improvement passes (each pass scans all moves);
  // local search almost always converges much earlier.
  std::size_t max_passes = 64;
  // A move must improve the tour by more than this to be taken, which
  // keeps floating-point noise from cycling.
  double min_gain = 1e-9;
  // Candidate-move neighbourhood of the optimized improvers: each city
  // only proposes moves towards its `neighbors` nearest cities (0 = all).
  // Quality is not capped by this: a full-scan certification sweep runs
  // whenever the restricted search converges, so a returned tour is a
  // genuine full-neighbourhood local optimum either way.
  std::size_t neighbors = 12;
  // When false, skip the O(n^2) certification sweep and stop at restricted
  // convergence. The returned tour is then only a neighbour-list local
  // optimum — the trade the sharded large-n planner makes, where a single
  // certification sweep over tens of thousands of stops would dwarf the
  // entire solve.
  bool certify = true;
  // Movement metric for gain evaluation; null = Euclidean (bit-exact
  // pre-metric path). Neighbour candidate lists are still built from
  // Euclidean proximity — a heuristic move proposal — but every accepted
  // move and the certification sweep are judged under this metric, so
  // the result is a genuine local optimum of the *metric* tour length.
  const net::MetricSpace* metric = nullptr;
};

// First-improvement 2-opt until no move helps. Returns total gain (length
// reduction, >= 0). `order` must be a valid tour over `points`.
// All three improvers are anytime by construction: the tour is valid after
// every accepted move, so a non-null `meter` (charged one unit per pass)
// simply stops the search at the next pass boundary when it trips.
double two_opt(std::span<const geometry::Point2> points, Tour& order,
               const ImproveOptions& options = ImproveOptions{},
               support::BudgetMeter* meter = nullptr);

// Or-opt: tries moving chains of length 1..3 between all other edges.
double or_opt(std::span<const geometry::Point2> points, Tour& order,
              const ImproveOptions& options = ImproveOptions{},
              support::BudgetMeter* meter = nullptr);

// Alternates 2-opt and Or-opt until neither improves.
double improve_tour(std::span<const geometry::Point2> points, Tour& order,
                    const ImproveOptions& options = ImproveOptions{},
                    support::BudgetMeter* meter = nullptr);

// Reference implementations: the original naive full-scan first-improvement
// bodies, kept verbatim as the differential-testing oracle for the
// neighbour-list versions above. `options.neighbors` is ignored.
double two_opt_reference(std::span<const geometry::Point2> points, Tour& order,
                         const ImproveOptions& options = ImproveOptions{},
                         support::BudgetMeter* meter = nullptr);
double or_opt_reference(std::span<const geometry::Point2> points, Tour& order,
                        const ImproveOptions& options = ImproveOptions{},
                        support::BudgetMeter* meter = nullptr);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_IMPROVE_H_
