#include "tsp/exact.h"

#include <limits>
#include <vector>

#include "support/require.h"

namespace bc::tsp {

using geometry::Point2;

namespace {

// Shared DP core; a null meter runs unmetered. Returns nullopt only when
// the meter trips (one charge per subset `mask`).
std::optional<Tour> held_karp_impl(std::span<const Point2> points,
                                   support::BudgetMeter* meter,
                                   const net::MetricSpace* metric) {
  const std::size_t n = points.size();
  support::require(n >= 1, "held_karp_tour needs points");
  support::require(n <= kHeldKarpLimit, "held_karp_tour instance too large");
  if (n == 1) return Tour{0};
  if (n == 2) return Tour{0, 1};

  std::vector<double> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = net::metric_distance(metric, points[i], points[j]);
    }
  }

  // dp[mask][v]: shortest path starting at 0, visiting exactly the set
  // `mask` (which contains 0 and v), ending at v.
  const std::size_t full = std::size_t{1} << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full * n, kInf);
  std::vector<std::uint32_t> parent(full * n,
                                    std::numeric_limits<std::uint32_t>::max());
  dp[(std::size_t{1} << 0) * n + 0] = 0.0;

  for (std::size_t mask = 1; mask < full; ++mask) {
    if ((mask & 1) == 0) continue;  // paths always include the start 0
    if (meter != nullptr && !meter->charge()) return std::nullopt;
    for (std::size_t v = 0; v < n; ++v) {
      if ((mask & (std::size_t{1} << v)) == 0) continue;
      const double here = dp[mask * n + v];
      if (here == kInf) continue;
      for (std::size_t w = 0; w < n; ++w) {
        if (mask & (std::size_t{1} << w)) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << w);
        const double candidate = here + dist[v * n + w];
        if (candidate < dp[next_mask * n + w]) {
          dp[next_mask * n + w] = candidate;
          parent[next_mask * n + w] = static_cast<std::uint32_t>(v);
        }
      }
    }
  }

  // Close the tour back to 0.
  const std::size_t all = full - 1;
  double best = kInf;
  std::size_t best_end = 0;
  for (std::size_t v = 1; v < n; ++v) {
    const double candidate = dp[all * n + v] + dist[v * n + 0];
    if (candidate < best) {
      best = candidate;
      best_end = v;
    }
  }
  support::ensure(best < kInf, "held_karp must find a tour");

  Tour order(n);
  std::size_t mask = all;
  std::size_t v = best_end;
  for (std::size_t slot = n; slot-- > 0;) {
    order[slot] = static_cast<std::uint32_t>(v);
    const std::uint32_t p = parent[mask * n + v];
    mask &= ~(std::size_t{1} << v);
    v = p;
    if (slot == 1) break;  // slot 0 is the start
  }
  order[0] = 0;
  support::ensure(is_valid_tour(order, n), "held_karp output must be a tour");
  return order;
}

}  // namespace

Tour held_karp_tour(std::span<const Point2> points,
                    const net::MetricSpace* metric) {
  auto tour = held_karp_impl(points, nullptr, metric);
  support::ensure(tour.has_value(), "unmetered held_karp cannot trip");
  return std::move(*tour);
}

std::optional<Tour> held_karp_tour_budgeted(std::span<const Point2> points,
                                            support::BudgetMeter& meter,
                                            const net::MetricSpace* metric) {
  return held_karp_impl(points, &meter, metric);
}

}  // namespace bc::tsp
