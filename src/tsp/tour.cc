#include "tsp/tour.h"

#include <algorithm>

#include "support/require.h"

namespace bc::tsp {

bool is_valid_tour(std::span<const std::uint32_t> order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::uint32_t idx : order) {
    if (idx >= n || seen[idx]) return false;
    seen[idx] = true;
  }
  return true;
}

double tour_length(std::span<const geometry::Point2> points,
                   std::span<const std::uint32_t> order,
                   const net::MetricSpace* metric) {
  if (order.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto a = order[i];
    const auto b = order[(i + 1) % order.size()];
    total += net::metric_distance(metric, points[a], points[b]);
  }
  return total;
}

double path_length(std::span<const geometry::Point2> points,
                   std::span<const std::uint32_t> order,
                   const net::MetricSpace* metric) {
  if (order.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    total +=
        net::metric_distance(metric, points[order[i]], points[order[i + 1]]);
  }
  return total;
}

void rotate_to_front(Tour& order, std::uint32_t first) {
  auto it = std::find(order.begin(), order.end(), first);
  support::require(it != order.end(), "rotate_to_front: index not in tour");
  std::rotate(order.begin(), it, order.end());
}

}  // namespace bc::tsp
