// Closed-tour representation and measurement.
//
// A tour is a visiting order over a point set (indices into the caller's
// array); all planner tours are closed (the mobile charger returns to the
// depot). Validation and length live here so constructors and improvers
// can share them.

#ifndef BUNDLECHARGE_TSP_TOUR_H_
#define BUNDLECHARGE_TSP_TOUR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "net/metric.h"

namespace bc::tsp {

using Tour = std::vector<std::uint32_t>;

// True iff `order` is a permutation of 0..n-1.
bool is_valid_tour(std::span<const std::uint32_t> order, std::size_t n);

// Length of the closed tour (last point connects back to the first).
// Empty and single-point tours have length 0. A null metric measures
// Euclidean legs (the repo-wide convention, see net/metric.h).
double tour_length(std::span<const geometry::Point2> points,
                   std::span<const std::uint32_t> order,
                   const net::MetricSpace* metric = nullptr);

// Length of the open path in visiting order (no closing edge).
double path_length(std::span<const geometry::Point2> points,
                   std::span<const std::uint32_t> order,
                   const net::MetricSpace* metric = nullptr);

// Rotates a closed tour so that `first` is at the front (tour order and
// length are invariant under rotation). Precondition: `first` is in the
// tour.
void rotate_to_front(Tour& order, std::uint32_t first);

}  // namespace bc::tsp

#endif  // BUNDLECHARGE_TSP_TOUR_H_
