#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/require.h"

namespace bc::lp {

namespace {

// Dense tableau with explicit basis bookkeeping. Column layout:
// [ structural x (n) | surplus s (m) | artificial a (m) | rhs ].
class Tableau {
 public:
  Tableau(const Problem& p, double epsilon)
      : n_(p.num_vars),
        m_(p.rows.size()),
        cols_(n_ + 2 * m_ + 1),
        epsilon_(epsilon),
        rows_(m_, std::vector<double>(cols_, 0.0)),
        basis_(m_) {
    for (std::size_t i = 0; i < m_; ++i) {
      auto& row = rows_[i];
      for (std::size_t j = 0; j < n_; ++j) row[j] = p.rows[i][j];
      row[n_ + i] = -1.0;  // surplus for the ">=" sense
      row[cols_ - 1] = p.rhs[i];
      if (row[cols_ - 1] < 0.0) {
        for (double& v : row) v = -v;
      }
      row[n_ + m_ + i] = 1.0;  // artificial
      basis_[i] = n_ + m_ + i;
    }
  }

  std::size_t rhs_col() const { return cols_ - 1; }
  bool is_artificial(std::size_t col) const { return col >= n_ + m_; }

  // One simplex phase over the cost vector `cost` (length cols_ - 1).
  // Entering columns with `allow(col) == false` are skipped. Returns the
  // status of the phase; kOptimal means reduced costs are non-negative.
  // A non-null `meter` is charged one unit per pivot iteration.
  template <typename Allow>
  Status minimize(const std::vector<double>& cost, const Allow& allow,
                  std::size_t max_iterations, std::size_t& iterations,
                  std::size_t degenerate_switch,
                  support::BudgetMeter* meter) {
    // Reduced cost row r = c - c_B * B^{-1}A, plus -z in the rhs slot.
    std::vector<double> reduced(cols_, 0.0);
    for (std::size_t j = 0; j + 1 < cols_; ++j) reduced[j] = cost[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb != 0.0) {
        for (std::size_t j = 0; j < cols_; ++j) {
          reduced[j] -= cb * rows_[i][j];
        }
      }
    }

    // Columns whose negative reduced cost proved to be rounding noise (no
    // positive pivot entry but a near-zero cost) are banned rather than
    // declared an unbounded ray; see below.
    std::vector<bool> banned(cols_, false);
    double cost_scale = 1.0;
    for (std::size_t j = 0; j + 1 < cols_; ++j) {
      cost_scale = std::max(cost_scale, std::abs(cost[j]));
    }
    const double serious_threshold = 1e-5 * cost_scale;

    // Dantzig pricing until `degenerate_switch` consecutive degenerate
    // pivots, then Bland's rule (which cannot cycle) until a pivot makes
    // strict progress again.
    bool use_bland = false;
    std::size_t degenerate_run = 0;

    while (true) {
      if (++iterations > max_iterations) return Status::kIterationLimit;
      if (meter != nullptr && !meter->charge()) {
        return Status::kBudgetExhausted;
      }
      std::size_t entering = cols_;
      if (use_bland) {
        // Bland's rule: smallest-index improving column.
        for (std::size_t j = 0; j + 1 < cols_; ++j) {
          if (!allow(j) || banned[j]) continue;
          if (reduced[j] < -epsilon_) {
            entering = j;
            break;
          }
        }
      } else {
        // Dantzig's rule: most-negative reduced cost.
        double most_negative = -epsilon_;
        for (std::size_t j = 0; j + 1 < cols_; ++j) {
          if (!allow(j) || banned[j]) continue;
          if (reduced[j] < most_negative) {
            most_negative = reduced[j];
            entering = j;
          }
        }
      }
      if (entering == cols_) return Status::kOptimal;

      // Ratio test; Bland tie-break on the smallest basis index.
      std::size_t leaving = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = rows_[i][entering];
        if (a <= epsilon_) continue;
        const double ratio = rows_[i][rhs_col()] / a;
        if (ratio < best_ratio - epsilon_ ||
            (std::abs(ratio - best_ratio) <= epsilon_ && leaving < m_ &&
             basis_[i] < basis_[leaving])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
      if (leaving == m_) {
        // No positive pivot entry: a genuine unbounded ray only if the
        // reduced cost is meaningfully negative; otherwise it is rounding
        // noise on a converged column — ban it and keep going.
        if (reduced[entering] < -serious_threshold) {
          return Status::kUnbounded;
        }
        banned[entering] = true;
        continue;
      }

      if (best_ratio <= epsilon_) {
        if (++degenerate_run >= degenerate_switch) use_bland = true;
      } else {
        degenerate_run = 0;
        use_bland = false;
      }
      pivot(leaving, entering, reduced);
    }
  }

  // Objective value of `cost` at the current basic solution.
  double objective_value(const std::vector<double>& cost) const {
    double total = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      total += cost[basis_[i]] * rows_[i][rhs_col()];
    }
    return total;
  }

  // After phase 1: pivot zero-valued artificial basics out on any
  // non-artificial column so phase 2 never touches them. Rows that are
  // all-zero outside the artificial block are redundant and harmless.
  void expel_artificials() {
    std::vector<double> dummy(cols_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (!is_artificial(basis_[i])) continue;
      for (std::size_t j = 0; j < n_ + m_; ++j) {
        if (std::abs(rows_[i][j]) > epsilon_) {
          pivot(i, j, dummy);
          break;
        }
      }
    }
  }

  std::vector<double> extract_solution() const {
    std::vector<double> x(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) {
        x[basis_[i]] = rows_[i][rhs_col()];
      }
    }
    return x;
  }

  std::size_t structural_vars() const { return n_; }
  std::size_t constraint_count() const { return m_; }

 private:
  void pivot(std::size_t leaving, std::size_t entering,
             std::vector<double>& reduced) {
    auto& pivot_row = rows_[leaving];
    const double p = pivot_row[entering];
    for (double& v : pivot_row) v /= p;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leaving) continue;
      const double factor = rows_[i][entering];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) {
        rows_[i][j] -= factor * pivot_row[j];
      }
      rows_[i][entering] = 0.0;  // cancel residual rounding exactly
    }
    const double rfactor = reduced[entering];
    if (rfactor != 0.0) {
      for (std::size_t j = 0; j < cols_; ++j) {
        reduced[j] -= rfactor * pivot_row[j];
      }
      reduced[entering] = 0.0;
    }
    basis_[leaving] = entering;
  }

  std::size_t n_;
  std::size_t m_;
  std::size_t cols_;
  double epsilon_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> basis_;
};

}  // namespace

std::string_view to_string(Status status) {
  switch (status) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterationLimit:
      return "iteration-limit";
    case Status::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "unknown";
}

support::FaultKind to_fault_kind(Status status) {
  switch (status) {
    case Status::kOptimal:
      return support::FaultKind::kNone;
    case Status::kInfeasible:
    case Status::kUnbounded:
      return support::FaultKind::kInvalidInput;
    case Status::kIterationLimit:
    case Status::kBudgetExhausted:
      return support::FaultKind::kBudgetExhausted;
  }
  return support::FaultKind::kInvalidInput;
}

Solution solve(const Problem& problem, const SimplexOptions& options,
               support::BudgetMeter* meter) {
  support::require(problem.objective.size() == problem.num_vars,
                   "objective size must equal num_vars");
  support::require(problem.rows.size() == problem.rhs.size(),
                   "one rhs per constraint row");
  for (const auto& row : problem.rows) {
    support::require(row.size() == problem.num_vars,
                     "constraint row size must equal num_vars");
  }

  Solution solution;
  if (problem.rows.empty()) {
    // No constraints: x = 0 is optimal for non-negative costs; any
    // negative cost makes the problem unbounded.
    const bool unbounded =
        std::any_of(problem.objective.begin(), problem.objective.end(),
                    [](double c) { return c < 0.0; });
    solution.status = unbounded ? Status::kUnbounded : Status::kOptimal;
    solution.x.assign(problem.num_vars, 0.0);
    solution.objective = 0.0;
    return solution;
  }

  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.rows.size();
  const std::size_t iteration_cap =
      options.max_iterations != 0 ? options.max_iterations
                                  : 200 * (n + 2 * m + 8);

  // Row equilibration: scale each constraint (and its rhs) by its largest
  // coefficient magnitude. The feasible set and optimum are unchanged, but
  // pivoting on O(1) entries keeps the tableau numerically healthy even
  // when callers pass physically tiny coefficients (e.g. received power in
  // watts against demands in joules).
  Problem scaled = problem;
  for (std::size_t i = 0; i < m; ++i) {
    double largest = 0.0;
    for (const double a : scaled.rows[i]) {
      largest = std::max(largest, std::abs(a));
    }
    if (largest > 0.0) {
      for (double& a : scaled.rows[i]) a /= largest;
      scaled.rhs[i] /= largest;
    }
  }

  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  Tableau tableau(scaled, options.epsilon);
  std::size_t iterations = 0;

  // Phase 1: minimise the sum of artificials.
  std::vector<double> phase1_cost(n + 2 * m, 0.0);
  for (std::size_t j = n + m; j < n + 2 * m; ++j) phase1_cost[j] = 1.0;
  const Status phase1 = tableau.minimize(
      phase1_cost, [](std::size_t) { return true; }, iteration_cap,
      iterations, options.degenerate_pivot_switch,
      metered ? meter : nullptr);
  if (phase1 != Status::kOptimal) {
    solution.status = phase1;
    return solution;
  }
  double rhs_scale = 1.0;
  for (const double b : scaled.rhs) rhs_scale += std::abs(b);
  if (tableau.objective_value(phase1_cost) > 1e-7 * rhs_scale) {
    solution.status = Status::kInfeasible;
    return solution;
  }
  tableau.expel_artificials();

  // Phase 2: the real objective, artificials barred.
  std::vector<double> phase2_cost(n + 2 * m, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = problem.objective[j];
  const Status phase2 = tableau.minimize(
      phase2_cost,
      [&](std::size_t col) { return !tableau.is_artificial(col); },
      iteration_cap, iterations, options.degenerate_pivot_switch,
      metered ? meter : nullptr);
  if (phase2 != Status::kOptimal) {
    solution.status = phase2;
    return solution;
  }

  solution.status = Status::kOptimal;
  solution.x = tableau.extract_solution();
  solution.objective = tableau.objective_value(phase2_cost);
  return solution;
}

}  // namespace bc::lp
