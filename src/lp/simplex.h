// Dense two-phase simplex for small linear programs.
//
// The charging-time schedule of Eq. 3 is, for fixed stop positions, a
// linear program: minimise total parked time subject to every sensor's
// accumulated received energy meeting its demand,
//
//     min  sum_i t_i
//     s.t. sum_i p_r(d(l_i, s_j)) * t_i >= delta_j   for every sensor j,
//          t_i >= 0,
//
// (the one-to-many property makes the constraint matrix dense). Instances
// are small — a few hundred stops by a few hundred sensors — so a dense
// tableau simplex is simple, dependency-free and fast enough. Phase 1
// drives artificial variables out of the basis; Bland's rule guarantees
// termination.

#ifndef BUNDLECHARGE_LP_SIMPLEX_H_
#define BUNDLECHARGE_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

namespace bc::lp {

// min c.x  subject to  A x >= b,  x >= 0.
// All rows share the ">=" sense (what the schedule needs); callers with
// "<=" rows can negate them.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;            // size num_vars
  std::vector<std::vector<double>> rows;    // each size num_vars
  std::vector<double> rhs;                  // size rows.size()
};

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  Status status = Status::kIterationLimit;
  std::vector<double> x;      // size num_vars when kOptimal
  double objective = 0.0;     // c.x when kOptimal
};

struct SimplexOptions {
  // Pivot iteration cap across both phases (0 = derive from size).
  std::size_t max_iterations = 0;
  // Values within this of zero are treated as zero during pivoting.
  double epsilon = 1e-9;
};

// Solves the problem. Preconditions: consistent dimensions; finite
// coefficients.
Solution solve(const Problem& problem,
               const SimplexOptions& options = SimplexOptions{});

}  // namespace bc::lp

#endif  // BUNDLECHARGE_LP_SIMPLEX_H_
