// Dense two-phase simplex for small linear programs.
//
// The charging-time schedule of Eq. 3 is, for fixed stop positions, a
// linear program: minimise total parked time subject to every sensor's
// accumulated received energy meeting its demand,
//
//     min  sum_i t_i
//     s.t. sum_i p_r(d(l_i, s_j)) * t_i >= delta_j   for every sensor j,
//          t_i >= 0,
//
// (the one-to-many property makes the constraint matrix dense). Instances
// are small — a few hundred stops by a few hundred sensors — so a dense
// tableau simplex is simple, dependency-free and fast enough. Phase 1
// drives artificial variables out of the basis.
//
// Pricing is Dantzig's most-negative rule while the walk makes progress,
// falling back to Bland's smallest-index rule after a run of consecutive
// degenerate pivots (the classic anti-cycling switch): Dantzig converges
// in fewer pivots on healthy instances but can cycle on degenerate ones,
// Bland cannot cycle, so the combination terminates on every input. A
// pivot-iteration cap and an optional support::Budget bound the work
// regardless; a tripped budget reports kBudgetExhausted instead of
// looping.

#ifndef BUNDLECHARGE_LP_SIMPLEX_H_
#define BUNDLECHARGE_LP_SIMPLEX_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "support/deadline.h"
#include "support/expected.h"

namespace bc::lp {

// min c.x  subject to  A x >= b,  x >= 0.
// All rows share the ">=" sense (what the schedule needs); callers with
// "<=" rows can negate them.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;            // size num_vars
  std::vector<std::vector<double>> rows;    // each size num_vars
  std::vector<double> rhs;                  // size rows.size()
};

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,    // the pivot-iteration cap tripped
  kBudgetExhausted,   // the caller's Budget (deadline/node cap/cancel) tripped
};

std::string_view to_string(Status status);

// Maps a non-optimal Status onto the repo-wide fault taxonomy so LP
// callers can surface failures through support::Expected uniformly:
// kIterationLimit and kBudgetExhausted are budget trips, kInfeasible and
// kUnbounded are malformed inputs, kOptimal maps to kNone.
support::FaultKind to_fault_kind(Status status);

struct Solution {
  Status status = Status::kIterationLimit;
  std::vector<double> x;      // size num_vars when kOptimal
  double objective = 0.0;     // c.x when kOptimal
};

struct SimplexOptions {
  // Pivot iteration cap across both phases (0 = derive from size).
  std::size_t max_iterations = 0;
  // Values within this of zero are treated as zero during pivoting.
  double epsilon = 1e-9;
  // Consecutive degenerate pivots tolerated under Dantzig pricing before
  // switching to Bland's rule for the rest of the phase.
  std::size_t degenerate_pivot_switch = 12;
  // Deadline / node cap / cancellation; one unit is charged per pivot
  // iteration. A trip yields Status::kBudgetExhausted.
  support::Budget budget{};
};

// Solves the problem. A non-null `meter` shares a caller-owned budget
// (charged one unit per pivot); otherwise a local meter is built from
// `options.budget`. Preconditions: consistent dimensions; finite
// coefficients.
Solution solve(const Problem& problem,
               const SimplexOptions& options = SimplexOptions{},
               support::BudgetMeter* meter = nullptr);

}  // namespace bc::lp

#endif  // BUNDLECHARGE_LP_SIMPLEX_H_
