#include "io/deployment_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/require.h"

namespace bc::io {

namespace {

enum class TokenParse { kOk, kNotANumber, kNotFinite };

// Finite numbers only: strtod's "nan"/"inf" spellings parse but poison
// every geometric computation downstream, so they are distinguished from
// plain text — a non-finite value is always an error, never a header.
TokenParse parse_double_token(const std::string& token, double& out) {
  if (token.empty()) return TokenParse::kNotANumber;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return TokenParse::kNotANumber;
  return std::isfinite(out) ? TokenParse::kOk : TokenParse::kNotFinite;
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(trim(line.substr(start)));
      return fields;
    }
    fields.push_back(trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
}

}  // namespace

std::optional<std::vector<geometry::Point2>> read_positions_csv(
    std::istream& in, std::string* error) {
  std::vector<geometry::Point2> positions;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    // A UTF-8 BOM on the first line would otherwise make a numeric row
    // look non-numeric and be swallowed by the header heuristic below,
    // silently dropping the first sensor.
    if (line_number == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) {
      line.erase(0, 3);
    }
    // getline stops at '\n' only; an embedded NUL would silently truncate
    // strtod's view of the token, so it is malformed input, not whitespace.
    if (line.find('\0') != std::string::npos) {
      return fail("embedded NUL byte");
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> fields = split_fields(trimmed);
    if (fields.size() != 2) {
      return fail("expected 2 fields, got " + std::to_string(fields.size()));
    }
    double x = 0.0;
    double y = 0.0;
    const TokenParse px = parse_double_token(fields[0], x);
    const TokenParse py = parse_double_token(fields[1], y);
    if (px == TokenParse::kNotFinite || py == TokenParse::kNotFinite) {
      return fail("non-finite coordinate in '" + trimmed + "'");
    }
    if (px != TokenParse::kOk || py != TokenParse::kOk) {
      // Tolerate exactly one non-numeric two-field row as a header
      // ("x,y"); anything later, or with the wrong shape, is an error.
      if (positions.empty() && line_number <= 1) continue;
      return fail("malformed coordinates '" + trimmed + "'");
    }
    positions.push_back({x, y});
  }
  if (positions.empty()) {
    if (error != nullptr) *error = "no sensor positions found";
    return std::nullopt;
  }
  return positions;
}

std::optional<std::vector<geometry::Point2>> read_positions_csv_file(
    const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return read_positions_csv(file, error);
}

void write_positions_csv(const net::Deployment& deployment,
                         std::ostream& out) {
  out << "x,y\n";
  char buf[80];
  for (const net::Sensor& s : deployment.sensors()) {
    // Round-trip-exact doubles (max_digits10 = 17).
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g\n", s.position.x,
                  s.position.y);
    out << buf;
  }
}

bool write_positions_csv_file(const net::Deployment& deployment,
                              const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  write_positions_csv(deployment, file);
  return static_cast<bool>(file);
}

net::Deployment deployment_from_positions(
    std::vector<geometry::Point2> positions, geometry::Point2 depot,
    double demand_j) {
  return net::explicit_deployment(std::move(positions), depot, demand_j);
}

}  // namespace bc::io
