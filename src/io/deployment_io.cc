#include "io/deployment_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/require.h"

namespace bc::io {

namespace {

bool parse_double_token(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

std::optional<std::vector<geometry::Point2>> read_positions_csv(
    std::istream& in, std::string* error) {
  std::vector<geometry::Point2> positions;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto comma = trimmed.find(',');
    if (comma == std::string::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": expected 'x,y'";
      }
      return std::nullopt;
    }
    const std::string x_token = trim(trimmed.substr(0, comma));
    const std::string y_token = trim(trimmed.substr(comma + 1));
    double x = 0.0;
    double y = 0.0;
    if (!parse_double_token(x_token, x) || !parse_double_token(y_token, y)) {
      // Tolerate exactly one non-numeric row as a header.
      if (positions.empty() && line_number <= 1) continue;
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) +
                 ": malformed coordinates '" + trimmed + "'";
      }
      return std::nullopt;
    }
    positions.push_back({x, y});
  }
  if (positions.empty()) {
    if (error != nullptr) *error = "no sensor positions found";
    return std::nullopt;
  }
  return positions;
}

std::optional<std::vector<geometry::Point2>> read_positions_csv_file(
    const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return read_positions_csv(file, error);
}

void write_positions_csv(const net::Deployment& deployment,
                         std::ostream& out) {
  out << "x,y\n";
  char buf[80];
  for (const net::Sensor& s : deployment.sensors()) {
    // Round-trip-exact doubles (max_digits10 = 17).
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g\n", s.position.x,
                  s.position.y);
    out << buf;
  }
}

bool write_positions_csv_file(const net::Deployment& deployment,
                              const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  write_positions_csv(deployment, file);
  return static_cast<bool>(file);
}

net::Deployment deployment_from_positions(
    std::vector<geometry::Point2> positions, geometry::Point2 depot,
    double demand_j) {
  return net::explicit_deployment(std::move(positions), depot, demand_j);
}

}  // namespace bc::io
