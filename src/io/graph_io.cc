#include "io/graph_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "geometry/point.h"

namespace bc::io {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

Fault at_line(std::size_t line, std::string what) {
  return Fault{FaultKind::kInvalidInput,
               "line " + std::to_string(line) + ": " + std::move(what)};
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Full-field numeric parse: trailing garbage is a parse failure, and a
// parsed NaN/Inf is rejected by the caller's isfinite check.
bool parse_double(std::string_view field, double& out) {
  field = trim(field);
  if (field.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc{} && ptr == field.data() + field.size();
}

bool parse_index(std::string_view field, std::uint32_t& out) {
  field = trim(field);
  if (field.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc{} && ptr == field.data() + field.size();
}

// Union-find over waypoint nodes; used by the reachability check.
class Components {
 public:
  explicit Components(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::size_t nearest_node(const net::WaypointGraph& graph,
                         geometry::Point2 p) {
  std::size_t best = 0;
  double best_d2 = geometry::distance_squared(p, graph.nodes[0]);
  for (std::size_t i = 1; i < graph.nodes.size(); ++i) {
    const double d2 = geometry::distance_squared(p, graph.nodes[i]);
    if (d2 < best_d2) {  // strict: ties keep the lower id
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

}  // namespace

Expected<net::WaypointGraph> read_waypoint_graph_csv(std::istream& in) {
  net::WaypointGraph graph;
  // Edge endpoints may reference nodes declared later in the file, so
  // range/duplicate checks run after the parse — with the line number
  // each edge came from.
  std::vector<std::size_t> edge_lines;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_fields(line);
    const std::string_view kind = trim(fields.front());
    if (kind == "node") {
      if (fields.size() != 3) {
        return at_line(line_no, "node record needs node,x,y");
      }
      geometry::Point2 p;
      if (!parse_double(fields[1], p.x) || !parse_double(fields[2], p.y)) {
        return at_line(line_no, "node coordinates must be numeric");
      }
      if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
        return at_line(line_no, "node coordinates must be finite");
      }
      graph.nodes.push_back(p);
    } else if (kind == "edge") {
      if (fields.size() != 3 && fields.size() != 4) {
        return at_line(line_no, "edge record needs edge,u,v[,weight]");
      }
      net::GraphEdge e;
      if (!parse_index(fields[1], e.u) || !parse_index(fields[2], e.v)) {
        return at_line(line_no, "edge endpoints must be non-negative ints");
      }
      if (e.u == e.v) {
        return at_line(line_no, "self-loop edge " + std::to_string(e.u));
      }
      if (fields.size() == 4) {
        if (!parse_double(fields[3], e.weight)) {
          return at_line(line_no, "edge weight must be numeric");
        }
        if (!std::isfinite(e.weight) || e.weight <= 0.0) {
          return at_line(line_no, "edge weight must be finite and positive");
        }
      } else {
        e.weight = 0.0;  // filled with the chord length after the parse
      }
      graph.edges.push_back(e);
      edge_lines.push_back(line_no);
    } else if (kind == "obstacle") {
      if (fields.size() != 5) {
        return at_line(line_no, "obstacle record needs obstacle,x1,y1,x2,y2");
      }
      geometry::Segment s;
      if (!parse_double(fields[1], s.a.x) || !parse_double(fields[2], s.a.y) ||
          !parse_double(fields[3], s.b.x) || !parse_double(fields[4], s.b.y)) {
        return at_line(line_no, "obstacle coordinates must be numeric");
      }
      if (!std::isfinite(s.a.x) || !std::isfinite(s.a.y) ||
          !std::isfinite(s.b.x) || !std::isfinite(s.b.y)) {
        return at_line(line_no, "obstacle coordinates must be finite");
      }
      graph.obstacles.push_back(s);
    } else {
      return at_line(line_no,
                     "unknown record '" + std::string(kind) +
                         "' (expected node/edge/obstacle)");
    }
  }
  if (graph.nodes.empty()) {
    return Fault{FaultKind::kInvalidInput, "graph has no nodes"};
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> seen;
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    auto& e = graph.edges[i];
    const std::size_t line = edge_lines[i];
    if (e.u >= graph.nodes.size() || e.v >= graph.nodes.size()) {
      return at_line(line, "dangling edge endpoint (graph has " +
                               std::to_string(graph.nodes.size()) +
                               " nodes)");
    }
    const std::pair<std::uint32_t, std::uint32_t> key =
        std::minmax(e.u, e.v);
    const auto [it, inserted] = seen.emplace(key, line);
    if (!inserted) {
      return at_line(line, "duplicate edge " + std::to_string(key.first) +
                               "-" + std::to_string(key.second) +
                               " (first at line " +
                               std::to_string(it->second) + ")");
    }
    if (e.weight == 0.0) {
      e.weight = geometry::distance(graph.nodes[e.u], graph.nodes[e.v]);
      if (e.weight <= 0.0) {
        return at_line(line, "defaulted weight is zero (coincident nodes " +
                                 std::to_string(e.u) + " and " +
                                 std::to_string(e.v) + ")");
      }
    }
  }
  return graph;
}

Expected<net::WaypointGraph> read_waypoint_graph_csv_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Fault{FaultKind::kInvalidInput,
                 "cannot open waypoint graph file: " + path};
  }
  return read_waypoint_graph_csv(in);
}

void write_waypoint_graph_csv(const net::WaypointGraph& graph,
                              std::ostream& out) {
  out << "# waypoint graph: node,x,y | edge,u,v,weight | "
         "obstacle,x1,y1,x2,y2\n";
  for (const auto& n : graph.nodes) {
    out << "node," << n.x << "," << n.y << "\n";
  }
  for (const auto& e : graph.edges) {
    out << "edge," << e.u << "," << e.v << "," << e.weight << "\n";
  }
  for (const auto& o : graph.obstacles) {
    out << "obstacle," << o.a.x << "," << o.a.y << "," << o.b.x << ","
        << o.b.y << "\n";
  }
}

Expected<bool> validate_waypoint_graph(
    const net::WaypointGraph& graph,
    std::span<const geometry::Point2> sensors, geometry::Point2 depot) {
  if (graph.nodes.empty()) {
    return Fault{FaultKind::kInvalidInput, "graph has no nodes"};
  }
  Components components(graph.nodes.size());
  for (const auto& e : graph.edges) {
    components.unite(e.u, e.v);
  }
  const std::size_t depot_root =
      components.find(nearest_node(graph, depot));
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    const std::size_t node = nearest_node(graph, sensors[i]);
    if (components.find(node) != depot_root) {
      return Fault{FaultKind::kDisconnected,
                   "sensor " + std::to_string(i) +
                       " snaps to waypoint " + std::to_string(node) +
                       ", unreachable from the depot's graph component",
                   i};
    }
  }
  return true;
}

}  // namespace bc::io
