// Charging-plan export and hardened re-import.
//
// Serialises a planned tour (and optionally its schedule/metrics) to JSON
// so downstream tooling — robot controllers, plotters, notebooks — can
// consume plans without linking the library. The read path accepts those
// documents back (e.g. a controller replaying a previously exported
// mission) and treats them as untrusted input: every malformed byte maps
// to a line-numbered support::Fault instead of undefined planner state.

#ifndef BUNDLECHARGE_IO_PLAN_IO_H_
#define BUNDLECHARGE_IO_PLAN_IO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sim/evaluate.h"
#include "support/expected.h"
#include "tour/plan.h"

namespace bc::io {

// JSON document: algorithm, depot, stops (position, members, stop time
// under the given policy), and the evaluated metrics block. The output is
// deterministic and pretty-printed with two-space indentation.
std::string plan_to_json(const net::Deployment& deployment,
                         const tour::ChargingPlan& plan,
                         const sim::EvaluationConfig& evaluation);

// Writes plan_to_json to a file; false on I/O failure.
bool write_plan_json_file(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const sim::EvaluationConfig& evaluation,
                          const std::string& path);

// A plan read back from a plan_to_json document. Stop times are carried
// alongside the plan (the plan model itself derives them from a schedule
// policy, but the exported document pins the times that were actually
// planned). stop_times_s is parallel to plan.stops.
struct LoadedPlan {
  tour::ChargingPlan plan;
  std::vector<double> stop_times_s;
};

// Parses a plan document produced by plan_to_json. Hardened against
// malformed and corrupted input, every rejection a kInvalidInput fault
// with the offending line number:
//   - non-finite numbers anywhere (NaN/Inf poison geometry downstream;
//     "1e999" overflows to Inf and is rejected the same way),
//   - wrong field counts (depot/position must be exactly [x, y]),
//   - missing or wrongly-typed required keys,
//   - negative stop times, non-integer member ids,
//   - member indices out of range for `expected_sensors`, and sensors
//     assigned to zero or multiple stops (exported plans are partitions;
//     anything else is corruption). Pass expected_sensors = 0 to skip the
//     partition check when the target deployment is unknown.
// The "metrics" block is derived data and is ignored on read.
support::Expected<LoadedPlan> read_plan_json(const std::string& text,
                                             std::size_t expected_sensors);

// File variant; cannot-open is reported as kInvalidInput.
support::Expected<LoadedPlan> read_plan_json_file(
    const std::string& path, std::size_t expected_sensors);

}  // namespace bc::io

#endif  // BUNDLECHARGE_IO_PLAN_IO_H_
