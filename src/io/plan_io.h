// Charging-plan export.
//
// Serialises a planned tour (and optionally its schedule/metrics) to JSON
// so downstream tooling — robot controllers, plotters, notebooks — can
// consume plans without linking the library. Writing only; plans are an
// output artifact, not an input.

#ifndef BUNDLECHARGE_IO_PLAN_IO_H_
#define BUNDLECHARGE_IO_PLAN_IO_H_

#include <string>

#include "sim/evaluate.h"
#include "tour/plan.h"

namespace bc::io {

// JSON document: algorithm, depot, stops (position, members, stop time
// under the given policy), and the evaluated metrics block. The output is
// deterministic and pretty-printed with two-space indentation.
std::string plan_to_json(const net::Deployment& deployment,
                         const tour::ChargingPlan& plan,
                         const sim::EvaluationConfig& evaluation);

// Writes plan_to_json to a file; false on I/O failure.
bool write_plan_json_file(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const sim::EvaluationConfig& evaluation,
                          const std::string& path);

}  // namespace bc::io

#endif  // BUNDLECHARGE_IO_PLAN_IO_H_
