#include "io/plan_io.h"

#include <cstdio>
#include <fstream>
#include <string>

namespace bc::io {

namespace {

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::string plan_to_json(const net::Deployment& deployment,
                         const tour::ChargingPlan& plan,
                         const sim::EvaluationConfig& evaluation) {
  const std::vector<double> times = sim::schedule_stop_times(
      deployment, plan, evaluation.charging, evaluation.policy);
  const sim::PlanMetrics metrics =
      sim::evaluate_plan(deployment, plan, evaluation);

  std::string out = "{\n";
  out += "  \"algorithm\": \"" + plan.algorithm + "\",\n";
  out += "  \"schedule_policy\": \"" +
         std::string(sim::to_string(evaluation.policy)) + "\",\n";
  out += "  \"depot\": [" + num(plan.depot.x) + ", " + num(plan.depot.y) +
         "],\n";
  out += "  \"stops\": [\n";
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    const tour::Stop& stop = plan.stops[i];
    out += "    {\"position\": [" + num(stop.position.x) + ", " +
           num(stop.position.y) + "], \"stop_time_s\": " + num(times[i]) +
           ", \"members\": [";
    for (std::size_t j = 0; j < stop.members.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(stop.members[j]);
    }
    out += "]}";
    out += (i + 1 < plan.stops.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"metrics\": {\n";
  out += "    \"num_stops\": " + std::to_string(metrics.num_stops) + ",\n";
  out += "    \"tour_length_m\": " + num(metrics.tour_length_m) + ",\n";
  out += "    \"move_energy_j\": " + num(metrics.move_energy_j) + ",\n";
  out += "    \"charge_time_s\": " + num(metrics.charge_time_s) + ",\n";
  out += "    \"charge_energy_j\": " + num(metrics.charge_energy_j) + ",\n";
  out += "    \"total_energy_j\": " + num(metrics.total_energy_j) + ",\n";
  out += "    \"total_time_s\": " + num(metrics.total_time_s) + ",\n";
  out +=
      "    \"min_demand_fraction\": " + num(metrics.min_demand_fraction) +
      "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

bool write_plan_json_file(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const sim::EvaluationConfig& evaluation,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << plan_to_json(deployment, plan, evaluation);
  return static_cast<bool>(file);
}

}  // namespace bc::io
