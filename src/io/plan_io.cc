#include "io/plan_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace bc::io {

namespace {

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal line-tracking JSON reader for the plan document subset: objects,
// arrays, strings, and finite numbers (no bool/null — the writer never
// emits them). Every parse and validation error carries the 1-based line
// it was detected on, mirroring deployment_io's CSV hardening.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber };
  Type type = Type::kObject;
  std::size_t line = 0;  // line the value starts on
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  // objects
  std::vector<JsonValue> items;                            // arrays

  const JsonValue* find(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole document into `out`; on failure `error()` holds a
  // line-prefixed message.
  bool parse(JsonValue& out) {
    if (!parse_value(out, /*depth=*/0)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr std::size_t kMaxDepth = 32;

  bool fail(const std::string& what) {
    error_ = "line " + std::to_string(line_) + ": " + what;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      // The writer never emits escapes, control characters, or NULs in
      // strings; reading them back would mean a corrupted document.
      if (c == '\\' || c == '\n' || c == '\0') {
        return fail("unsupported escape or control character in string");
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      return fail("malformed number '" + token + "'");
    }
    // strtod maps overflow ("1e999") to Inf without an error; non-finite
    // values poison every downstream computation, so reject here.
    if (!std::isfinite(value)) {
      return fail("non-finite number '" + token + "'");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = value;
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    out.line = line_;
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.text);
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.type = JsonValue::Type::kObject;
    if (!expect('{')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.type = JsonValue::Type::kArray;
    if (!expect('[')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::string error_;
};

support::Fault invalid(std::size_t line, const std::string& what) {
  return support::Fault{support::FaultKind::kInvalidInput,
                        "line " + std::to_string(line) + ": " + what};
}

// Reads an [x, y] pair, rejecting wrong arity and non-number elements
// (non-finite numbers were already rejected by the tokenizer).
support::Expected<geometry::Point2> read_point(const JsonValue& value,
                                               const std::string& what) {
  if (value.type != JsonValue::Type::kArray || value.items.size() != 2) {
    return invalid(value.line, what + " must be a 2-element [x, y] array");
  }
  for (const JsonValue& item : value.items) {
    if (item.type != JsonValue::Type::kNumber) {
      return invalid(item.line, what + " coordinate is not a number");
    }
  }
  return geometry::Point2{value.items[0].number, value.items[1].number};
}

}  // namespace

std::string plan_to_json(const net::Deployment& deployment,
                         const tour::ChargingPlan& plan,
                         const sim::EvaluationConfig& evaluation) {
  const std::vector<double> times = sim::schedule_stop_times(
      deployment, plan, evaluation.charging, evaluation.policy);
  const sim::PlanMetrics metrics =
      sim::evaluate_plan(deployment, plan, evaluation);

  std::string out = "{\n";
  out += "  \"algorithm\": \"" + plan.algorithm + "\",\n";
  out += "  \"schedule_policy\": \"" +
         std::string(sim::to_string(evaluation.policy)) + "\",\n";
  out += "  \"depot\": [" + num(plan.depot.x) + ", " + num(plan.depot.y) +
         "],\n";
  out += "  \"stops\": [\n";
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    const tour::Stop& stop = plan.stops[i];
    out += "    {\"position\": [" + num(stop.position.x) + ", " +
           num(stop.position.y) + "], \"stop_time_s\": " + num(times[i]) +
           ", \"members\": [";
    for (std::size_t j = 0; j < stop.members.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(stop.members[j]);
    }
    out += "]}";
    out += (i + 1 < plan.stops.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"metrics\": {\n";
  out += "    \"num_stops\": " + std::to_string(metrics.num_stops) + ",\n";
  out += "    \"tour_length_m\": " + num(metrics.tour_length_m) + ",\n";
  out += "    \"move_energy_j\": " + num(metrics.move_energy_j) + ",\n";
  out += "    \"charge_time_s\": " + num(metrics.charge_time_s) + ",\n";
  out += "    \"charge_energy_j\": " + num(metrics.charge_energy_j) + ",\n";
  out += "    \"total_energy_j\": " + num(metrics.total_energy_j) + ",\n";
  out += "    \"total_time_s\": " + num(metrics.total_time_s) + ",\n";
  out +=
      "    \"min_demand_fraction\": " + num(metrics.min_demand_fraction) +
      "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

bool write_plan_json_file(const net::Deployment& deployment,
                          const tour::ChargingPlan& plan,
                          const sim::EvaluationConfig& evaluation,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << plan_to_json(deployment, plan, evaluation);
  return static_cast<bool>(file);
}

support::Expected<LoadedPlan> read_plan_json(const std::string& text,
                                             std::size_t expected_sensors) {
  if (text.find('\0') != std::string::npos) {
    return support::Fault{support::FaultKind::kInvalidInput,
                          "plan document contains an embedded NUL byte"};
  }
  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root)) {
    return support::Fault{support::FaultKind::kInvalidInput, parser.error()};
  }
  if (root.type != JsonValue::Type::kObject) {
    return invalid(root.line, "plan document must be a JSON object");
  }

  LoadedPlan loaded;

  const JsonValue* algorithm = root.find("algorithm");
  if (algorithm == nullptr || algorithm->type != JsonValue::Type::kString) {
    return invalid(root.line, "missing string field \"algorithm\"");
  }
  loaded.plan.algorithm = algorithm->text;

  const JsonValue* depot = root.find("depot");
  if (depot == nullptr) return invalid(root.line, "missing field \"depot\"");
  auto depot_point = read_point(*depot, "\"depot\"");
  if (!depot_point.has_value()) return depot_point.fault();
  loaded.plan.depot = depot_point.value();

  const JsonValue* stops = root.find("stops");
  if (stops == nullptr || stops->type != JsonValue::Type::kArray) {
    return invalid(root.line, "missing array field \"stops\"");
  }

  // Tracks which sensor each member id was claimed by, to diagnose
  // double assignment; sized lazily when expected_sensors is 0.
  std::vector<bool> claimed(expected_sensors, false);
  for (const JsonValue& entry : stops->items) {
    if (entry.type != JsonValue::Type::kObject) {
      return invalid(entry.line, "stop entry is not an object");
    }
    tour::Stop stop;

    const JsonValue* position = entry.find("position");
    if (position == nullptr) {
      return invalid(entry.line, "stop is missing \"position\"");
    }
    auto point = read_point(*position, "stop \"position\"");
    if (!point.has_value()) return point.fault();
    stop.position = point.value();

    const JsonValue* stop_time = entry.find("stop_time_s");
    if (stop_time == nullptr ||
        stop_time->type != JsonValue::Type::kNumber) {
      return invalid(entry.line, "stop is missing numeric \"stop_time_s\"");
    }
    if (stop_time->number < 0.0) {
      return invalid(stop_time->line, "negative stop time " +
                                          std::to_string(stop_time->number));
    }

    const JsonValue* members = entry.find("members");
    if (members == nullptr || members->type != JsonValue::Type::kArray) {
      return invalid(entry.line, "stop is missing array \"members\"");
    }
    for (const JsonValue& member : members->items) {
      if (member.type != JsonValue::Type::kNumber ||
          member.number != std::floor(member.number) ||
          member.number < 0.0) {
        return invalid(member.line,
                       "member id is not a non-negative integer");
      }
      const auto id = static_cast<std::size_t>(member.number);
      if (expected_sensors > 0) {
        if (id >= expected_sensors) {
          return invalid(member.line,
                         "member index " + std::to_string(id) +
                             " out of range for " +
                             std::to_string(expected_sensors) + " sensors");
        }
        if (claimed[id]) {
          return invalid(member.line, "sensor " + std::to_string(id) +
                                          " assigned to more than one stop");
        }
        claimed[id] = true;
      }
      stop.members.push_back(id);
    }

    loaded.plan.stops.push_back(std::move(stop));
    loaded.stop_times_s.push_back(stop_time->number);
  }

  if (expected_sensors > 0) {
    for (std::size_t id = 0; id < expected_sensors; ++id) {
      if (!claimed[id]) {
        return support::Fault{
            support::FaultKind::kInvalidInput,
            "sensor " + std::to_string(id) +
                " is not assigned to any stop (plan is not a partition of " +
                std::to_string(expected_sensors) + " sensors)"};
      }
    }
  }
  return loaded;
}

support::Expected<LoadedPlan> read_plan_json_file(
    const std::string& path, std::size_t expected_sensors) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return support::Fault{support::FaultKind::kInvalidInput,
                          "cannot open '" + path + "'"};
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return read_plan_json(contents.str(), expected_sensors);
}

}  // namespace bc::io
