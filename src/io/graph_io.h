// Waypoint-graph persistence and validation.
//
// Graph worlds come from site surveys and road-network extracts — i.e.
// from outside the trust boundary — so this reader rejects malformed
// input with structured, line-numbered faults instead of asserting:
// NaN/Inf coordinates or weights, self-loops, dangling edge endpoints and
// duplicate edges are all kInvalidInput; a graph that cannot reach every
// sensor (or the depot) from one connected component is kDisconnected.
//
// Format: line-oriented CSV, one record per line. Blank lines and lines
// starting with '#' are skipped.
//
//   node,<x>,<y>                 waypoint; ids are assigned 0,1,2,... in
//                                order of appearance
//   edge,<u>,<v>[,<weight>]      undirected; weight defaults to the
//                                Euclidean chord length between u and v
//   obstacle,<x1>,<y1>,<x2>,<y2> wall segment blocking line of sight
//
// See examples/campus_graph.csv for a worked example.

#ifndef BUNDLECHARGE_IO_GRAPH_IO_H_
#define BUNDLECHARGE_IO_GRAPH_IO_H_

#include <iosfwd>
#include <span>
#include <string>

#include "net/metric.h"
#include "support/expected.h"

namespace bc::io {

// Parses and validates a waypoint-graph CSV. Faults are kInvalidInput
// with messages of the form "line N: <what>".
support::Expected<net::WaypointGraph> read_waypoint_graph_csv(
    std::istream& in);

// File variant; an unopenable file is kInvalidInput.
support::Expected<net::WaypointGraph> read_waypoint_graph_csv_file(
    const std::string& path);

// Writes the graph back out in the same format (round-trips through
// read_waypoint_graph_csv).
void write_waypoint_graph_csv(const net::WaypointGraph& graph,
                              std::ostream& out);

// Deployment-aware reachability check: every sensor and the depot must
// snap (nearest waypoint, lower-id tie-break) into one connected graph
// component. Returns true when reachable; a kDisconnected fault naming
// the first offending sensor otherwise. Run this once at load time —
// GraphMetric itself stays total and falls back to chord distances
// rather than crash, so skipping validation degrades instead of failing.
support::Expected<bool> validate_waypoint_graph(
    const net::WaypointGraph& graph,
    std::span<const geometry::Point2> sensors, geometry::Point2 depot);

}  // namespace bc::io

#endif  // BUNDLECHARGE_IO_GRAPH_IO_H_
