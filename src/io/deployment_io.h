// Deployment persistence.
//
// Real users bring their own sensor coordinates (site surveys, testbeds).
// This module reads/writes deployments as simple CSV — one `x,y` row per
// sensor with an optional header — plus a small sidecar-free convention
// for the field/depot/demand (passed explicitly, since they are
// experiment configuration rather than survey data).

#ifndef BUNDLECHARGE_IO_DEPLOYMENT_IO_H_
#define BUNDLECHARGE_IO_DEPLOYMENT_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "net/deployment.h"

namespace bc::io {

// Parses `x,y` rows (optionally with a leading "x,y" header; blank lines
// and lines starting with '#' are skipped). Returns nullopt and fills
// `error` on malformed input.
std::optional<std::vector<geometry::Point2>> read_positions_csv(
    std::istream& in, std::string* error = nullptr);

// File variant; nullopt when the file cannot be opened or parsed.
std::optional<std::vector<geometry::Point2>> read_positions_csv_file(
    const std::string& path, std::string* error = nullptr);

// Writes "x,y" header plus one row per sensor.
void write_positions_csv(const net::Deployment& deployment,
                         std::ostream& out);
bool write_positions_csv_file(const net::Deployment& deployment,
                              const std::string& path);

// Builds a deployment from loaded positions (field = bounding box of the
// positions expanded to the depot, as explicit_deployment does).
// Preconditions: !positions.empty(), demand_j > 0.
net::Deployment deployment_from_positions(
    std::vector<geometry::Point2> positions, geometry::Point2 depot,
    double demand_j);

}  // namespace bc::io

#endif  // BUNDLECHARGE_IO_DEPLOYMENT_IO_H_
