// Incremental replanning: solve the delta, not the instance.
//
// Real charging services see streams of near-duplicate deployments —
// sensors die, join, or drift between requests — and a request that
// differs from an already-served deployment by a handful of sensors
// should not pay for a full cold solve. This module is the service-side
// fast path:
//
//   base store    every non-degraded cold solve is remembered (request,
//                 plan, objective) in a bounded FIFO, indexed by a
//                 locality-sensitive min-hash sketch over quantised
//                 sensor positions. The canonical fingerprint anchors
//                 exact identity; the sketch finds the *nearest* base
//                 when fingerprints differ.
//   diff          base and incoming positions are matched bit-exactly
//                 (the same hexfloat semantics the fingerprint uses),
//                 yielding added / removed sensors and an id map for the
//                 survivors. A moved sensor is one removal plus one
//                 addition.
//   classify      the diff is patchable when it is small (|added| +
//                 |removed| <= max_diff_sensors) and local (every added
//                 sensor within patch_radius_factor * r of a base stop
//                 anchor or of a removed sensor); anything else falls
//                 back to the cold path.
//   patch         stops whose patch-radius neighbourhood intersects the
//                 diff are invalidated; their surviving members plus the
//                 added sensors form the hole, which is re-covered by
//                 bundle::cover_subset (budgeted exact-cover/greedy
//                 ladder) and spliced back into the tour by
//                 tour::splice_stops (cheapest insertion + 2-opt).
//   guard         the patched plan must partition the new deployment and
//                 its objective (total energy, the paper's Eq. 3) must
//                 stay within fallback_ratio of the base objective;
//                 otherwise the caller cold-solves, so served plans never
//                 regress past the configured bound.
//
// Everything here is a pure, deterministic function of (request, base,
// options): budgets are node caps, never wall clocks, so a patched plan
// is byte-identical across runs and thread counts.

#ifndef BUNDLECHARGE_SERVICE_INCREMENTAL_H_
#define BUNDLECHARGE_SERVICE_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/profiles.h"
#include "geometry/point.h"
#include "net/deployment.h"
#include "net/sensor.h"
#include "service/wire.h"
#include "support/deadline.h"
#include "tour/plan.h"

namespace bc::service {

struct IncrementalOptions {
  // Diff size bound: |added| + |removed| at most this (a moved sensor
  // counts twice). Beyond it, a cold solve is usually cheaper than the
  // cascade of invalidated bundles.
  std::size_t max_diff_sensors = 40;
  // Served plans never regress past this: a patched plan whose total
  // energy exceeds fallback_ratio x the base objective is discarded and
  // the request cold-solves.
  double fallback_ratio = 1.25;
  // Invalidation / locality radius as a multiple of the bundle radius r:
  // a stop is invalidated when a diff position is within
  // patch_radius_factor * r of its anchor (2r = any bundle that could
  // share a candidate circle with the diff).
  double patch_radius_factor = 2.0;
  // Node budget for the hole re-cover (bundle::cover_subset). Holes are
  // small (<= max_diff_sensors plus displaced bundle members), so a tight
  // cap keeps the patch an order of magnitude cheaper than a cold solve;
  // the anytime search returns its best incumbent at the cap and the
  // objective gate below catches any cover that came out too loose.
  std::size_t node_budget = 1'000;
  // Base store bound (FIFO eviction) and sketch shape.
  std::size_t max_bases = 64;
  std::size_t sketch_hashes = 16;
  // Sketch slots that must agree before a base is even diffed; below
  // this the deployments are unrelated and the exact diff is a waste.
  std::size_t min_sketch_overlap = 8;
};

// Min-hash sketch of the occupied-cell set: positions quantised to cells
// of side `cell_size`, cell coordinates hashed (SplitMix64), and the
// `hashes` smallest kept in ascending order. Deployments differing by a
// few sensors share almost every cell, so their sketches agree on most
// slots; unrelated deployments agree on almost none.
std::vector<std::uint64_t> position_sketch(
    std::span<const geometry::Point2> positions, double cell_size,
    std::size_t hashes);

// Number of common values between two ascending sketches.
std::size_t sketch_overlap(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b);

// A remembered cold solve: the full request (positions anchor the diff),
// the served plan, and its evaluated objective.
struct BaseEntry {
  std::string key;  // hash_fingerprint(canonical_fingerprint(request))
  PlanRequest request;
  tour::ChargingPlan plan;
  double objective_j = 0.0;  // sim::evaluate_plan total_energy_j
  double radius_m = 0.0;     // resolved bundle radius the plan was built with
  std::vector<std::uint64_t> sketch;
};

// Bounded FIFO of bases with sketch-nearest lookup. Only *cold* solves
// are registered — patched plans never become bases, so repair error can
// not compound across a drifting request stream. Not thread-safe; the
// server serialises access.
class BaseStore {
 public:
  explicit BaseStore(IncrementalOptions options)
      : options_(std::move(options)) {}

  // Registers a base; an existing entry with the same key is refreshed
  // (moved to the back of the FIFO).
  void insert(BaseEntry entry);

  // The nearest compatible base: identical profile/algorithm/radius/
  // demand/depot (any of those changing invalidates every bundle), best
  // sketch overlap >= min_sketch_overlap; ties break toward the most
  // recently inserted base. nullptr when nothing qualifies. The pointer
  // is invalidated by the next insert.
  const BaseEntry* nearest(const PlanRequest& request,
                           std::span<const std::uint64_t> sketch) const;

  std::size_t size() const { return entries_.size(); }

 private:
  IncrementalOptions options_;
  std::deque<BaseEntry> entries_;
};

// Structured diff between a base request and an incoming one, matched by
// exact position bits. `base_to_new[i]` maps base sensor i to its new id,
// or kUnmatched when sensor i disappeared.
struct RequestDiff {
  static constexpr net::SensorId kUnmatched =
      static_cast<net::SensorId>(-1);
  std::vector<net::SensorId> base_to_new;
  std::vector<net::SensorId> added;    // new ids with no base twin
  std::vector<net::SensorId> removed;  // base ids with no new twin
  std::size_t size() const { return added.size() + removed.size(); }
};

RequestDiff diff_requests(const PlanRequest& base, const PlanRequest& request);

enum class PatchVerdict {
  kPatched,            // plan is valid and within the fallback bound
  kDiffTooLarge,       // |added| + |removed| > max_diff_sensors
  kDiffNotLocal,       // an added sensor is outside every patch radius
  kNotPartition,       // repaired plan failed the partition check
  kObjectiveRegressed  // patched objective > fallback_ratio x base
};

std::string_view to_string(PatchVerdict verdict);

struct PatchResult {
  PatchVerdict verdict = PatchVerdict::kDiffTooLarge;
  tour::ChargingPlan plan;  // meaningful iff verdict == kPatched
  double objective_j = 0.0;
  double base_objective_j = 0.0;
  std::size_t diff_added = 0;
  std::size_t diff_removed = 0;
  std::size_t stops_invalidated = 0;
  std::size_t stops_patched = 0;  // repaired stops spliced back in
};

// The incremental fast path: diff, classify, and — when patchable —
// repair base.plan into a plan for `request`. `deployment` must be the
// deployment built from request.positions; `profile` the resolved profile
// (its planner config supplies the generator knobs, its evaluation config
// the objective). Deterministic: two calls with equal inputs produce
// byte-identical plans at any BC_THREADS.
PatchResult patch_plan(const net::Deployment& deployment,
                       const PlanRequest& request, const BaseEntry& base,
                       const core::Profile& profile,
                       const IncrementalOptions& options,
                       support::BudgetMeter* meter = nullptr);

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_INCREMENTAL_H_
