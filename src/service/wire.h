// Wire protocol of the bundlecharged planning daemon.
//
// Hand-rolled HTTP/1.1 over localhost — no third-party networking or JSON
// dependency. The subset is deliberately small and strict: one request per
// connection, Content-Length bodies only (no chunked encoding), bounded
// header and body sizes, and every malformed byte mapped to a structured
// fault instead of undefined parser state. Requests are treated as hostile
// input; responses are generated, never parsed back by the server.
//
// Plan request bodies use a line-oriented `key=value` form (schema in
// DESIGN.md §11) rather than JSON: it is trivially canonicalisable for
// cache fingerprinting and keeps the hardened-parsing surface small.
// Responses are JSON, embedding io::plan_to_json documents unchanged.

#ifndef BUNDLECHARGE_SERVICE_WIRE_H_
#define BUNDLECHARGE_SERVICE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "net/sensor.h"
#include "support/expected.h"

namespace bc::service {

// Parser bounds. A localhost planning service still reads untrusted
// bytes: a runaway header block or a multi-gigabyte body must fail fast
// instead of buffering without bound.
struct WireLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  std::size_t max_positions = 200000;
};

struct HttpRequest {
  std::string method;
  std::string path;
  // Header names lower-cased at parse time; values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First value for `name` (already lower-case), or "" when absent.
  std::string_view header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First value for `name` (lower-case after parsing), or "" when absent.
  std::string_view header(std::string_view name) const;
};

// Reads one HTTP request from `fd` (EINTR-safe, bounded by the socket's
// receive timeout and `limits`). Faults are kInvalidInput: torn/oversized
// header block, missing/invalid Content-Length on bodied methods,
// unsupported Transfer-Encoding, EOF mid-body.
support::Expected<HttpRequest> read_http_request(int fd,
                                                 const WireLimits& limits);

// Serialises a response with Content-Length and Connection: close
// appended (one request per connection keeps lifetime reasoning trivial).
std::string serialize_response(const HttpResponse& response);

// Client-side helpers (tests, the throughput bench, tools).
std::string serialize_request(const std::string& method,
                              const std::string& path,
                              const std::string& body);
support::Expected<HttpResponse> read_http_response(int fd,
                                                   const WireLimits& limits);

// JSON string escaping for generated response bodies.
std::string json_escape(std::string_view text);

// --- Plan request schema ---------------------------------------------------

// What arrives in a POST /v1/plan or /v1/replan body. The endpoint picks
// the mode; the body carries the same `key=value` lines for both, with the
// replan-only keys ignored by /v1/plan. See DESIGN.md §11 for the schema.
struct PlanRequest {
  std::string profile;    // "" = icdcs2019
  std::string algorithm;  // "" = BC
  double radius_m = 0.0;  // <= 0 = profile default
  double deadline_ms = 0.0;  // <= 0 = server default (possibly none)
  double demand_j = 2.0;
  geometry::Point2 depot{0.0, 0.0};
  std::vector<geometry::Point2> positions;

  // Replan-only: where the charger currently is, and which sensors are
  // still owed energy (ids into `positions`, strictly ascending, with
  // positive deficits). Empty `remaining` means every sensor at full
  // demand.
  geometry::Point2 current{0.0, 0.0};
  std::vector<net::SensorId> remaining;
  std::vector<double> deficits_j;

  // Test hook: the worker sleeps this long before solving. Only honoured
  // when the server runs with enable_test_hooks (chaos tests use it to
  // make overload scenarios deterministic); rejected otherwise.
  double stall_ms = 0.0;
};

// Parses a request body. Hardened: unknown keys, duplicate keys,
// non-finite or out-of-range numbers, malformed coordinate pairs,
// unsorted/duplicate remaining ids, and position counts beyond
// `limits.max_positions` are all kInvalidInput faults naming the key.
support::Expected<PlanRequest> parse_plan_request(std::string_view body,
                                                  const WireLimits& limits);

// Canonical fingerprint of everything that affects a /v1/plan result:
// profile, algorithm, radius, demand, depot, and every position, all
// doubles rendered as C99 hexfloats (bit-exact). Two requests with equal
// fingerprints are guaranteed to produce byte-identical plans (planning
// is deterministic), which is what makes the plan cache sound.
std::string canonical_fingerprint(const PlanRequest& request);

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_WIRE_H_
