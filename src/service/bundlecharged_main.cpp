// bundlecharged — the planning daemon. See src/service/server.h for the
// architecture and DESIGN.md §11 for the wire protocol.
//
//   bundlecharged [--port N] [--workers N] [--queue-capacity N]
//                 [--cache PATH] [--cache-max-entries N]
//                 [--default-deadline-ms N] [--io-timeout-ms N]
//                 [--watchdog-grace N] [--no-watchdog]
//                 [--no-incremental] [--no-batching]
//                 [--max-diff N] [--fallback-ratio-pct N]
//                 [--batch-max-waiters N] [--enable-test-hooks]
//                 [--trace-out PATH] [--metric-graph PATH]
//
// Prints "bundlecharged listening on 127.0.0.1:<port>" once serving (tools
// and tests parse this line to learn an ephemeral port), then runs until
// SIGINT/SIGTERM, which triggers an orderly drain-and-stop.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "service/server.h"
#include "support/socket.h"

namespace {

std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }

bool parse_flag_value(int argc, char** argv, int* i, const char* name,
                      std::string* out) {
  if (std::string(argv[*i]) != name) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "bundlecharged: %s requires a value\n", name);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

long parse_long_or_die(const std::string& text, const char* name) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    std::fprintf(stderr, "bundlecharged: bad value for %s: '%s'\n", name,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: bundlecharged [--port N] [--workers N] [--queue-capacity N]\n"
      "                     [--cache PATH] [--cache-max-entries N]\n"
      "                     [--default-deadline-ms N] [--io-timeout-ms N]\n"
      "                     [--watchdog-grace N] [--no-watchdog]\n"
      "                     [--no-incremental] [--no-batching]\n"
      "                     [--max-diff N] [--fallback-ratio-pct N]\n"
      "                     [--batch-max-waiters N] [--enable-test-hooks]\n"
      "                     [--trace-out PATH] [--metric-graph PATH]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bc::service::ServerOptions options;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag_value(argc, argv, &i, "--port", &value)) {
      const long port = parse_long_or_die(value, "--port");
      if (port > 65535) {
        std::fprintf(stderr, "bundlecharged: --port out of range\n");
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (parse_flag_value(argc, argv, &i, "--workers", &value)) {
      options.workers =
          static_cast<std::size_t>(parse_long_or_die(value, "--workers"));
    } else if (parse_flag_value(argc, argv, &i, "--queue-capacity", &value)) {
      options.queue_capacity = static_cast<std::size_t>(
          parse_long_or_die(value, "--queue-capacity"));
    } else if (parse_flag_value(argc, argv, &i, "--cache", &value)) {
      options.cache_path = value;
    } else if (parse_flag_value(argc, argv, &i, "--cache-max-entries",
                                &value)) {
      options.cache_limits.max_entries = static_cast<std::size_t>(
          parse_long_or_die(value, "--cache-max-entries"));
    } else if (parse_flag_value(argc, argv, &i, "--watchdog-grace", &value)) {
      const long grace = parse_long_or_die(value, "--watchdog-grace");
      if (grace == 0) {
        std::fprintf(stderr,
                     "bundlecharged: --watchdog-grace must be positive "
                     "(use --no-watchdog to disable)\n");
        return 2;
      }
      options.watchdog_grace = static_cast<double>(grace);
    } else if (std::string(argv[i]) == "--no-watchdog") {
      options.enable_watchdog = false;
    } else if (parse_flag_value(argc, argv, &i, "--default-deadline-ms",
                                &value)) {
      options.default_deadline_s =
          static_cast<double>(
              parse_long_or_die(value, "--default-deadline-ms")) /
          1000.0;
    } else if (parse_flag_value(argc, argv, &i, "--io-timeout-ms", &value)) {
      options.io_timeout_s =
          static_cast<double>(parse_long_or_die(value, "--io-timeout-ms")) /
          1000.0;
    } else if (std::string(argv[i]) == "--no-incremental") {
      options.enable_incremental = false;
    } else if (std::string(argv[i]) == "--no-batching") {
      options.enable_batching = false;
    } else if (parse_flag_value(argc, argv, &i, "--max-diff", &value)) {
      options.incremental.max_diff_sensors =
          static_cast<std::size_t>(parse_long_or_die(value, "--max-diff"));
    } else if (parse_flag_value(argc, argv, &i, "--fallback-ratio-pct",
                                &value)) {
      // Integer percent (125 = 1.25x) keeps the flag grammar integral.
      const long pct = parse_long_or_die(value, "--fallback-ratio-pct");
      if (pct < 100) {
        std::fprintf(stderr,
                     "bundlecharged: --fallback-ratio-pct must be >= 100\n");
        return 2;
      }
      options.incremental.fallback_ratio = static_cast<double>(pct) / 100.0;
    } else if (parse_flag_value(argc, argv, &i, "--batch-max-waiters",
                                &value)) {
      options.batch_max_waiters = static_cast<std::size_t>(
          parse_long_or_die(value, "--batch-max-waiters"));
    } else if (std::string(argv[i]) == "--enable-test-hooks") {
      options.enable_test_hooks = true;
    } else if (parse_flag_value(argc, argv, &i, "--trace-out", &value)) {
      trace_path = value;
    } else if (parse_flag_value(argc, argv, &i, "--metric-graph", &value)) {
      options.metric_graph_path = value;
    } else if (std::string(argv[i]) == "--help" ||
               std::string(argv[i]) == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "bundlecharged: unknown flag '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  bc::support::ignore_sigpipe();

  // Install the journal before the workers exist and keep it until after
  // stop(): service spans fire from worker threads, and the journal's
  // appends are mutex-protected. Written once on orderly shutdown —
  // tools/trace_summary.py renders the service-layer funnel from it.
  std::optional<bc::obs::TraceJournal> trace_journal;
  std::optional<bc::obs::ScopedTraceJournal> trace_scope;
  if (!trace_path.empty()) {
    trace_journal.emplace();
    trace_scope.emplace(trace_journal.value());
  }

  auto server = bc::service::Server::start(options);
  if (!server.has_value()) {
    std::fprintf(stderr, "bundlecharged: %s\n",
                 server.fault().message.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::printf("bundlecharged listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.value()->port()));
  std::fflush(stdout);

  while (!g_stop_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("bundlecharged: stopping\n");
  server.value()->stop();

  if (trace_journal.has_value()) {
    trace_scope.reset();  // uninstall before serialising
    auto written = trace_journal->write(trace_path);
    if (!written.has_value()) {
      std::fprintf(stderr, "bundlecharged: trace write failed: %s\n",
                   written.fault().message.c_str());
      return 1;
    }
  }
  return 0;
}
