// bundlecharged — the planning daemon. See src/service/server.h for the
// architecture and DESIGN.md §11 for the wire protocol.
//
//   bundlecharged [--port N] [--workers N] [--queue-capacity N]
//                 [--cache PATH] [--cache-max-entries N]
//                 [--default-deadline-ms N] [--io-timeout-ms N]
//                 [--watchdog-grace N] [--no-watchdog]
//                 [--enable-test-hooks]
//
// Prints "bundlecharged listening on 127.0.0.1:<port>" once serving (tools
// and tests parse this line to learn an ephemeral port), then runs until
// SIGINT/SIGTERM, which triggers an orderly drain-and-stop.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "service/server.h"
#include "support/socket.h"

namespace {

std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }

bool parse_flag_value(int argc, char** argv, int* i, const char* name,
                      std::string* out) {
  if (std::string(argv[*i]) != name) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "bundlecharged: %s requires a value\n", name);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

long parse_long_or_die(const std::string& text, const char* name) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    std::fprintf(stderr, "bundlecharged: bad value for %s: '%s'\n", name,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: bundlecharged [--port N] [--workers N] [--queue-capacity N]\n"
      "                     [--cache PATH] [--cache-max-entries N]\n"
      "                     [--default-deadline-ms N] [--io-timeout-ms N]\n"
      "                     [--watchdog-grace N] [--no-watchdog]\n"
      "                     [--enable-test-hooks]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bc::service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag_value(argc, argv, &i, "--port", &value)) {
      const long port = parse_long_or_die(value, "--port");
      if (port > 65535) {
        std::fprintf(stderr, "bundlecharged: --port out of range\n");
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (parse_flag_value(argc, argv, &i, "--workers", &value)) {
      options.workers =
          static_cast<std::size_t>(parse_long_or_die(value, "--workers"));
    } else if (parse_flag_value(argc, argv, &i, "--queue-capacity", &value)) {
      options.queue_capacity = static_cast<std::size_t>(
          parse_long_or_die(value, "--queue-capacity"));
    } else if (parse_flag_value(argc, argv, &i, "--cache", &value)) {
      options.cache_path = value;
    } else if (parse_flag_value(argc, argv, &i, "--cache-max-entries",
                                &value)) {
      options.cache_limits.max_entries = static_cast<std::size_t>(
          parse_long_or_die(value, "--cache-max-entries"));
    } else if (parse_flag_value(argc, argv, &i, "--watchdog-grace", &value)) {
      const long grace = parse_long_or_die(value, "--watchdog-grace");
      if (grace == 0) {
        std::fprintf(stderr,
                     "bundlecharged: --watchdog-grace must be positive "
                     "(use --no-watchdog to disable)\n");
        return 2;
      }
      options.watchdog_grace = static_cast<double>(grace);
    } else if (std::string(argv[i]) == "--no-watchdog") {
      options.enable_watchdog = false;
    } else if (parse_flag_value(argc, argv, &i, "--default-deadline-ms",
                                &value)) {
      options.default_deadline_s =
          static_cast<double>(
              parse_long_or_die(value, "--default-deadline-ms")) /
          1000.0;
    } else if (parse_flag_value(argc, argv, &i, "--io-timeout-ms", &value)) {
      options.io_timeout_s =
          static_cast<double>(parse_long_or_die(value, "--io-timeout-ms")) /
          1000.0;
    } else if (std::string(argv[i]) == "--enable-test-hooks") {
      options.enable_test_hooks = true;
    } else if (std::string(argv[i]) == "--help" ||
               std::string(argv[i]) == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "bundlecharged: unknown flag '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  bc::support::ignore_sigpipe();
  auto server = bc::service::Server::start(options);
  if (!server.has_value()) {
    std::fprintf(stderr, "bundlecharged: %s\n",
                 server.fault().message.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::printf("bundlecharged listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.value()->port()));
  std::fflush(stdout);

  while (!g_stop_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("bundlecharged: stopping\n");
  server.value()->stop();
  return 0;
}
