// Bounded MPMC work queue — the admission-control point of the daemon.
//
// Accept threads call try_push, which NEVER blocks: a full queue is an
// immediate `false`, which the connection handler turns into a structured
// 503 + Retry-After response. This is load shedding by construction — an
// overloaded daemon answers fast instead of queueing unboundedly and
// missing every deadline at once. Workers block in pop until work arrives
// or the queue is closed for shutdown.

#ifndef BUNDLECHARGE_SERVICE_BOUNDED_QUEUE_H_
#define BUNDLECHARGE_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace bc::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking admission: false when the queue is full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > peak_) peak_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained;
  // nullopt signals the worker to exit.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Stops admission and wakes every blocked worker. Queued items still
  // drain — shutdown finishes accepted work rather than dropping it.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // High-water mark of the queue depth since construction. A peak at
  // capacity means admission control actually bit (some request saw a
  // full queue, or came one slot from it) — the saturation signal
  // /statsz exports as queue_depth_peak.
  std::size_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_BOUNDED_QUEUE_H_
