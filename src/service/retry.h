// Bounded retry with capped exponential backoff for transient faults.
//
// Replanning can fail transiently — kReplanExhausted (the bounded ladder
// ran out of attempts) and kCoverageGap (a candidate failed to cover every
// sensor) both describe *this attempt*, not the request: a retry with the
// same inputs may succeed because replan's own ladder is stateful in its
// diagnostics but deterministic in its search, so the service retries a
// small, capped number of times. Everything else is permanent for the
// request's lifetime — kInvalidInput will never parse differently and
// kBudgetExhausted means the deadline is already gone — and is surfaced
// immediately. Backoff respects the request deadline: sleeping past it to
// earn another attempt would be strictly worse than failing now.

#ifndef BUNDLECHARGE_SERVICE_RETRY_H_
#define BUNDLECHARGE_SERVICE_RETRY_H_

#include <chrono>
#include <thread>

#include "support/deadline.h"
#include "support/expected.h"

namespace bc::service {

// True for fault kinds worth a second attempt.
bool fault_is_transient(support::FaultKind kind);

struct RetryPolicy {
  int max_attempts = 3;  // total attempts, including the first
  double initial_backoff_ms = 5.0;
  double multiplier = 2.0;
  double max_backoff_ms = 50.0;
};

struct RetryOutcome {
  int attempts = 0;  // attempts actually made
};

// Runs `operation` (a callable returning support::Expected<T>) up to
// policy.max_attempts times, backing off between attempts. Stops early on
// success, on a permanent fault, or when `meter` (nullable) would expire
// before the next attempt could usefully run. `outcome` (nullable)
// reports the attempt count for response metadata.
template <typename Operation>
auto with_retry(const RetryPolicy& policy, support::BudgetMeter* meter,
                Operation&& operation, RetryOutcome* outcome = nullptr)
    -> decltype(operation()) {
  double backoff_ms = policy.initial_backoff_ms;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  auto result = operation();
  int attempts = 1;
  while (!result.has_value() && attempts < max_attempts &&
         fault_is_transient(result.fault().kind)) {
    if (meter != nullptr) {
      // Never sleep through the deadline: if the remaining wall budget is
      // smaller than the backoff, report the transient fault as-is.
      const double remaining_s = meter->remaining_deadline_s();
      if (remaining_s >= 0.0 && remaining_s * 1000.0 <= backoff_ms) break;
      if (!meter->check()) break;
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
    backoff_ms = backoff_ms * policy.multiplier;
    if (backoff_ms > policy.max_backoff_ms) backoff_ms = policy.max_backoff_ms;
    result = operation();
    ++attempts;
  }
  if (outcome != nullptr) outcome->attempts = attempts;
  return result;
}

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_RETRY_H_
