// Minimal loopback HTTP client for tests, benches, and tools.

#ifndef BUNDLECHARGE_SERVICE_CLIENT_H_
#define BUNDLECHARGE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "service/wire.h"
#include "support/expected.h"

namespace bc::service {

// One request/response exchange with a bundlecharged server on
// 127.0.0.1:`port`. Connects, sends, reads the full response, closes.
// `timeout_s` bounds every socket operation.
support::Expected<HttpResponse> http_roundtrip(std::uint16_t port,
                                               const std::string& method,
                                               const std::string& path,
                                               const std::string& body,
                                               double timeout_s = 30.0,
                                               const WireLimits& limits = {});

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_CLIENT_H_
