#include "service/incremental.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "bundle/patch_cover.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/evaluate.h"
#include "support/require.h"
#include "tour/splice.h"

namespace bc::service {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Exact position identity — the same bit-level semantics the canonical
// fingerprint's hexfloats encode. (-0.0 and 0.0 are distinct here exactly
// as their hexfloats are.)
struct PositionBits {
  std::uint64_t x;
  std::uint64_t y;
  bool operator==(const PositionBits&) const = default;
};

struct PositionBitsHash {
  std::size_t operator()(const PositionBits& p) const {
    return static_cast<std::size_t>(splitmix64(p.x ^ splitmix64(p.y)));
  }
};

PositionBits bits_of(geometry::Point2 p) {
  return {std::bit_cast<std::uint64_t>(p.x),
          std::bit_cast<std::uint64_t>(p.y)};
}

bool within(geometry::Point2 a, geometry::Point2 b, double radius) {
  return geometry::distance_squared(a, b) <= radius * radius;
}

// Canonicalised request fields (the fingerprint's defaulting rules), so a
// base served as profile="" matches a request naming "icdcs2019"
// explicitly — their fingerprints differ, but the solves are identical.
std::string_view profile_or_default(const PlanRequest& request) {
  return request.profile.empty() ? std::string_view("icdcs2019")
                                 : std::string_view(request.profile);
}

std::string_view algorithm_or_default(const PlanRequest& request) {
  return request.algorithm.empty() ? std::string_view("BC")
                                   : std::string_view(request.algorithm);
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool compatible(const PlanRequest& a, const PlanRequest& b) {
  return profile_or_default(a) == profile_or_default(b) &&
         algorithm_or_default(a) == algorithm_or_default(b) &&
         same_bits(a.radius_m, b.radius_m) &&
         same_bits(a.demand_j, b.demand_j) &&
         bits_of(a.depot) == bits_of(b.depot);
}

}  // namespace

std::vector<std::uint64_t> position_sketch(
    std::span<const geometry::Point2> positions, double cell_size,
    std::size_t hashes) {
  support::require(cell_size > 0.0, "sketch cell size must be positive");
  std::vector<std::uint64_t> cells;
  cells.reserve(positions.size());
  for (const geometry::Point2 p : positions) {
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_size));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_size));
    cells.push_back(splitmix64(static_cast<std::uint64_t>(cx) ^
                               splitmix64(static_cast<std::uint64_t>(cy))));
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  if (cells.size() > hashes) cells.resize(hashes);
  return cells;
}

std::size_t sketch_overlap(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) {
  std::size_t overlap = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

void BaseStore::insert(BaseEntry entry) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == entry.key) {
      entries_.erase(it);
      break;
    }
  }
  entries_.push_back(std::move(entry));
  while (options_.max_bases != 0 && entries_.size() > options_.max_bases) {
    entries_.pop_front();
  }
}

const BaseEntry* BaseStore::nearest(
    const PlanRequest& request,
    std::span<const std::uint64_t> sketch) const {
  const BaseEntry* best = nullptr;
  std::size_t best_overlap = 0;
  // Back-to-front: on equal overlap the most recent base wins, which is
  // the natural anchor for a drifting request stream.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (!compatible(it->request, request)) continue;
    const std::size_t overlap = sketch_overlap(it->sketch, sketch);
    if (overlap < options_.min_sketch_overlap) continue;
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &*it;
    }
  }
  return best;
}

RequestDiff diff_requests(const PlanRequest& base,
                          const PlanRequest& request) {
  RequestDiff diff;
  diff.base_to_new.assign(base.positions.size(), RequestDiff::kUnmatched);

  // Multiset match by exact bits: each position key holds the ascending
  // base ids carrying it; new ids (ascending) consume them front-first,
  // so the survivor id map is deterministic even with duplicates.
  std::unordered_map<PositionBits, std::vector<net::SensorId>,
                     PositionBitsHash>
      by_position;
  by_position.reserve(base.positions.size() * 2);
  for (std::size_t i = 0; i < base.positions.size(); ++i) {
    by_position[bits_of(base.positions[i])].push_back(
        static_cast<net::SensorId>(i));
  }
  std::unordered_map<PositionBits, std::size_t, PositionBitsHash> consumed;
  consumed.reserve(by_position.size());
  for (std::size_t j = 0; j < request.positions.size(); ++j) {
    const PositionBits key = bits_of(request.positions[j]);
    auto it = by_position.find(key);
    std::size_t& used = consumed[key];
    if (it == by_position.end() || used >= it->second.size()) {
      diff.added.push_back(static_cast<net::SensorId>(j));
      continue;
    }
    diff.base_to_new[it->second[used]] = static_cast<net::SensorId>(j);
    ++used;
  }
  for (std::size_t i = 0; i < base.positions.size(); ++i) {
    if (diff.base_to_new[i] == RequestDiff::kUnmatched) {
      diff.removed.push_back(static_cast<net::SensorId>(i));
    }
  }
  return diff;
}

std::string_view to_string(PatchVerdict verdict) {
  switch (verdict) {
    case PatchVerdict::kPatched:
      return "patched";
    case PatchVerdict::kDiffTooLarge:
      return "diff_too_large";
    case PatchVerdict::kDiffNotLocal:
      return "diff_not_local";
    case PatchVerdict::kNotPartition:
      return "not_partition";
    case PatchVerdict::kObjectiveRegressed:
      return "objective_regressed";
  }
  return "unknown";
}

PatchResult patch_plan(const net::Deployment& deployment,
                       const PlanRequest& request, const BaseEntry& base,
                       const core::Profile& profile,
                       const IncrementalOptions& options,
                       support::BudgetMeter* meter) {
  PatchResult result;
  result.base_objective_j = base.objective_j;

  obs::TraceSpan span("service.incremental.patch");
  static const obs::Counter attempts("service.incremental.attempts");
  static const obs::Counter patched("service.incremental.patched");
  static const obs::Counter rejected("service.incremental.rejected");
  attempts.add();
  const auto finish = [&](PatchVerdict verdict) -> PatchResult& {
    result.verdict = verdict;
    (verdict == PatchVerdict::kPatched ? patched : rejected).add();
    span.attr("verdict", to_string(verdict))
        .attr("added", static_cast<std::uint64_t>(result.diff_added))
        .attr("removed", static_cast<std::uint64_t>(result.diff_removed))
        .attr("invalidated",
              static_cast<std::uint64_t>(result.stops_invalidated));
    return result;
  };

  const RequestDiff diff = diff_requests(base.request, request);
  result.diff_added = diff.added.size();
  result.diff_removed = diff.removed.size();
  if (diff.size() > options.max_diff_sensors) {
    return finish(PatchVerdict::kDiffTooLarge);
  }

  const double patch_radius = options.patch_radius_factor * base.radius_m;

  // Locality: every added sensor must land near existing coverage (a base
  // stop anchor) or near a removed sensor (the moved-sensor case). A
  // far-field addition opens a genuinely new region — cold-solve it.
  for (const net::SensorId id : diff.added) {
    const geometry::Point2 p = request.positions[id];
    bool local = false;
    for (const tour::Stop& stop : base.plan.stops) {
      if (within(p, stop.position, patch_radius)) {
        local = true;
        break;
      }
    }
    for (std::size_t k = 0; !local && k < diff.removed.size(); ++k) {
      local = within(p, base.request.positions[diff.removed[k]],
                     patch_radius);
    }
    if (!local) return finish(PatchVerdict::kDiffNotLocal);
  }

  // Diff positions in both coordinate roles: added sensors at their new
  // coordinates, removed sensors at their old ones.
  std::vector<geometry::Point2> diff_positions;
  diff_positions.reserve(diff.size());
  for (const net::SensorId id : diff.added) {
    diff_positions.push_back(request.positions[id]);
  }
  for (const net::SensorId id : diff.removed) {
    diff_positions.push_back(base.request.positions[id]);
  }

  // Invalidate every stop whose patch-radius neighbourhood intersects the
  // diff; survivors keep their members (a removed member is always within
  // r <= patch_radius of its own anchor, so its stop is invalidated by
  // construction — an untouched stop never loses a sensor).
  std::vector<tour::Stop> survivors;
  std::vector<net::SensorId> hole(diff.added.begin(), diff.added.end());
  for (const tour::Stop& stop : base.plan.stops) {
    bool invalidated = false;
    for (const geometry::Point2 d : diff_positions) {
      if (within(stop.position, d, patch_radius)) {
        invalidated = true;
        break;
      }
    }
    std::vector<net::SensorId> members;
    members.reserve(stop.members.size());
    for (const net::SensorId id : stop.members) {
      const net::SensorId mapped = diff.base_to_new[id];
      if (mapped != RequestDiff::kUnmatched) members.push_back(mapped);
    }
    if (invalidated) {
      ++result.stops_invalidated;
      hole.insert(hole.end(), members.begin(), members.end());
    } else if (!members.empty()) {
      survivors.push_back(tour::Stop{stop.position, std::move(members)});
    }
  }
  std::sort(hole.begin(), hole.end());

  tour::ChargingPlan plan;
  plan.algorithm = base.plan.algorithm;
  plan.depot = deployment.depot();
  plan.stops = std::move(survivors);

  if (!hole.empty()) {
    bundle::SubsetCoverOptions cover;
    cover.node_budget = options.node_budget;
    const std::vector<bundle::Bundle> bundles = bundle::cover_subset(
        deployment, base.radius_m, hole, cover, meter);
    std::vector<tour::Stop> patches;
    patches.reserve(bundles.size());
    for (const bundle::Bundle& b : bundles) {
      patches.push_back(tour::Stop{b.anchor, b.members});
    }
    result.stops_patched = patches.size();
    // Splice under the profile's movement metric, so patched tours are
    // judged by the same distances the cold solve would use.
    tour::SpliceOptions splice;
    if (profile.planner.metric != nullptr) {
      splice.improve_options.metric = profile.planner.metric.get();
    }
    plan = tour::splice_stops(plan, std::move(patches), splice, meter);
  }

  if (!tour::plan_is_partition(deployment, plan)) {
    return finish(PatchVerdict::kNotPartition);
  }
  result.objective_j =
      sim::evaluate_plan(deployment, plan, profile.evaluation).total_energy_j;
  if (result.objective_j >
      options.fallback_ratio * result.base_objective_j) {
    return finish(PatchVerdict::kObjectiveRegressed);
  }
  result.plan = std::move(plan);
  return finish(PatchVerdict::kPatched);
}

}  // namespace bc::service
