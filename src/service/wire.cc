#include "service/wire.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "support/socket.h"

namespace bc::service {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

Fault wire_fault(std::string message) {
  return Fault{FaultKind::kInvalidInput, std::move(message)};
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

// Reads from `fd` until the header terminator appears, then exactly the
// declared body. Shared by the request and response readers.
struct HeadBody {
  std::string head;  // up to and excluding "\r\n\r\n"
  std::string rest;  // bytes read past the terminator (body prefix)
};

Expected<HeadBody> read_head(int fd, const WireLimits& limits) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const std::size_t terminator = buffer.find("\r\n\r\n");
    if (terminator != std::string::npos) {
      HeadBody out;
      out.head = buffer.substr(0, terminator);
      out.rest = buffer.substr(terminator + 4);
      return out;
    }
    if (buffer.size() > limits.max_header_bytes) {
      return wire_fault("header block exceeds " +
                        std::to_string(limits.max_header_bytes) + " bytes");
    }
    auto got = support::read_some(fd, chunk, sizeof(chunk));
    if (!got.has_value()) return got.fault();
    if (got.value() == 0) {
      return wire_fault("connection closed before the header block ended");
    }
    buffer.append(chunk, got.value());
  }
}

Expected<bool> read_body(int fd, std::size_t content_length,
                         std::string& body) {
  char chunk[1 << 14];
  while (body.size() < content_length) {
    const std::size_t want =
        std::min(sizeof(chunk), content_length - body.size());
    auto got = support::read_some(fd, chunk, want);
    if (!got.has_value()) return got.fault();
    if (got.value() == 0) {
      return wire_fault("connection closed mid-body (" +
                        std::to_string(body.size()) + " of " +
                        std::to_string(content_length) + " bytes)");
    }
    body.append(chunk, got.value());
  }
  return true;
}

// Parses "Name: value" header lines (already split off the start line).
Expected<std::vector<std::pair<std::string, std::string>>> parse_headers(
    std::string_view block) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t at = 0;
  while (at < block.size()) {
    std::size_t eol = block.find("\r\n", at);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(at, eol - at);
    at = eol + (eol < block.size() ? 2 : 0);
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return wire_fault("folded headers are not supported");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return wire_fault("malformed header line (no colon)");
    }
    headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                         std::string(trim(line.substr(colon + 1))));
  }
  return headers;
}

Expected<std::size_t> parse_content_length(std::string_view value) {
  if (value.empty() || value.size() > 12 ||
      !std::all_of(value.begin(), value.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return wire_fault("invalid Content-Length '" + std::string(value) + "'");
  }
  return static_cast<std::size_t>(std::strtoull(
      std::string(value).c_str(), nullptr, 10));
}

std::string_view find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

// Strict full-token finite double parse; "1e999" (overflow to Inf) and
// trailing garbage are rejected.
Expected<double> parse_double(std::string_view key, std::string_view text) {
  const std::string token(trim(text));
  if (token.empty()) return wire_fault(std::string(key) + ": empty number");
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return wire_fault(std::string(key) + ": invalid number '" + token + "'");
  }
  return value;
}

Expected<geometry::Point2> parse_point(std::string_view key,
                                       std::string_view text) {
  const std::size_t comma = text.find(',');
  if (comma == std::string_view::npos ||
      text.find(',', comma + 1) != std::string_view::npos) {
    return wire_fault(std::string(key) + ": expected 'x,y', got '" +
                      std::string(text) + "'");
  }
  auto x = parse_double(key, text.substr(0, comma));
  if (!x.has_value()) return x.fault();
  auto y = parse_double(key, text.substr(comma + 1));
  if (!y.has_value()) return y.fault();
  return geometry::Point2{x.value(), y.value()};
}

// Splits `text` on `sep`, invoking fn(token) per non-empty token; an empty
// token anywhere is a fault (it always indicates a malformed list).
template <typename Fn>
Expected<bool> for_each_token(std::string_view key, std::string_view text,
                              char sep, Fn&& fn) {
  std::size_t at = 0;
  while (at <= text.size()) {
    std::size_t end = text.find(sep, at);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(at, end - at);
    if (token.empty()) {
      return wire_fault(std::string(key) + ": empty element in list");
    }
    auto result = fn(token);
    if (!result.has_value()) return result.fault();
    if (end == text.size()) break;
    at = end + 1;
  }
  return true;
}

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

std::string_view HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

support::Expected<HttpRequest> read_http_request(int fd,
                                                 const WireLimits& limits) {
  auto head = read_head(fd, limits);
  if (!head.has_value()) return head.fault();

  std::string_view block = head.value().head;
  std::size_t eol = block.find("\r\n");
  if (eol == std::string_view::npos) eol = block.size();
  const std::string_view start_line = block.substr(0, eol);
  const std::string_view header_block =
      eol < block.size() ? block.substr(eol + 2) : std::string_view{};

  HttpRequest request;
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return wire_fault("malformed request line");
  }
  request.method = std::string(start_line.substr(0, sp1));
  request.path = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = start_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return wire_fault("unsupported protocol version '" +
                      std::string(version) + "'");
  }
  if (request.method.empty() || request.path.empty() ||
      request.path.front() != '/') {
    return wire_fault("malformed request target");
  }

  auto headers = parse_headers(header_block);
  if (!headers.has_value()) return headers.fault();
  request.headers = std::move(headers.value());

  if (!find_header(request.headers, "transfer-encoding").empty()) {
    return wire_fault("Transfer-Encoding is not supported");
  }
  const std::string_view length_text =
      find_header(request.headers, "content-length");
  std::size_t content_length = 0;
  if (!length_text.empty()) {
    auto parsed = parse_content_length(length_text);
    if (!parsed.has_value()) return parsed.fault();
    content_length = parsed.value();
  } else if (request.method == "POST" || request.method == "PUT") {
    return wire_fault("bodied request without Content-Length");
  }
  if (content_length > limits.max_body_bytes) {
    return wire_fault("body of " + std::to_string(content_length) +
                      " bytes exceeds the " +
                      std::to_string(limits.max_body_bytes) + "-byte limit");
  }
  request.body = std::move(head.value().rest);
  if (request.body.size() > content_length) {
    return wire_fault("more body bytes than Content-Length declares");
  }
  auto body_read = read_body(fd, content_length, request.body);
  if (!body_read.has_value()) return body_read.fault();
  return request;
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    response.reason + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string serialize_request(const std::string& method,
                              const std::string& path,
                              const std::string& body) {
  std::string out = method + " " + path + " HTTP/1.1\r\n";
  out += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

support::Expected<HttpResponse> read_http_response(int fd,
                                                   const WireLimits& limits) {
  auto head = read_head(fd, limits);
  if (!head.has_value()) return head.fault();

  std::string_view block = head.value().head;
  std::size_t eol = block.find("\r\n");
  if (eol == std::string_view::npos) eol = block.size();
  const std::string_view status_line = block.substr(0, eol);
  const std::string_view header_block =
      eol < block.size() ? block.substr(eol + 2) : std::string_view{};

  if (status_line.rfind("HTTP/1.", 0) != 0 || status_line.size() < 12) {
    return wire_fault("malformed status line");
  }
  HttpResponse response;
  response.status =
      static_cast<int>(std::strtol(status_line.substr(9, 3).data(), nullptr,
                                   10));
  if (response.status < 100 || response.status > 599) {
    return wire_fault("malformed status code");
  }
  response.reason = std::string(status_line.substr(13 <= status_line.size()
                                                       ? 13
                                                       : status_line.size()));

  auto headers = parse_headers(header_block);
  if (!headers.has_value()) return headers.fault();
  response.headers = std::move(headers.value());

  const std::string_view length_text =
      find_header(response.headers, "content-length");
  if (length_text.empty()) return wire_fault("response lacks Content-Length");
  auto content_length = parse_content_length(length_text);
  if (!content_length.has_value()) return content_length.fault();
  if (content_length.value() > limits.max_body_bytes) {
    return wire_fault("response body exceeds the byte limit");
  }
  response.body = std::move(head.value().rest);
  auto body_read = read_body(fd, content_length.value(), response.body);
  if (!body_read.has_value()) return body_read.fault();
  return response;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

support::Expected<PlanRequest> parse_plan_request(std::string_view body,
                                                  const WireLimits& limits) {
  PlanRequest request;
  std::set<std::string, std::less<>> seen;
  std::size_t at = 0;
  while (at <= body.size()) {
    std::size_t eol = body.find('\n', at);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(at, eol - at);
    const bool last = eol == body.size();
    at = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) {
      if (last) break;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return wire_fault("malformed request line (no '='): '" +
                        std::string(line.substr(0, 64)) + "'");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (!seen.insert(std::string(key)).second) {
      return wire_fault("duplicate key '" + std::string(key) + "'");
    }

    if (key == "profile") {
      request.profile = std::string(value);
    } else if (key == "algorithm") {
      request.algorithm = std::string(value);
    } else if (key == "radius") {
      auto parsed = parse_double(key, value);
      if (!parsed.has_value()) return parsed.fault();
      if (parsed.value() < 0.0) return wire_fault("radius: must be >= 0");
      request.radius_m = parsed.value();
    } else if (key == "deadline_ms") {
      auto parsed = parse_double(key, value);
      if (!parsed.has_value()) return parsed.fault();
      if (parsed.value() < 0.0) return wire_fault("deadline_ms: must be >= 0");
      request.deadline_ms = parsed.value();
    } else if (key == "demand") {
      auto parsed = parse_double(key, value);
      if (!parsed.has_value()) return parsed.fault();
      if (parsed.value() <= 0.0) return wire_fault("demand: must be > 0");
      request.demand_j = parsed.value();
    } else if (key == "depot") {
      auto parsed = parse_point(key, value);
      if (!parsed.has_value()) return parsed.fault();
      request.depot = parsed.value();
    } else if (key == "current") {
      auto parsed = parse_point(key, value);
      if (!parsed.has_value()) return parsed.fault();
      request.current = parsed.value();
    } else if (key == "positions") {
      auto walked = for_each_token(
          key, value, ';',
          [&](std::string_view token) -> Expected<bool> {
            if (request.positions.size() >= limits.max_positions) {
              return wire_fault("positions: more than " +
                                std::to_string(limits.max_positions) +
                                " sensors");
            }
            auto point = parse_point(key, token);
            if (!point.has_value()) return point.fault();
            request.positions.push_back(point.value());
            return true;
          });
      if (!walked.has_value()) return walked.fault();
    } else if (key == "remaining") {
      // id:deficit pairs, ids strictly ascending.
      auto walked = for_each_token(
          key, value, ';',
          [&](std::string_view token) -> Expected<bool> {
            const std::size_t colon = token.find(':');
            if (colon == std::string_view::npos) {
              return wire_fault("remaining: expected 'id:deficit'");
            }
            auto id = parse_double(key, token.substr(0, colon));
            if (!id.has_value()) return id.fault();
            if (id.value() < 0.0 || id.value() != std::floor(id.value())) {
              return wire_fault("remaining: ids must be non-negative "
                                "integers");
            }
            auto deficit = parse_double(key, token.substr(colon + 1));
            if (!deficit.has_value()) return deficit.fault();
            if (deficit.value() <= 0.0) {
              return wire_fault("remaining: deficits must be > 0");
            }
            const auto sensor = static_cast<net::SensorId>(id.value());
            if (!request.remaining.empty() &&
                sensor <= request.remaining.back()) {
              return wire_fault("remaining: ids must be strictly ascending");
            }
            request.remaining.push_back(sensor);
            request.deficits_j.push_back(deficit.value());
            return true;
          });
      if (!walked.has_value()) return walked.fault();
    } else if (key == "stall_ms") {
      auto parsed = parse_double(key, value);
      if (!parsed.has_value()) return parsed.fault();
      if (parsed.value() < 0.0) return wire_fault("stall_ms: must be >= 0");
      request.stall_ms = parsed.value();
    } else {
      return wire_fault("unknown key '" + std::string(key) + "'");
    }
    if (last) break;
  }

  if (request.positions.empty()) {
    return wire_fault("positions: at least one sensor is required");
  }
  for (const net::SensorId id : request.remaining) {
    if (id >= request.positions.size()) {
      return wire_fault("remaining: id " + std::to_string(id) +
                        " out of range for " +
                        std::to_string(request.positions.size()) +
                        " positions");
    }
  }
  return request;
}

std::string canonical_fingerprint(const PlanRequest& request) {
  std::string out = "v1|profile=";
  out += request.profile.empty() ? "icdcs2019" : request.profile;
  out += "|alg=";
  out += request.algorithm.empty() ? "BC" : request.algorithm;
  out += "|r=" + hexfloat(request.radius_m);
  out += "|demand=" + hexfloat(request.demand_j);
  out += "|depot=" + hexfloat(request.depot.x) + "," +
         hexfloat(request.depot.y);
  out += "|n=" + std::to_string(request.positions.size());
  for (const geometry::Point2& p : request.positions) {
    out += "|" + hexfloat(p.x) + "," + hexfloat(p.y);
  }
  return out;
}

}  // namespace bc::service
