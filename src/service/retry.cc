#include "service/retry.h"

namespace bc::service {

bool fault_is_transient(support::FaultKind kind) {
  switch (kind) {
    case support::FaultKind::kReplanExhausted:
    case support::FaultKind::kCoverageGap:
      return true;
    default:
      return false;
  }
}

}  // namespace bc::service
