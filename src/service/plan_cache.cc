#include "service/plan_cache.h"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "support/atomic_file.h"

namespace bc::service {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

constexpr std::string_view kJournalHeader = "bundlecharged-plancache v1";
constexpr std::string_view kPayloadVersion = "v1";

Fault payload_fault(const std::string& detail) {
  return Fault{FaultKind::kInvalidInput, "plan payload: " + detail};
}

Fault journal_fault(const std::string& path, const std::string& detail) {
  return Fault{FaultKind::kInvalidInput,
               "plan cache '" + path + "': " + detail};
}

// C99 hexfloat rendering: bit-exact round-trips through strtod, no
// locale or precision dependence.
std::string hex_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

// Strict full-token parse of a finite hexfloat (also accepts any strtod
// form; the encoder only emits hexfloats).
bool parse_double_token(std::string_view token, double* out) {
  if (token.empty() || token.size() >= 63) return false;
  char buffer[64];
  token.copy(buffer, token.size());
  buffer[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + token.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_u32_token(std::string_view token, std::uint32_t* out) {
  if (token.empty() || token.size() > 10) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > 0xffffffffull) return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      tokens.push_back(text.substr(start));
      return tokens;
    }
    tokens.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_point(std::string_view token, geometry::Point2* out) {
  const std::size_t comma = token.find(',');
  if (comma == std::string_view::npos) return false;
  return parse_double_token(token.substr(0, comma), &out->x) &&
         parse_double_token(token.substr(comma + 1), &out->y);
}

void append_point(std::string* out, const geometry::Point2& point) {
  *out += hex_double(point.x);
  *out += ',';
  *out += hex_double(point.y);
}

}  // namespace

std::string hash_fingerprint(std::string_view fingerprint) {
  // FNV-1a 64.
  std::uint64_t fnv = 14695981039346656037ull;
  for (const char c : fingerprint) {
    fnv ^= static_cast<unsigned char>(c);
    fnv *= 1099511628211ull;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx%08lx",
                static_cast<unsigned long long>(fnv),
                static_cast<unsigned long>(support::crc32(fingerprint)));
  return buffer;
}

std::string encode_plan(const tour::ChargingPlan& plan) {
  // v1|<algorithm>|<depot_x>,<depot_y>|<stop>|...  with each stop
  // <ax>,<ay>:<id>.<id>...  — every separator is disjoint from hexfloat
  // ('0x1.8p+3') and decimal-id alphabets, so splitting is unambiguous.
  std::string out(kPayloadVersion);
  out += '|';
  out += plan.algorithm;
  out += '|';
  append_point(&out, plan.depot);
  for (const tour::Stop& stop : plan.stops) {
    out += '|';
    append_point(&out, stop.position);
    out += ':';
    bool first = true;
    for (const net::SensorId member : stop.members) {
      if (!first) out += '.';
      first = false;
      out += std::to_string(member);
    }
  }
  return out;
}

Expected<tour::ChargingPlan> decode_plan(std::string_view payload) {
  const std::vector<std::string_view> tokens = split(payload, '|');
  if (tokens.size() < 3) return payload_fault("fewer than 3 fields");
  if (tokens[0] != kPayloadVersion) {
    return payload_fault("unsupported version '" + std::string(tokens[0]) +
                         "'");
  }
  if (tokens[1].empty()) return payload_fault("empty algorithm");
  tour::ChargingPlan plan;
  plan.algorithm = std::string(tokens[1]);
  if (!parse_point(tokens[2], &plan.depot)) {
    return payload_fault("malformed depot '" + std::string(tokens[2]) + "'");
  }
  plan.stops.reserve(tokens.size() - 3);
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t colon = token.find(':');
    if (colon == std::string_view::npos) {
      return payload_fault("stop without ':' separator");
    }
    tour::Stop stop;
    if (!parse_point(token.substr(0, colon), &stop.position)) {
      return payload_fault("malformed stop anchor '" +
                           std::string(token.substr(0, colon)) + "'");
    }
    const std::string_view member_list = token.substr(colon + 1);
    if (!member_list.empty()) {
      for (const std::string_view id_token : split(member_list, '.')) {
        std::uint32_t id = 0;
        if (!parse_u32_token(id_token, &id)) {
          return payload_fault("malformed member id '" +
                               std::string(id_token) + "'");
        }
        stop.members.push_back(id);
      }
    }
    plan.stops.push_back(std::move(stop));
  }
  return plan;
}

Expected<PlanCache> PlanCache::open(std::string path, PlanCacheLimits limits) {
  support::JournalFormat format;
  format.header_line = std::string(kJournalHeader);
  format.record_tag = "entry";
  const std::string path_copy = path;
  format.validate_header =
      [path_copy](const std::string& line,
                  std::size_t /*line_no*/) -> Expected<bool> {
    if (line != kJournalHeader) {
      return journal_fault(path_copy, "missing or wrong header");
    }
    return true;
  };
  format.record_fault = [path_copy](std::size_t /*line_no*/,
                                    const std::string& why) {
    return journal_fault(path_copy, "corrupt interior record: " + why);
  };
  support::JournalLimits journal_limits;
  journal_limits.max_entries = limits.max_entries;
  journal_limits.compact_threshold_bytes = limits.compact_threshold_bytes;
  auto journal = support::AppendJournal::open(std::move(path),
                                              std::move(format),
                                              journal_limits);
  if (!journal.has_value()) return journal.fault();
  return PlanCache(std::move(journal.value()));
}

const std::string* PlanCache::lookup(const std::string& key) const {
  return journal_.lookup(key);
}

void PlanCache::put(const std::string& key, std::string payload) {
  journal_.put(key, std::move(payload));
}

void PlanCache::publish_telemetry() {
  static const obs::Counter compactions("service.plan_cache.compactions");
  static const obs::Counter evictions("service.plan_cache.evictions");
  if (journal_.compactions() > reported_compactions_) {
    compactions.add(journal_.compactions() - reported_compactions_);
    reported_compactions_ = journal_.compactions();
  }
  if (journal_.evictions() > reported_evictions_) {
    evictions.add(journal_.evictions() - reported_evictions_);
    reported_evictions_ = journal_.evictions();
  }
}

Expected<bool> PlanCache::flush() {
  auto synced = journal_.sync();
  publish_telemetry();
  return synced;
}

Expected<bool> PlanCache::compact() {
  auto compacted = journal_.compact();
  publish_telemetry();
  return compacted;
}

}  // namespace bc::service
