// Crash-safe plan cache for the planning daemon.
//
// Serving the same deployment twice must not cost two solves: requests are
// fingerprinted (service::canonical_fingerprint) and completed plans are
// kept in a journal that survives SIGKILL. The journal borrows the proven
// checkpoint design (sim/checkpoint.h): one whitespace-free record per
// entry with a CRC-32 over its content, flushed atomically through
// support::write_file_atomic in key-sorted order — so the bytes on disk
// depend only on the *set* of cached plans, never on insertion order or
// timing, and a killed-and-restarted daemon recovers a cache file that is
// byte-identical to one written by an uninterrupted daemon holding the
// same entries.
//
// On-disk format (version 1), one record per line:
//
//   bundlecharged-plancache v1
//   entry <crc32hex> <key> <payload>
//
// Keys are request-fingerprint hashes (hash_fingerprint), payloads are
// encode_plan documents. Only *deterministic* plans belong here: degraded
// (budget-tripped) plans depend on wall-clock timing and are never cached,
// which is what keeps cache hits bit-identical to cold solves.

#ifndef BUNDLECHARGE_SERVICE_PLAN_CACHE_H_
#define BUNDLECHARGE_SERVICE_PLAN_CACHE_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "support/expected.h"
#include "tour/plan.h"

namespace bc::service {

// 96-bit cache key over a canonical fingerprint: FNV-1a 64 plus CRC-32,
// hex-encoded (24 chars, whitespace-free). Two hashes make an accidental
// collision — which would serve the wrong plan — astronomically unlikely
// even across millions of cached deployments.
std::string hash_fingerprint(std::string_view fingerprint);

// ChargingPlan <-> whitespace-free payload token. Doubles round-trip
// exactly (C99 hexfloat), so a decoded plan re-serialises (and re-renders
// through io::plan_to_json) byte-identically to the freshly solved one.
std::string encode_plan(const tour::ChargingPlan& plan);
support::Expected<tour::ChargingPlan> decode_plan(std::string_view payload);

class PlanCache {
 public:
  // Opens `path`, creating an empty cache when the file does not exist.
  // An empty path is a purely in-memory cache (flush is a no-op). A
  // journal with a wrong header or an interior corrupted record is a
  // kInvalidInput fault — recomputing plans beats serving garbage — while
  // a torn *final* record (external tampering or a partial copy; atomic
  // flushes never produce one) is dropped with the prefix kept.
  static support::Expected<PlanCache> open(std::string path);

  const std::string& path() const { return path_; }
  std::size_t size() const { return entries_.size(); }

  // Payload for `key`, or nullptr when not cached.
  const std::string* lookup(const std::string& key) const;

  // Records an entry in memory (last write wins). Preconditions: key and
  // payload non-empty and whitespace-free.
  void put(const std::string& key, std::string payload);

  // Atomically persists the header plus every entry, key-sorted.
  support::Expected<bool> flush() const;

 private:
  explicit PlanCache(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::map<std::string, std::string> entries_;
};

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_PLAN_CACHE_H_
