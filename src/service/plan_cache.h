// Crash-safe plan cache for the planning daemon.
//
// Serving the same deployment twice must not cost two solves: requests are
// fingerprinted (service::canonical_fingerprint) and completed plans are
// kept in a journal that survives SIGKILL. Since PR 8 the journal is a
// support::AppendJournal: a flush appends only the new CRC'd records
// (O(delta), not O(cache)), and the file self-heals — size-triggered
// compaction rewrites the live entries through support::write_file_atomic
// in key-sorted order, so compacted bytes depend only on the *set* of
// cached plans, never on insertion order, timing, or crash history. A
// bounded cache (max_entries) evicts oldest-inserted entries at
// compaction, deterministically.
//
// On-disk format (version 1, unchanged), one record per line:
//
//   bundlecharged-plancache v1
//   entry <crc32hex> <key> <payload>
//
// Keys are request-fingerprint hashes (hash_fingerprint), payloads are
// encode_plan documents. Only *deterministic* plans belong here: degraded
// (budget-tripped) plans depend on wall-clock timing and are never cached,
// which is what keeps cache hits bit-identical to cold solves.

#ifndef BUNDLECHARGE_SERVICE_PLAN_CACHE_H_
#define BUNDLECHARGE_SERVICE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/expected.h"
#include "support/journal.h"
#include "tour/plan.h"

namespace bc::service {

// 96-bit cache key over a canonical fingerprint: FNV-1a 64 plus CRC-32,
// hex-encoded (24 chars, whitespace-free). Two hashes make an accidental
// collision — which would serve the wrong plan — astronomically unlikely
// even across millions of cached deployments.
std::string hash_fingerprint(std::string_view fingerprint);

// ChargingPlan <-> whitespace-free payload token. Doubles round-trip
// exactly (C99 hexfloat), so a decoded plan re-serialises (and re-renders
// through io::plan_to_json) byte-identically to the freshly solved one.
std::string encode_plan(const tour::ChargingPlan& plan);
support::Expected<tour::ChargingPlan> decode_plan(std::string_view payload);

struct PlanCacheLimits {
  // Maximum cached plans; 0 = unbounded. Enforced by deterministic FIFO
  // eviction at compaction time.
  std::size_t max_entries = 0;
  // Journal size that triggers a compacting rewrite instead of an append.
  std::size_t compact_threshold_bytes = 1u << 20;
};

class PlanCache {
 public:
  // Opens `path`, creating an empty cache when the file does not exist.
  // An empty path is a purely in-memory cache (flush is a no-op). A
  // journal with a wrong header or a corrupted complete record is a
  // kInvalidInput fault — recomputing plans beats serving garbage — while
  // a torn *final* line (a flush that lost power mid-append) is dropped
  // with the prefix kept, and the next flush compacts the file. Stale
  // temp files from a crashed writer are garbage-collected here.
  static support::Expected<PlanCache> open(std::string path,
                                           PlanCacheLimits limits = {});

  const std::string& path() const { return journal_.path(); }
  std::size_t size() const { return journal_.size(); }

  // Payload for `key`, or nullptr when not cached.
  const std::string* lookup(const std::string& key) const;

  // Records an entry in memory (last write wins). Preconditions: key and
  // payload non-empty and whitespace-free.
  void put(const std::string& key, std::string payload);

  // Persists entries put since the last flush: an append when the tail
  // is healthy and under the size threshold, a full compaction
  // otherwise. On failure the pending entries are retained for retry.
  support::Expected<bool> flush();

  // Forces a compacting rewrite; the resulting bytes are a pure function
  // of the surviving entry set.
  support::Expected<bool> compact();

  // Robustness telemetry (mirrored into obs counters by flush/compact).
  std::uint64_t compactions() const { return journal_.compactions(); }
  std::uint64_t evictions() const { return journal_.evictions(); }
  std::uint64_t stale_temps_removed() const {
    return journal_.stale_temps_removed();
  }
  std::uint64_t torn_tails_dropped() const {
    return journal_.torn_tails_dropped();
  }

 private:
  explicit PlanCache(support::AppendJournal journal)
      : journal_(std::move(journal)) {}

  void publish_telemetry();

  support::AppendJournal journal_;
  std::uint64_t reported_compactions_ = 0;
  std::uint64_t reported_evictions_ = 0;
};

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_PLAN_CACHE_H_
