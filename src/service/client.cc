#include "service/client.h"

#include "support/socket.h"

namespace bc::service {

support::Expected<HttpResponse> http_roundtrip(std::uint16_t port,
                                               const std::string& method,
                                               const std::string& path,
                                               const std::string& body,
                                               double timeout_s,
                                               const WireLimits& limits) {
  auto fd = support::connect_loopback(port);
  if (!fd.has_value()) return fd.fault();
  support::set_io_timeout(fd.value(), timeout_s);
  auto sent =
      support::write_all(fd.value(), serialize_request(method, path, body));
  if (!sent.has_value()) {
    support::close_fd(fd.value());
    return sent.fault();
  }
  auto response = read_http_response(fd.value(), limits);
  support::close_fd(fd.value());
  return response;
}

}  // namespace bc::service
