// bundlecharged: the hardened planning-as-a-service daemon.
//
// A long-lived process that turns the library's anytime planners into a
// localhost HTTP service with explicit robustness machinery:
//
//   admission control   connection handlers parse, then try_push into a
//                       BoundedQueue; a full queue is an *immediate* 503
//                       with Retry-After — overload sheds, never queues
//                       unboundedly.
//   deadline            each request's deadline_ms (or the server default)
//   propagation         becomes a support::Budget deadline; the solver's
//                       anytime contract returns the incumbent plan with
//                       degraded=true instead of blowing the deadline.
//   retry/backoff       transient replan faults (kReplanExhausted,
//                       kCoverageGap) are retried under capped exponential
//                       backoff that never sleeps through the deadline;
//                       permanent faults surface immediately.
//   crash-safe cache    non-degraded /v1/plan results are journaled via
//                       PlanCache after every insert — SIGKILL at any
//                       instant recovers a byte-identical cache file.
//   request isolation   workers solve inline (ScopedInlineExecution) under
//                       a per-request registry (ScopedThreadMetrics), so
//                       concurrent requests produce metrics snapshots
//                       identical to serial runs; parallelism is *across*
//                       requests (the worker count), not within one.
//
// Threading: one accept thread; one short-lived handler thread per
// connection (parse, shed/enqueue, wait, respond — all socket I/O under
// SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer cannot wedge shutdown); a
// fixed pool of worker threads popping the bounded queue. stop() closes
// the listener, drains accepted work, cancels in-flight solves through the
// shared CancelToken, and joins everything.

#ifndef BUNDLECHARGE_SERVICE_SERVER_H_
#define BUNDLECHARGE_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/bounded_queue.h"
#include "service/plan_cache.h"
#include "service/retry.h"
#include "service/wire.h"
#include "support/deadline.h"
#include "support/expected.h"
#include "support/socket.h"

namespace bc::service {

struct ServerOptions {
  std::uint16_t port = 0;        // 0 = ephemeral, read back via port()
  std::size_t workers = 2;       // solver threads (= max concurrent solves)
  std::size_t queue_capacity = 16;  // admission bound (excludes in-flight)
  std::string cache_path;        // "" = in-memory cache only
  double default_deadline_s = 0.0;  // applied when a request sends none
  double io_timeout_s = 10.0;    // per-socket read/write timeout
  double retry_after_ms = 100.0;  // advisory backoff in 503 responses
  RetryPolicy retry{};           // transient-replan-fault retry policy
  WireLimits limits{};
  // Honour the request's stall_ms sleep (chaos tests build deterministic
  // overload with it). Production servers reject stall_ms outright.
  bool enable_test_hooks = false;
};

// Monotonic request accounting for /statsz and tests. Deliberately plain
// integers: deterministic given a request sequence, snapshot-safe while
// the server runs.
struct ServerStats {
  std::uint64_t accepted = 0;       // requests admitted to the queue
  std::uint64_t shed = 0;           // 503s from a full queue
  std::uint64_t completed = 0;      // 200s
  std::uint64_t failed = 0;         // 4xx/5xx after admission
  std::uint64_t degraded = 0;       // 200s with degraded=true
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t retry_attempts = 0;  // replan solver attempts beyond first
};

class Server {
 public:
  // Binds 127.0.0.1:options.port, loads (or creates) the plan cache, and
  // starts the accept/worker threads. Faults: socket errors, corrupt
  // cache journal.
  static support::Expected<std::unique_ptr<Server>> start(
      ServerOptions options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  // Idempotent orderly shutdown: stop admission, drain accepted work,
  // cancel in-flight solves, join every thread.
  void stop();

  ServerStats stats() const;

 private:
  struct Job;

  explicit Server(ServerOptions options);

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  HttpResponse process_request(const HttpRequest& http);
  HttpResponse process_plan(const PlanRequest& request, bool replan);
  HttpResponse stats_response() const;

  ServerOptions options_;
  support::ListenSocket listener_{};
  std::uint16_t port_ = 0;
  support::CancelToken cancel_{};
  std::unique_ptr<PlanCache> cache_;
  mutable std::mutex cache_mutex_;

  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex stop_mutex_;

  // Detached handler threads are tracked by count so stop() can wait for
  // the last one to finish writing its response.
  std::mutex handlers_mutex_;
  std::condition_variable handlers_idle_;
  std::size_t active_handlers_ = 0;

  // Stats counters are atomics internally; stats() returns a plain copy.
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_SERVER_H_
