// bundlecharged: the hardened planning-as-a-service daemon.
//
// A long-lived process that turns the library's anytime planners into a
// localhost HTTP service with explicit robustness machinery:
//
//   admission control   connection handlers parse, then try_push into a
//                       BoundedQueue; a full queue is an *immediate* 503
//                       with Retry-After — overload sheds, never queues
//                       unboundedly.
//   deadline            each request's deadline_ms (or the server default)
//   propagation         becomes a support::Budget deadline; the solver's
//                       anytime contract returns the incumbent plan with
//                       degraded=true instead of blowing the deadline.
//   retry/backoff       transient replan faults (kReplanExhausted,
//                       kCoverageGap) are retried under capped exponential
//                       backoff that never sleeps through the deadline;
//                       permanent faults surface immediately.
//   crash-safe cache    non-degraded /v1/plan results are journaled via
//                       PlanCache after every insert — SIGKILL at any
//                       instant recovers a byte-identical cache file.
//   request isolation   workers solve inline (ScopedInlineExecution) under
//                       a per-request registry (ScopedThreadMetrics), so
//                       concurrent requests produce metrics snapshots
//                       identical to serial runs; parallelism is *across*
//                       requests (the worker count), not within one.
//   hung-solve          a monitor thread tracks every in-flight request's
//   watchdog            per-request CancelToken and fires it when the
//                       request overruns its deadline by a grace factor —
//                       the request returns 504 and the worker goes back
//                       to the pool instead of wedging forever.
//   degraded            a failing cache journal (disk full, dead disk)
//   cache-bypass        never takes the daemon down: flush failures flip
//                       a cache-degraded flag (X-BC-Cache-Degraded header
//                       + /statsz), solves keep serving from memory, and
//                       the first successful re-flush self-heals the
//                       journal and clears the flag.
//
// Threading: one accept thread; one short-lived handler thread per
// connection (parse, shed/enqueue, wait, respond — all socket I/O under
// SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer cannot wedge shutdown); a
// fixed pool of worker threads popping the bounded queue; one watchdog
// thread. stop() closes the listener, drains accepted work, cancels
// in-flight solves through the per-request tokens, and joins everything.

#ifndef BUNDLECHARGE_SERVICE_SERVER_H_
#define BUNDLECHARGE_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/metric.h"
#include "service/bounded_queue.h"
#include "service/incremental.h"
#include "service/plan_cache.h"
#include "service/retry.h"
#include "service/wire.h"
#include "support/deadline.h"
#include "support/expected.h"
#include "support/socket.h"

namespace bc::service {

struct ServerOptions {
  std::uint16_t port = 0;        // 0 = ephemeral, read back via port()
  std::size_t workers = 2;       // solver threads (= max concurrent solves)
  std::size_t queue_capacity = 16;  // admission bound (excludes in-flight)
  std::string cache_path;        // "" = in-memory cache only
  double default_deadline_s = 0.0;  // applied when a request sends none
  double io_timeout_s = 10.0;    // per-socket read/write timeout
  double retry_after_ms = 100.0;  // advisory backoff in 503 responses
  RetryPolicy retry{};           // transient-replan-fault retry policy
  WireLimits limits{};
  // Plan-cache bounds: max_entries (FIFO-evicted at compaction) and the
  // journal size that triggers a compacting rewrite.
  PlanCacheLimits cache_limits{};
  // Hung-solve watchdog: a request is killed (CancelToken fired, 504)
  // when it runs past max(deadline * watchdog_grace, watchdog_min_window_s).
  // Requests without a deadline are never killed, only cancelled at
  // shutdown. The floor exists because the anytime contract's deadline
  // overshoot is wall-clock noise (budget polls every kClockPollStride
  // nodes, CPU contention stretches it): killing a tiny-deadline solve
  // that was about to return its degraded incumbent trades a valid plan
  // for a 504. Chaos tests lower the floor to provoke kills quickly.
  bool enable_watchdog = true;
  double watchdog_grace = 4.0;
  double watchdog_min_window_s = 1.0;
  double watchdog_poll_s = 0.01;  // monitor wake-up cadence
  // Honour the request's stall_ms sleep (chaos tests build deterministic
  // overload with it). Production servers reject stall_ms outright.
  bool enable_test_hooks = false;
  // Incremental replanning fast path (service/incremental.h): a cache
  // miss whose deployment is within a small diff of a remembered cold
  // solve is repaired locally instead of solved from scratch. Patched
  // plans are never journaled (the plan cache's hit == cold-solve
  // bit-identity stays intact) and never become diff bases themselves.
  bool enable_incremental = true;
  IncrementalOptions incremental{};
  // Cross-request batching: /v1/plan requests whose canonical fingerprint
  // matches one already being solved are parked as waiters instead of
  // occupying queue slots; when the leader finishes (and caches), the
  // waiters are served through the normal path — each response is
  // byte-identical to the cache hit a serial arrival order would have
  // produced. A shed leader sheds its waiters.
  bool enable_batching = true;
  std::size_t batch_max_waiters = 8;
  // Movement metric: path to a waypoint-graph CSV (io/graph_io.h); "" =
  // Euclidean movement. When set, every solve and evaluation runs under
  // the graph metric and cache keys are salted with the graph's content
  // hash — a journal written under one metric configuration can never
  // serve a plan to another. With no graph the salt is empty, so
  // pre-metric cache files stay byte-compatible.
  std::string metric_graph_path;
};

// Monotonic request accounting for /statsz and tests. Deliberately plain
// integers: deterministic given a request sequence, snapshot-safe while
// the server runs.
struct ServerStats {
  std::uint64_t accepted = 0;       // requests admitted to the queue
  std::uint64_t shed = 0;           // 503s from a full queue
  std::uint64_t completed = 0;      // 200s
  std::uint64_t failed = 0;         // 4xx/5xx after admission
  std::uint64_t degraded = 0;       // 200s with degraded=true
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t retry_attempts = 0;  // replan solver attempts beyond first
  std::uint64_t watchdog_kills = 0;  // CancelTokens fired past the grace
  std::uint64_t cache_flush_failures = 0;   // journal syncs that faulted
  std::uint64_t degraded_mode_entries = 0;  // healthy -> cache-degraded flips
  std::uint64_t fault_recoveries = 0;       // cache-degraded -> healthy flips
  std::uint64_t incremental_attempts = 0;   // cache misses with a near base
  std::uint64_t incremental_hits = 0;       // served by the patched plan
  std::uint64_t incremental_fallbacks = 0;  // patch rejected -> cold solve
  std::uint64_t coalesced = 0;  // requests served as batch waiters
};

class Server {
 public:
  // Binds 127.0.0.1:options.port, loads (or creates) the plan cache, and
  // starts the accept/worker threads. Faults: socket errors, corrupt
  // cache journal.
  static support::Expected<std::unique_ptr<Server>> start(
      ServerOptions options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  // Idempotent orderly shutdown: stop admission, drain accepted work,
  // cancel in-flight solves, join every thread.
  void stop();

  ServerStats stats() const;

  // True while the cache journal is failing and persistence is bypassed.
  bool cache_degraded() const {
    return cache_degraded_.load(std::memory_order_relaxed);
  }

 private:
  struct Job;
  struct BatchState;  // in-flight fingerprint -> parked waiter jobs

  // One per worker: the in-flight request's cancellation token and its
  // watchdog kill time. Guarded by watchdog_mutex_.
  struct WatchdogSlot {
    support::CancelToken token{};
    std::chrono::steady_clock::time_point kill_at{};
    bool armed = false;
    bool killed = false;
  };

  explicit Server(ServerOptions options);

  void accept_loop();
  void worker_loop(std::size_t worker);
  void watchdog_loop();
  // Installs a fresh per-request token in `worker`'s slot and schedules
  // the watchdog kill (deadline * grace; never for deadline 0). Returns
  // the token to thread into the solve's Budget.
  support::CancelToken arm_watchdog(std::size_t worker, double deadline_s);
  // Clears the slot; true when the watchdog killed this request.
  bool disarm_watchdog(std::size_t worker);
  void handle_connection(int fd);
  HttpResponse process_request(const HttpRequest& http);
  HttpResponse process_plan(const PlanRequest& request, bool replan,
                            std::size_t worker);
  // process_plan + stats accounting + promise fulfilment, shared by the
  // leader path and the batched-waiter drain.
  void finish_job(Job& job, std::size_t worker);
  HttpResponse solve_plan(const PlanRequest& request, bool replan,
                          double deadline_s,
                          const support::CancelToken& cancel);
  HttpResponse stats_response() const;
  // Cache/batching key: canonical request fingerprint + the metric salt.
  std::string request_key(const PlanRequest& request) const;

  ServerOptions options_;
  // Graph movement metric (null = Euclidean) and the cache-key salt
  // derived from the graph's canonical serialisation ("" for Euclidean).
  std::shared_ptr<const net::GraphMetric> metric_;
  std::string metric_salt_;
  support::ListenSocket listener_{};
  std::uint16_t port_ = 0;
  std::unique_ptr<PlanCache> cache_;
  mutable std::mutex cache_mutex_;
  std::atomic<bool> cache_degraded_{false};

  // Incremental fast path: remembered cold solves, sketch-indexed.
  std::unique_ptr<BaseStore> bases_;
  mutable std::mutex bases_mutex_;

  // Cross-request batching state (definition local to server.cc).
  std::unique_ptr<BatchState> batch_;

  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex stop_mutex_;

  // Watchdog state: one slot per worker, a cv-driven monitor thread.
  mutable std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::vector<WatchdogSlot> watchdog_slots_;
  bool watchdog_stop_ = false;
  std::thread watchdog_thread_;

  // Detached handler threads are tracked by count so stop() can wait for
  // the last one to finish writing its response.
  std::mutex handlers_mutex_;
  std::condition_variable handlers_idle_;
  std::size_t active_handlers_ = 0;

  // Stats counters are atomics internally; stats() returns a plain copy.
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace bc::service

#endif  // BUNDLECHARGE_SERVICE_SERVER_H_
