#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sstream>

#include "core/request_mapping.h"
#include "io/deployment_io.h"
#include "io/graph_io.h"
#include "io/plan_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/evaluate.h"
#include "support/parallel.h"
#include "tour/plan.h"
#include "tour/replan.h"

namespace bc::service {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

HttpResponse json_response(int status, const std::string& reason,
                           std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, const std::string& reason,
                            std::string_view error, std::string_view detail) {
  std::string body = "{\n  \"error\": \"";
  body += json_escape(error);
  body += "\",\n  \"detail\": \"";
  body += json_escape(detail);
  body += "\"\n}\n";
  return json_response(status, reason, std::move(body));
}

// Compact stop list for replan responses, which cannot go through
// io::plan_to_json (evaluate_plan requires a full-deployment partition;
// a replan covers only the remaining sensors). %.17g round-trips doubles.
std::string replan_plan_json(const tour::ChargingPlan& plan,
                             const net::MetricSpace* metric) {
  char buffer[64];
  const auto number = [&buffer](double value) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return std::string(buffer);
  };
  std::string out = "{\n    \"algorithm\": \"";
  out += json_escape(plan.algorithm);
  out += "\",\n    \"depot\": [" + number(plan.depot.x) + ", " +
         number(plan.depot.y) + "],\n    \"tour_length_m\": " +
         number(tour::plan_tour_length(plan, metric)) + ",\n    \"stops\": [";
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    const tour::Stop& stop = plan.stops[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"position\": [" + number(stop.position.x) + ", " +
           number(stop.position.y) + "], \"members\": [";
    for (std::size_t m = 0; m < stop.members.size(); ++m) {
      if (m != 0) out += ", ";
      out += std::to_string(stop.members[m]);
    }
    out += "]}";
  }
  out += plan.stops.empty() ? "]\n  }" : "\n    ]\n  }";
  return out;
}

}  // namespace

struct Server::Job {
  PlanRequest request;
  bool replan = false;
  // Non-empty on a batch leader: the fingerprint under which waiters are
  // parked in BatchState until this job completes.
  std::string batch_key;
  std::promise<HttpResponse> result;
};

struct Server::BatchState {
  std::mutex mutex;
  // Fingerprint of an in-flight /v1/plan leader -> jobs that coalesced
  // onto it. The leader's worker drains the vector after the leader's
  // response (and cache insert) lands, so every waiter re-runs the normal
  // path as a cache hit — byte-identical to a serial arrival order.
  std::unordered_map<std::string, std::vector<Job>> inflight;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Expected<std::unique_ptr<Server>> Server::start(ServerOptions options) {
  support::ignore_sigpipe();
  if (options.workers == 0) options.workers = 1;
  if (options.queue_capacity == 0) options.queue_capacity = 1;

  auto cache = PlanCache::open(options.cache_path, options.cache_limits);
  if (!cache.has_value()) return cache.fault();

  // Graph world: load the waypoint graph once, salt cache keys with its
  // canonical serialisation so journals cannot leak plans across metric
  // configurations. An unloadable graph is a startup fault, not a
  // degraded mode — serving Euclidean plans for a graph world silently
  // would be worse than refusing to start.
  std::shared_ptr<const net::GraphMetric> metric;
  std::string metric_salt;
  if (!options.metric_graph_path.empty()) {
    auto graph = io::read_waypoint_graph_csv_file(options.metric_graph_path);
    if (!graph.has_value()) return graph.fault();
    std::ostringstream canonical;
    io::write_waypoint_graph_csv(graph.value(), canonical);
    metric_salt = "|metric=graph:" + hash_fingerprint(canonical.str());
    metric = std::make_shared<net::GraphMetric>(std::move(graph.value()));
  }

  auto listener = support::listen_loopback(options.port);
  if (!listener.has_value()) return listener.fault();

  std::unique_ptr<Server> server(new Server(std::move(options)));
  server->metric_ = std::move(metric);
  server->metric_salt_ = std::move(metric_salt);
  server->cache_ = std::make_unique<PlanCache>(std::move(cache.value()));
  server->bases_ = std::make_unique<BaseStore>(server->options_.incremental);
  server->batch_ = std::make_unique<BatchState>();
  server->listener_ = listener.value();
  server->port_ = server->listener_.port;
  server->queue_ =
      std::make_unique<BoundedQueue<Job>>(server->options_.queue_capacity);
  server->watchdog_slots_.resize(server->options_.workers);
  server->watchdog_thread_ = std::thread([raw = server.get()] {
    raw->watchdog_loop();
  });
  for (std::size_t i = 0; i < server->options_.workers; ++i) {
    server->worker_threads_.emplace_back([raw = server.get(), i] {
      raw->worker_loop(i);
    });
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->accept_loop();
  });
  return server;
}

Server::~Server() { stop(); }

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock the accept loop, stop admission, and cut in-flight solves
  // short through their per-request tokens (arm_watchdog pre-cancels any
  // token armed after this point, so there is no race window). Queued
  // jobs still drain. shutdown(2), not close(2), wakes the accept
  // thread: closing the fd from this thread leaves it sleeping in
  // accept(2) forever on Linux. The fd itself is closed only after the
  // join, so the accept thread never races the teardown (or a reused
  // descriptor number).
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    for (WatchdogSlot& slot : watchdog_slots_) {
      if (slot.armed) slot.token.request_cancel();
    }
  }
  support::shutdown_socket(listener_.fd);
  if (accept_thread_.joinable()) accept_thread_.join();
  support::close_fd(listener_.fd);
  listener_.fd = -1;
  queue_->close();
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  std::unique_lock<std::mutex> lock(handlers_mutex_);
  handlers_idle_.wait(lock, [this] { return active_handlers_ == 0; });
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

support::CancelToken Server::arm_watchdog(std::size_t worker,
                                          double deadline_s) {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  WatchdogSlot& slot = watchdog_slots_[worker];
  slot.token = support::CancelToken{};  // fresh shared flag per request
  slot.killed = false;
  slot.armed = true;
  slot.kill_at = std::chrono::steady_clock::time_point::max();
  if (options_.enable_watchdog && deadline_s > 0.0) {
    const double window = std::max(deadline_s * options_.watchdog_grace,
                                   options_.watchdog_min_window_s);
    slot.kill_at = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(window));
    watchdog_cv_.notify_all();  // the monitor recomputes its next wake
  }
  // A request armed during shutdown is cancelled immediately — stop()
  // already swept the slots, so this closes the set-flag/arm race.
  if (stopping_.load(std::memory_order_relaxed)) slot.token.request_cancel();
  return slot.token;
}

bool Server::disarm_watchdog(std::size_t worker) {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  WatchdogSlot& slot = watchdog_slots_[worker];
  slot.armed = false;
  return slot.killed;
}

void Server::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    const auto now = std::chrono::steady_clock::now();
    auto wake = now + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              options_.watchdog_poll_s));
    std::uint64_t kills = 0;
    for (WatchdogSlot& slot : watchdog_slots_) {
      if (!slot.armed || slot.killed) continue;
      if (slot.kill_at <= now) {
        // The solve overran deadline * grace: fire its token. The
        // budget's cancel check turns this into a prompt return; the
        // worker survives and the request becomes a 504.
        slot.token.request_cancel();
        slot.killed = true;
        ++kills;
      } else if (slot.kill_at < wake) {
        wake = slot.kill_at;
      }
    }
    if (kills > 0) {
      lock.unlock();
      static const obs::Counter kill_counter("service.watchdog.kills");
      kill_counter.add(kills);
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        stats_.watchdog_kills += kills;
      }
      lock.lock();
      continue;
    }
    watchdog_cv_.wait_until(lock, wake);
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto fd = support::accept_connection(listener_.fd);
    if (!fd.has_value()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // transient accept failure (e.g. ECONNABORTED)
    }
    {
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      ++active_handlers_;
    }
    std::thread([this, connection = fd.value()] {
      handle_connection(connection);
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      if (--active_handlers_ == 0) handlers_idle_.notify_all();
    }).detach();
  }
}

void Server::handle_connection(int fd) {
  support::set_io_timeout(fd, options_.io_timeout_s);
  auto request = read_http_request(fd, options_.limits);
  HttpResponse response;
  if (!request.has_value()) {
    response = error_response(400, "Bad Request", "malformed_request",
                              request.fault().message);
  } else {
    response = process_request(request.value());
  }
  if (cache_degraded()) {
    // Every response advertises the degraded persistence mode: plans are
    // still served (and solved) normally, but cache inserts are not
    // reaching disk until the journal heals.
    response.headers.emplace_back("X-BC-Cache-Degraded", "journal");
  }
  support::write_all(fd, serialize_response(response));
  support::close_fd(fd);
}

HttpResponse Server::process_request(const HttpRequest& http) {
  if (http.method == "GET" && http.path == "/healthz") {
    return json_response(200, "OK", "{\n  \"status\": \"ok\"\n}\n");
  }
  if (http.method == "GET" && http.path == "/statsz") {
    return stats_response();
  }
  const bool replan = http.path == "/v1/replan";
  if (http.method != "POST" || (!replan && http.path != "/v1/plan")) {
    return error_response(404, "Not Found", "unknown_route",
                          http.method + " " + http.path);
  }

  auto parsed = parse_plan_request(http.body, options_.limits);
  if (!parsed.has_value()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failed;
    return error_response(400, "Bad Request", "invalid_request",
                          parsed.fault().message);
  }
  if (parsed.value().stall_ms > 0.0 && !options_.enable_test_hooks) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failed;
    return error_response(400, "Bad Request", "invalid_request",
                          "stall_ms requires --enable-test-hooks");
  }

  // Admission control: a full queue sheds *now* with advisory backoff —
  // the one response a saturated server can still afford to send.
  Job job;
  job.request = std::move(parsed.value());
  job.replan = replan;
  std::future<HttpResponse> result = job.result.get_future();

  // Cross-request batching: a /v1/plan whose fingerprint is already being
  // solved parks as a waiter on the in-flight leader instead of taking a
  // queue slot; the leader's worker serves it from the fresh cache entry
  // once the leader completes. stall_ms requests are excluded — the chaos
  // tests rely on each of them occupying a worker. Waiters count toward
  // accepted/coalesced only when served (or shed, if their leader sheds).
  std::string batch_key;
  bool leads = false;
  if (options_.enable_batching && !replan && job.request.stall_ms <= 0.0) {
    batch_key = request_key(job.request);
    bool parked = false;
    {
      std::lock_guard<std::mutex> lock(batch_->mutex);
      auto it = batch_->inflight.find(batch_key);
      if (it != batch_->inflight.end()) {
        if (it->second.size() < options_.batch_max_waiters) {
          it->second.push_back(std::move(job));
          parked = true;
        }
        // A full waiter list falls through to the queue as an ordinary
        // request (it will be a cache hit by the time a worker gets it).
      } else {
        job.batch_key = batch_key;
        batch_->inflight.emplace(batch_key, std::vector<Job>{});
        leads = true;
      }
    }
    if (parked) return result.get();
  }

  if (!queue_->try_push(std::move(job))) {
    // A shed leader sheds its waiters: nobody is coming to drain them.
    std::vector<Job> orphans;
    if (leads) {
      std::lock_guard<std::mutex> lock(batch_->mutex);
      auto it = batch_->inflight.find(batch_key);
      if (it != batch_->inflight.end()) {
        orphans = std::move(it->second);
        batch_->inflight.erase(it);
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.shed += 1 + orphans.size();
    }
    const long retry_after_s = static_cast<long>(
        (options_.retry_after_ms + 999.0) / 1000.0);
    HttpResponse response = error_response(
        503, "Service Unavailable", "overloaded",
        "queue full; retry after " +
            std::to_string(static_cast<long>(options_.retry_after_ms)) +
            " ms");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(retry_after_s));
    for (Job& orphan : orphans) {
      orphan.result.set_value(response);
    }
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
  return result.get();
}

void Server::worker_loop(std::size_t worker) {
  while (true) {
    std::optional<Job> job = queue_->pop();
    if (!job.has_value()) return;
    finish_job(*job, worker);
    if (job->batch_key.empty()) continue;
    // The leader's response (and, on success, its cache insert) landed:
    // drain the waiters that coalesced onto it. Each re-runs the normal
    // path — a cache hit now — so its response is byte-identical to the
    // one a serial arrival after the leader would have received.
    std::vector<Job> waiters;
    {
      std::lock_guard<std::mutex> lock(batch_->mutex);
      auto it = batch_->inflight.find(job->batch_key);
      if (it != batch_->inflight.end()) {
        waiters = std::move(it->second);
        batch_->inflight.erase(it);
      }
    }
    for (Job& waiter : waiters) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.accepted;
        ++stats_.coalesced;
      }
      finish_job(waiter, worker);
    }
  }
}

void Server::finish_job(Job& job, std::size_t worker) {
  HttpResponse response = process_plan(job.request, job.replan, worker);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (response.status == 200) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  job.result.set_value(std::move(response));
}

HttpResponse Server::process_plan(const PlanRequest& request, bool replan,
                                  std::size_t worker) {
  const double deadline_s = request.deadline_ms > 0.0
                                ? request.deadline_ms / 1000.0
                                : options_.default_deadline_s;
  // Arm before any work — including the stall_ms test hook, which is
  // exactly the kind of wedged solve the watchdog exists to kill.
  const support::CancelToken cancel = arm_watchdog(worker, deadline_s);
  if (request.stall_ms > 0.0) {
    // Test hook (gated at admission): deterministic worker occupancy for
    // the overload and watchdog chaos tests.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(request.stall_ms));
  }
  HttpResponse response = solve_plan(request, replan, deadline_s, cancel);
  if (disarm_watchdog(worker)) {
    return error_response(
        504, "Gateway Timeout", "watchdog_timeout",
        "request overran its deadline by more than the grace factor (" +
            std::to_string(options_.watchdog_grace) +
            "x) and was cancelled by the watchdog");
  }
  return response;
}

std::string Server::request_key(const PlanRequest& request) const {
  // The metric salt is empty for Euclidean servers, so pre-metric cache
  // files keep their exact keys.
  return hash_fingerprint(canonical_fingerprint(request) + metric_salt_);
}

HttpResponse Server::solve_plan(const PlanRequest& request, bool replan,
                                double deadline_s,
                                const support::CancelToken& cancel) {
  auto resolved = core::resolve_plan_request(request.profile,
                                             request.algorithm,
                                             request.radius_m, deadline_s);
  if (!resolved.has_value()) {
    return error_response(400, "Bad Request", "invalid_request",
                          resolved.fault().message);
  }
  core::Profile& profile = resolved.value().profile;
  const tour::Algorithm algorithm = resolved.value().algorithm;
  // The per-request token: fired by the watchdog past the grace window
  // and by stop() at shutdown; the anytime contract turns either into a
  // fast degraded/budget-exhausted return instead of a wedged worker.
  profile.planner.budget.cancel = cancel;
  if (metric_ != nullptr) {
    // Graph world: planners and the evaluator judge tour legs under the
    // same metric, so response tour lengths match what the plan optimised.
    profile.planner.metric = metric_;
    profile.evaluation.metric = metric_.get();
  }

  for (const net::SensorId id : request.remaining) {
    if (id >= request.positions.size()) {
      return error_response(400, "Bad Request", "invalid_request",
                            "remaining: sensor id " + std::to_string(id) +
                                " out of range");
    }
  }

  net::Deployment deployment = io::deployment_from_positions(
      request.positions, request.depot, request.demand_j);

  // Per-request isolation: a fresh registry installed for this thread
  // only, with solver parallel sections forced inline so every metric this
  // request records lands in — and only in — its own registry. This is
  // what makes concurrent snapshots identical to serial ones.
  obs::MetricsRegistry request_metrics;
  obs::ScopedThreadMetrics scoped_metrics(request_metrics);
  support::ScopedInlineExecution inline_execution;
  // The inline scope flags this thread as a worker, which by default
  // suppresses spans; opt back in so a daemon run under --trace-out
  // journals its service.* spans (the request runs serially here).
  obs::ScopedWorkerTracing worker_tracing;
  support::BudgetMeter meter(profile.planner.budget);

  std::string body = "{\n  \"mode\": \"";
  body += replan ? "replan" : "plan";
  body += "\",\n  \"algorithm\": \"";
  body += json_escape(tour::to_string(algorithm));
  body += "\",\n";

  if (replan) {
    obs::TraceSpan replan_span("service.replan");
    tour::ReplanRequest replan_request;
    replan_request.current_position = request.current;
    replan_request.remaining = request.remaining;
    replan_request.deficits_j = request.deficits_j;
    if (replan_request.remaining.empty()) {
      // Empty `remaining` = everything still owed at full demand.
      replan_request.remaining.reserve(request.positions.size());
      replan_request.deficits_j.assign(request.positions.size(),
                                       request.demand_j);
      for (std::size_t i = 0; i < request.positions.size(); ++i) {
        replan_request.remaining.push_back(static_cast<net::SensorId>(i));
      }
    }
    RetryOutcome outcome;
    auto result = with_retry(
        options_.retry, &meter,
        [&] {
          return tour::replan_tour(deployment, replan_request,
                                   profile.planner, tour::ReplanOptions{},
                                   &meter);
        },
        &outcome);
    if (outcome.attempts > 1) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.retry_attempts +=
          static_cast<std::uint64_t>(outcome.attempts - 1);
    }
    if (!result.has_value()) {
      const Fault& fault = result.fault();
      if (fault.kind == FaultKind::kInvalidInput) {
        return error_response(400, "Bad Request", "invalid_request",
                              fault.message);
      }
      if (fault.kind == FaultKind::kBudgetExhausted) {
        return error_response(504, "Gateway Timeout", "deadline_exceeded",
                              fault.message);
      }
      return error_response(
          500, "Internal Server Error", "replan_failed",
          std::string(support::to_string(fault.kind)) + ": " + fault.message +
              " (after " + std::to_string(outcome.attempts) + " attempts)");
    }
    const bool degraded = meter.exhausted();
    if (degraded) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.degraded;
    }
    body += "  \"degraded\": ";
    body += degraded ? "true" : "false";
    body += ",\n  \"attempts\": " + std::to_string(outcome.attempts);
    body += ",\n  \"plan\": " +
            replan_plan_json(result.value(), profile.planner.metric.get());
  } else {
    obs::TraceSpan plan_span("service.plan");
    const std::string key = request_key(request);
    tour::ChargingPlan plan;
    bool cached = false;
    bool degraded = false;
    bool incremental = false;
    {
      obs::TraceSpan cache_span("service.cache.lookup");
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (const std::string* payload = cache_->lookup(key)) {
        auto decoded = decode_plan(*payload);
        // An undecodable payload cannot happen through this code path
        // (records are CRC-checked); treat it as a miss out of caution.
        if (decoded.has_value()) {
          plan = std::move(decoded.value());
          cached = true;
        }
      }
      cache_span.attr("hit", cached);
    }
    if (cached) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.cache_hits;
    } else {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.cache_misses;
      }
      // Incremental fast path: a miss whose deployment is within a small,
      // local diff of a remembered cold solve is repaired instead of
      // re-solved. The sketch cell tracks the patch radius, so two
      // deployments that could share bundles share cells.
      std::vector<std::uint64_t> sketch;
      if (options_.enable_incremental) {
        const double cell =
            std::max(options_.incremental.patch_radius_factor *
                         profile.planner.bundle_radius,
                     1e-6);
        sketch = position_sketch(request.positions, cell,
                                 options_.incremental.sketch_hashes);
        BaseEntry base;
        bool have_base = false;
        {
          std::lock_guard<std::mutex> lock(bases_mutex_);
          if (const BaseEntry* found = bases_->nearest(request, sketch)) {
            base = *found;
            have_base = true;
          }
        }
        if (have_base) {
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.incremental_attempts;
          }
          PatchResult patch = patch_plan(deployment, request, base, profile,
                                         options_.incremental, nullptr);
          if (patch.verdict == PatchVerdict::kPatched) {
            plan = std::move(patch.plan);
            incremental = true;
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.incremental_hits;
          } else {
            {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.incremental_fallbacks;
            }
            // Discard the attempt's metrics: whether a near base existed
            // depends on request arrival order, so the cold solve below
            // must snapshot identically either way.
            request_metrics.reset();
          }
        }
      }
      if (!incremental) {
        plan = tour::plan_charging_tour(deployment, algorithm,
                                        profile.planner, &meter);
        degraded = meter.exhausted();
        if (degraded) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.degraded;
        }
      }
      if (!incremental && !degraded) {
        // Only deterministic results are cacheable: a degraded plan
        // depends on wall-clock timing, and caching it would break the
        // cache-hit == cold-solve bit-identity guarantee.
        Expected<bool> flushed = true;
        {
          std::lock_guard<std::mutex> lock(cache_mutex_);
          cache_->put(key, encode_plan(plan));
          // Journal every insert (O(new entries): fsynced append, with
          // self-healing compaction underneath). A failing journal —
          // disk full, dead disk — must never take the daemon down:
          // the entry stays in memory, the flush is retried on the next
          // insert, and the daemon flags itself cache-degraded until a
          // retry lands.
          flushed = cache_->flush();
        }
        if (!flushed.has_value()) {
          const bool entered = !cache_degraded_.exchange(
              true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.cache_flush_failures;
          if (entered) ++stats_.degraded_mode_entries;
        } else if (cache_degraded_.exchange(false,
                                            std::memory_order_relaxed)) {
          // A flush landed again: the journal healed itself (pending
          // entries were retried through a compacting rewrite).
          static const obs::Counter recoveries(
              "service.plan_cache.fault_recoveries");
          recoveries.add(1);
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.fault_recoveries;
        }
        if (options_.enable_incremental) {
          // Only cold solves become diff bases — never patched plans, so
          // repair error cannot compound across a drifting stream. The
          // objective anchors the fallback guard for future patches.
          BaseEntry entry;
          entry.key = key;
          entry.request = request;
          entry.plan = plan;
          entry.objective_j =
              sim::evaluate_plan(deployment, plan, profile.evaluation)
                  .total_energy_j;
          entry.radius_m = profile.planner.bundle_radius;
          entry.sketch = std::move(sketch);
          std::lock_guard<std::mutex> lock(bases_mutex_);
          bases_->insert(std::move(entry));
        }
      }
    }
    plan_span.attr("cached", cached)
        .attr("incremental", incremental)
        .attr("degraded", degraded);
    body += "  \"cached\": ";
    body += cached ? "true" : "false";
    body += ",\n  \"incremental\": ";
    body += incremental ? "true" : "false";
    body += ",\n  \"degraded\": ";
    body += degraded ? "true" : "false";
    body += ",\n  \"cache_key\": \"" + key + "\"";
    body += ",\n  \"plan\": " +
            io::plan_to_json(deployment, plan, profile.evaluation);
  }

  body += ",\n  \"metrics\": " + request_metrics.snapshot().to_json("  ");
  body += "\n}\n";
  return json_response(200, "OK", std::move(body));
}

HttpResponse Server::stats_response() const {
  const ServerStats snapshot = stats();
  const std::size_t queue_depth = queue_->size();
  const std::size_t queue_depth_peak = queue_->peak();
  std::size_t base_entries = 0;
  {
    std::lock_guard<std::mutex> lock(bases_mutex_);
    base_entries = bases_->size();
  }
  std::size_t cache_entries = 0;
  std::uint64_t cache_compactions = 0;
  std::uint64_t cache_evictions = 0;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_entries = cache_->size();
    cache_compactions = cache_->compactions();
    cache_evictions = cache_->evictions();
  }
  std::string body = "{\n";
  const auto field = [&body](std::string_view name, std::uint64_t value,
                             bool last = false) {
    body += "  \"";
    body += name;
    body += "\": " + std::to_string(value) + (last ? "\n" : ",\n");
  };
  field("accepted", snapshot.accepted);
  field("shed", snapshot.shed);
  field("completed", snapshot.completed);
  field("failed", snapshot.failed);
  field("degraded", snapshot.degraded);
  field("cache_hits", snapshot.cache_hits);
  field("cache_misses", snapshot.cache_misses);
  field("incremental_attempts", snapshot.incremental_attempts);
  field("incremental_hits", snapshot.incremental_hits);
  field("incremental_fallbacks", snapshot.incremental_fallbacks);
  field("coalesced", snapshot.coalesced);
  field("retry_attempts", snapshot.retry_attempts);
  field("watchdog_kills", snapshot.watchdog_kills);
  field("cache_flush_failures", snapshot.cache_flush_failures);
  field("degraded_mode_entries", snapshot.degraded_mode_entries);
  field("fault_recoveries", snapshot.fault_recoveries);
  field("cache_degraded", cache_degraded() ? 1 : 0);
  field("cache_compactions", cache_compactions);
  field("cache_evictions", cache_evictions);
  field("queue_depth", queue_depth);
  field("queue_depth_peak", queue_depth_peak);
  field("cache_entries", cache_entries);
  field("base_entries", base_entries);
  field("workers", options_.workers);
  field("queue_capacity", options_.queue_capacity, /*last=*/true);
  body += "}\n";
  return json_response(200, "OK", std::move(body));
}

}  // namespace bc::service
