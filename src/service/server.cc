#include "service/server.h"

#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <thread>
#include <utility>

#include "core/request_mapping.h"
#include "io/deployment_io.h"
#include "io/plan_io.h"
#include "obs/metrics.h"
#include "support/parallel.h"
#include "tour/plan.h"
#include "tour/replan.h"

namespace bc::service {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

HttpResponse json_response(int status, const std::string& reason,
                           std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, const std::string& reason,
                            std::string_view error, std::string_view detail) {
  std::string body = "{\n  \"error\": \"";
  body += json_escape(error);
  body += "\",\n  \"detail\": \"";
  body += json_escape(detail);
  body += "\"\n}\n";
  return json_response(status, reason, std::move(body));
}

// Compact stop list for replan responses, which cannot go through
// io::plan_to_json (evaluate_plan requires a full-deployment partition;
// a replan covers only the remaining sensors). %.17g round-trips doubles.
std::string replan_plan_json(const tour::ChargingPlan& plan) {
  char buffer[64];
  const auto number = [&buffer](double value) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return std::string(buffer);
  };
  std::string out = "{\n    \"algorithm\": \"";
  out += json_escape(plan.algorithm);
  out += "\",\n    \"depot\": [" + number(plan.depot.x) + ", " +
         number(plan.depot.y) + "],\n    \"tour_length_m\": " +
         number(tour::plan_tour_length(plan)) + ",\n    \"stops\": [";
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    const tour::Stop& stop = plan.stops[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"position\": [" + number(stop.position.x) + ", " +
           number(stop.position.y) + "], \"members\": [";
    for (std::size_t m = 0; m < stop.members.size(); ++m) {
      if (m != 0) out += ", ";
      out += std::to_string(stop.members[m]);
    }
    out += "]}";
  }
  out += plan.stops.empty() ? "]\n  }" : "\n    ]\n  }";
  return out;
}

}  // namespace

struct Server::Job {
  PlanRequest request;
  bool replan = false;
  std::promise<HttpResponse> result;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Expected<std::unique_ptr<Server>> Server::start(ServerOptions options) {
  support::ignore_sigpipe();
  if (options.workers == 0) options.workers = 1;
  if (options.queue_capacity == 0) options.queue_capacity = 1;

  auto cache = PlanCache::open(options.cache_path);
  if (!cache.has_value()) return cache.fault();
  auto listener = support::listen_loopback(options.port);
  if (!listener.has_value()) return listener.fault();

  std::unique_ptr<Server> server(new Server(std::move(options)));
  server->cache_ = std::make_unique<PlanCache>(std::move(cache.value()));
  server->listener_ = listener.value();
  server->port_ = server->listener_.port;
  server->queue_ =
      std::make_unique<BoundedQueue<Job>>(server->options_.queue_capacity);
  for (std::size_t i = 0; i < server->options_.workers; ++i) {
    server->worker_threads_.emplace_back([raw = server.get()] {
      raw->worker_loop();
    });
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->accept_loop();
  });
  return server;
}

Server::~Server() { stop(); }

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock the accept loop, stop admission, and cut in-flight solves
  // short through the anytime contract. Queued jobs still drain.
  // shutdown(2), not close(2), wakes the accept thread: closing the fd
  // from this thread leaves it sleeping in accept(2) forever on Linux.
  // The fd itself is closed only after the join, so the accept thread
  // never races the teardown (or a reused descriptor number).
  cancel_.request_cancel();
  support::shutdown_socket(listener_.fd);
  if (accept_thread_.joinable()) accept_thread_.join();
  support::close_fd(listener_.fd);
  listener_.fd = -1;
  queue_->close();
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  std::unique_lock<std::mutex> lock(handlers_mutex_);
  handlers_idle_.wait(lock, [this] { return active_handlers_ == 0; });
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto fd = support::accept_connection(listener_.fd);
    if (!fd.has_value()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // transient accept failure (e.g. ECONNABORTED)
    }
    {
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      ++active_handlers_;
    }
    std::thread([this, connection = fd.value()] {
      handle_connection(connection);
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      if (--active_handlers_ == 0) handlers_idle_.notify_all();
    }).detach();
  }
}

void Server::handle_connection(int fd) {
  support::set_io_timeout(fd, options_.io_timeout_s);
  auto request = read_http_request(fd, options_.limits);
  HttpResponse response;
  if (!request.has_value()) {
    response = error_response(400, "Bad Request", "malformed_request",
                              request.fault().message);
  } else {
    response = process_request(request.value());
  }
  support::write_all(fd, serialize_response(response));
  support::close_fd(fd);
}

HttpResponse Server::process_request(const HttpRequest& http) {
  if (http.method == "GET" && http.path == "/healthz") {
    return json_response(200, "OK", "{\n  \"status\": \"ok\"\n}\n");
  }
  if (http.method == "GET" && http.path == "/statsz") {
    return stats_response();
  }
  const bool replan = http.path == "/v1/replan";
  if (http.method != "POST" || (!replan && http.path != "/v1/plan")) {
    return error_response(404, "Not Found", "unknown_route",
                          http.method + " " + http.path);
  }

  auto parsed = parse_plan_request(http.body, options_.limits);
  if (!parsed.has_value()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failed;
    return error_response(400, "Bad Request", "invalid_request",
                          parsed.fault().message);
  }
  if (parsed.value().stall_ms > 0.0 && !options_.enable_test_hooks) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failed;
    return error_response(400, "Bad Request", "invalid_request",
                          "stall_ms requires --enable-test-hooks");
  }

  // Admission control: a full queue sheds *now* with advisory backoff —
  // the one response a saturated server can still afford to send.
  Job job;
  job.request = std::move(parsed.value());
  job.replan = replan;
  std::future<HttpResponse> result = job.result.get_future();
  if (!queue_->try_push(std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
    }
    const long retry_after_s = static_cast<long>(
        (options_.retry_after_ms + 999.0) / 1000.0);
    HttpResponse response = error_response(
        503, "Service Unavailable", "overloaded",
        "queue full; retry after " +
            std::to_string(static_cast<long>(options_.retry_after_ms)) +
            " ms");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(retry_after_s));
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
  return result.get();
}

void Server::worker_loop() {
  while (true) {
    std::optional<Job> job = queue_->pop();
    if (!job.has_value()) return;
    HttpResponse response = process_plan(job->request, job->replan);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.status == 200) {
        ++stats_.completed;
      } else {
        ++stats_.failed;
      }
    }
    job->result.set_value(std::move(response));
  }
}

HttpResponse Server::process_plan(const PlanRequest& request, bool replan) {
  if (request.stall_ms > 0.0) {
    // Test hook (gated at admission): deterministic worker occupancy for
    // the overload chaos tests.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(request.stall_ms));
  }

  const double deadline_s = request.deadline_ms > 0.0
                                ? request.deadline_ms / 1000.0
                                : options_.default_deadline_s;
  auto resolved = core::resolve_plan_request(request.profile,
                                             request.algorithm,
                                             request.radius_m, deadline_s);
  if (!resolved.has_value()) {
    return error_response(400, "Bad Request", "invalid_request",
                          resolved.fault().message);
  }
  core::Profile& profile = resolved.value().profile;
  const tour::Algorithm algorithm = resolved.value().algorithm;
  // Server shutdown cancels in-flight solves through the shared token; the
  // anytime contract turns that into a fast degraded response.
  profile.planner.budget.cancel = cancel_;

  for (const net::SensorId id : request.remaining) {
    if (id >= request.positions.size()) {
      return error_response(400, "Bad Request", "invalid_request",
                            "remaining: sensor id " + std::to_string(id) +
                                " out of range");
    }
  }

  net::Deployment deployment = io::deployment_from_positions(
      request.positions, request.depot, request.demand_j);

  // Per-request isolation: a fresh registry installed for this thread
  // only, with solver parallel sections forced inline so every metric this
  // request records lands in — and only in — its own registry. This is
  // what makes concurrent snapshots identical to serial ones.
  obs::MetricsRegistry request_metrics;
  obs::ScopedThreadMetrics scoped_metrics(request_metrics);
  support::ScopedInlineExecution inline_execution;
  support::BudgetMeter meter(profile.planner.budget);

  std::string body = "{\n  \"mode\": \"";
  body += replan ? "replan" : "plan";
  body += "\",\n  \"algorithm\": \"";
  body += json_escape(tour::to_string(algorithm));
  body += "\",\n";

  if (replan) {
    tour::ReplanRequest replan_request;
    replan_request.current_position = request.current;
    replan_request.remaining = request.remaining;
    replan_request.deficits_j = request.deficits_j;
    if (replan_request.remaining.empty()) {
      // Empty `remaining` = everything still owed at full demand.
      replan_request.remaining.reserve(request.positions.size());
      replan_request.deficits_j.assign(request.positions.size(),
                                       request.demand_j);
      for (std::size_t i = 0; i < request.positions.size(); ++i) {
        replan_request.remaining.push_back(static_cast<net::SensorId>(i));
      }
    }
    RetryOutcome outcome;
    auto result = with_retry(
        options_.retry, &meter,
        [&] {
          return tour::replan_tour(deployment, replan_request,
                                   profile.planner, tour::ReplanOptions{},
                                   &meter);
        },
        &outcome);
    if (outcome.attempts > 1) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.retry_attempts +=
          static_cast<std::uint64_t>(outcome.attempts - 1);
    }
    if (!result.has_value()) {
      const Fault& fault = result.fault();
      if (fault.kind == FaultKind::kInvalidInput) {
        return error_response(400, "Bad Request", "invalid_request",
                              fault.message);
      }
      if (fault.kind == FaultKind::kBudgetExhausted) {
        return error_response(504, "Gateway Timeout", "deadline_exceeded",
                              fault.message);
      }
      return error_response(
          500, "Internal Server Error", "replan_failed",
          std::string(support::to_string(fault.kind)) + ": " + fault.message +
              " (after " + std::to_string(outcome.attempts) + " attempts)");
    }
    const bool degraded = meter.exhausted();
    if (degraded) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.degraded;
    }
    body += "  \"degraded\": ";
    body += degraded ? "true" : "false";
    body += ",\n  \"attempts\": " + std::to_string(outcome.attempts);
    body += ",\n  \"plan\": " + replan_plan_json(result.value());
  } else {
    const std::string key =
        hash_fingerprint(canonical_fingerprint(request));
    tour::ChargingPlan plan;
    bool cached = false;
    bool degraded = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (const std::string* payload = cache_->lookup(key)) {
        auto decoded = decode_plan(*payload);
        // An undecodable payload cannot happen through this code path
        // (records are CRC-checked); treat it as a miss out of caution.
        if (decoded.has_value()) {
          plan = std::move(decoded.value());
          cached = true;
        }
      }
    }
    if (cached) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.cache_hits;
    } else {
      plan = tour::plan_charging_tour(deployment, algorithm, profile.planner,
                                      &meter);
      degraded = meter.exhausted();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.cache_misses;
        if (degraded) ++stats_.degraded;
      }
      if (!degraded) {
        // Only deterministic results are cacheable: a degraded plan
        // depends on wall-clock timing, and caching it would break the
        // cache-hit == cold-solve bit-identity guarantee.
        std::lock_guard<std::mutex> lock(cache_mutex_);
        cache_->put(key, encode_plan(plan));
        cache_->flush();  // journal every insert: SIGKILL-safe by rename
      }
    }
    body += "  \"cached\": ";
    body += cached ? "true" : "false";
    body += ",\n  \"degraded\": ";
    body += degraded ? "true" : "false";
    body += ",\n  \"cache_key\": \"" + key + "\"";
    body += ",\n  \"plan\": " +
            io::plan_to_json(deployment, plan, profile.evaluation);
  }

  body += ",\n  \"metrics\": " + request_metrics.snapshot().to_json("  ");
  body += "\n}\n";
  return json_response(200, "OK", std::move(body));
}

HttpResponse Server::stats_response() const {
  const ServerStats snapshot = stats();
  const std::size_t queue_depth = queue_->size();
  std::size_t cache_entries = 0;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_entries = cache_->size();
  }
  std::string body = "{\n";
  const auto field = [&body](std::string_view name, std::uint64_t value,
                             bool last = false) {
    body += "  \"";
    body += name;
    body += "\": " + std::to_string(value) + (last ? "\n" : ",\n");
  };
  field("accepted", snapshot.accepted);
  field("shed", snapshot.shed);
  field("completed", snapshot.completed);
  field("failed", snapshot.failed);
  field("degraded", snapshot.degraded);
  field("cache_hits", snapshot.cache_hits);
  field("cache_misses", snapshot.cache_misses);
  field("retry_attempts", snapshot.retry_attempts);
  field("queue_depth", queue_depth);
  field("cache_entries", cache_entries);
  field("workers", options_.workers);
  field("queue_capacity", options_.queue_capacity, /*last=*/true);
  body += "}\n";
  return json_response(200, "OK", std::move(body));
}

}  // namespace bc::service
