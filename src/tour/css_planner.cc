// CSS — Combine-Skip-Substitute [36], adapted from data collection to
// wireless charging.
//
// The original CSS shortens a data mule's TSP tour: Combine merges
// tour-consecutive nodes whose communication disks share a common point,
// Skip drops stops that are reachable in passing, Substitute slides a stop
// within the common intersection to shorten the tour. For charging the
// mule must park (no charging while moving, §III-B), so Skip degenerates
// into merging a stop into an adjacent one when the union still fits a
// radius-r disk. Crucially — and this is the paper's point in §VI-C(3) —
// CSS picks stop positions to minimise *tour length only*, not charging
// efficiency, so its stops can sit at distance ~r from their sensors.

#include <algorithm>
#include <vector>

#include "geometry/minidisk.h"
#include "support/require.h"
#include "tour/planner.h"
#include "tour/route_util.h"

namespace bc::tour {

namespace {

using geometry::Point2;

std::vector<Point2> member_positions(const net::Deployment& deployment,
                                     const std::vector<net::SensorId>& ids) {
  std::vector<Point2> pts;
  pts.reserve(ids.size());
  for (const net::SensorId id : ids) {
    pts.push_back(deployment.sensor(id).position);
  }
  return pts;
}

// Minimises |prev P| + |P next| over the (convex) intersection of the
// member disks of radius r via projected subgradient descent. The SED
// centre is always feasible and is the starting point.
Point2 substitute_position(const net::Deployment& deployment,
                           const std::vector<net::SensorId>& members,
                           double r, Point2 prev, Point2 next,
                           Point2 start) {
  const std::vector<Point2> pts = member_positions(deployment, members);
  const auto project = [&](Point2 p) {
    // Cyclic projection onto the disk intersection; converges because the
    // sets are convex and share an interior point near `start`.
    for (int cycle = 0; cycle < 16; ++cycle) {
      bool feasible = true;
      for (const Point2& m : pts) {
        // metric-exempt: radius-r range constraint (radio disk geometry).
        const double d = geometry::distance(p, m);
        if (d > r) {
          // Pull fractionally inside the disk so rounding in the scaling
          // cannot leave the point epsilon outside the range constraint.
          p = m + (p - m) * (r * (1.0 - 1e-12) / d);
          feasible = false;
        }
      }
      if (feasible) break;
    }
    return p;
  };
  const auto objective = [&](Point2 p) {
    // metric-exempt: CSS's substitute slide is the paper's Euclidean
    // chord descent; the surrounding tour is judged under the metric.
    return geometry::distance(prev, p) + geometry::distance(p, next);
  };
  const auto feasible = [&](Point2 p) {
    return std::all_of(pts.begin(), pts.end(), [&](const Point2& m) {
      // metric-exempt: radius-r range constraint (radio disk geometry).
      return geometry::distance(p, m) <= r;
    });
  };

  // `start` is feasible by contract (SED centre or a previously accepted
  // substitute); only verified-feasible iterates may become the answer.
  Point2 best = start;
  double best_value = objective(best);
  Point2 current = best;
  double step = std::max(r, 1e-6);
  for (int iter = 0; iter < 60; ++iter) {
    Point2 grad{0.0, 0.0};
    // metric-exempt: gradient of the Euclidean chord objective above.
    const double dp = geometry::distance(current, prev);
    if (dp > 0.0) grad += (current - prev) / dp;
    const double dn = geometry::distance(current, next);
    if (dn > 0.0) grad += (current - next) / dn;
    current = project(current - grad * step);
    const double value = objective(current);
    if (value < best_value && feasible(current)) {
      best_value = value;
      best = current;
    }
    step *= 0.82;
  }
  return best;
}

// One Substitute sweep; returns true when any stop moved materially.
// substitute_position proposes candidates by Euclidean descent (a
// geometric heuristic over the disk intersection — metric-exempt), but
// acceptance compares true movement distances, so under a graph metric a
// slide is only kept when the *driven* tour gets shorter.
bool substitute_pass(const net::Deployment& deployment,
                     std::vector<Stop>& stops, double r, Point2 depot,
                     const net::MetricSpace* metric) {
  bool changed = false;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    const Point2 prev = i == 0 ? depot : stops[i - 1].position;
    const Point2 next =
        i + 1 == stops.size() ? depot : stops[i + 1].position;
    const Point2 moved = substitute_position(deployment, stops[i].members, r,
                                             prev, next, stops[i].position);
    const double before =
        net::metric_distance(metric, prev, stops[i].position) +
        net::metric_distance(metric, stops[i].position, next);
    const double after = net::metric_distance(metric, prev, moved) +
                         net::metric_distance(metric, moved, next);
    if (after < before - 1e-9) {
      stops[i].position = moved;
      changed = true;
    }
  }
  return changed;
}

// Merges adjacent stops whose member union still fits a radius-r disk
// (Combine over stops; also plays the role of Skip, since a skipped stop's
// sensors must be absorbed by a parked neighbour).
bool merge_adjacent_pass(const net::Deployment& deployment,
                         std::vector<Stop>& stops, double r) {
  bool changed = false;
  for (std::size_t i = 0; i + 1 < stops.size();) {
    std::vector<net::SensorId> merged = stops[i].members;
    merged.insert(merged.end(), stops[i + 1].members.begin(),
                  stops[i + 1].members.end());
    const std::vector<Point2> pts = member_positions(deployment, merged);
    if (geometry::fits_in_radius(pts, r)) {
      const geometry::Circle sed = geometry::smallest_enclosing_disk(pts);
      stops[i] = Stop{sed.center, std::move(merged)};
      stops.erase(stops.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

}  // namespace

ChargingPlan plan_css(const net::Deployment& deployment,
                      const PlannerConfig& config,
                      support::BudgetMeter* meter) {
  support::require(config.bundle_radius > 0.0,
                   "CSS needs a positive range radius");
  const double r = config.bundle_radius;
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  // Start from the SC tour (TSP over the sensors themselves).
  ChargingPlan plan = plan_sc(deployment, config, metered ? meter : nullptr);
  plan.algorithm = "CSS";

  // Combine consecutive sensors while they share a radius-r disk.
  std::vector<Stop> combined;
  std::vector<net::SensorId> group;
  for (const Stop& stop : plan.stops) {
    std::vector<net::SensorId> extended = group;
    extended.push_back(stop.members.front());
    if (!group.empty() &&
        !geometry::fits_in_radius(member_positions(deployment, extended), r)) {
      const auto pts = member_positions(deployment, group);
      combined.push_back(
          Stop{geometry::smallest_enclosing_disk(pts).center, group});
      group.clear();
    }
    group.push_back(stop.members.front());
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
  }
  if (!group.empty()) {
    const auto pts = member_positions(deployment, group);
    combined.push_back(
        Stop{geometry::smallest_enclosing_disk(pts).center, group});
  }
  plan.stops = std::move(combined);

  // Progressive refinement: slide stops toward the tour (Substitute) and
  // absorb stops into neighbours when possible (Skip), until fixpoint.
  // Anytime: the plan is a valid partition after every pass, so a tripped
  // budget simply stops refining. One unit is charged per stop refined.
  for (std::size_t pass = 0; pass < 8; ++pass) {
    if (metered && !meter->charge(plan.stops.size())) break;
    const bool moved = substitute_pass(deployment, plan.stops, r, plan.depot,
                                       config.metric.get());
    const bool merged = merge_adjacent_pass(deployment, plan.stops, r);
    if (!moved && !merged) break;
  }
  return plan;
}

}  // namespace bc::tour
