#include "tour/splice.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "geometry/point.h"
#include "obs/trace.h"
#include "tsp/tour.h"

namespace bc::tour {

double insertion_detour(const net::MetricSpace* metric, geometry::Point2 prev,
                        geometry::Point2 next, geometry::Point2 candidate) {
  return net::metric_distance(metric, prev, candidate) +
         net::metric_distance(metric, candidate, next) -
         net::metric_distance(metric, prev, next);
}

ChargingPlan splice_stops(const ChargingPlan& base, std::vector<Stop> patches,
                          const SpliceOptions& options,
                          support::BudgetMeter* meter) {
  ChargingPlan plan = base;
  if (patches.empty()) return plan;

  obs::TraceSpan span("tour.splice");
  span.attr("base_stops", static_cast<std::uint64_t>(plan.stops.size()))
      .attr("patches", static_cast<std::uint64_t>(patches.size()));

  // Cheapest insertion, one patch at a time. Edge i joins position i-1 to
  // position i of the cycle depot -> stops -> depot; i = 0 and
  // i = stops.size() are the two depot legs. Strict `<` keeps the first
  // (earliest-edge) minimum, so the construction is order-deterministic.
  for (Stop& patch : patches) {
    std::size_t best_edge = 0;
    double best_detour = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i <= plan.stops.size(); ++i) {
      const geometry::Point2 prev =
          i == 0 ? plan.depot : plan.stops[i - 1].position;
      const geometry::Point2 next =
          i == plan.stops.size() ? plan.depot : plan.stops[i].position;
      const double detour = insertion_detour(options.improve_options.metric,
                                             prev, next, patch.position);
      if (detour < best_detour) {
        best_detour = detour;
        best_edge = i;
      }
    }
    plan.stops.insert(
        plan.stops.begin() + static_cast<std::ptrdiff_t>(best_edge),
        std::move(patch));
  }

  if (options.improve && plan.stops.size() >= 3) {
    // 2-opt over the closed cycle with the depot pinned as point 0; the
    // tour is rotated back so the plan still starts at the depot.
    std::vector<geometry::Point2> points;
    points.reserve(plan.stops.size() + 1);
    points.push_back(plan.depot);
    for (const Stop& stop : plan.stops) points.push_back(stop.position);
    tsp::Tour order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    tsp::two_opt(points, order, options.improve_options, meter);
    tsp::rotate_to_front(order, 0);
    std::vector<Stop> reordered;
    reordered.reserve(plan.stops.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
      reordered.push_back(std::move(plan.stops[order[i] - 1]));
    }
    plan.stops = std::move(reordered);
  }
  return plan;
}

}  // namespace bc::tour
