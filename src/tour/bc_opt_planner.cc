// BC-OPT — Algorithm 3: charging-tour optimisation on top of BC.
//
// Each anchor C_i may be displaced toward its tour neighbours: parking
// farther from the bundle trades longer charging (quadratically worse
// received power for the farthest member) against a shorter tour. For a
// fixed displacement radius d, the best position on the circle around C_i
// is the tangency point of the confocal ellipse through the neighbours
// (Theorem 4), found in O(log h) via the bisector property (Theorem 5) —
// implemented by geometry::optimal_point_on_circle. The displacement
// radius is swept over a discretised range, exactly the paper's
// "for d = 0 : max" loop.
//
// Charging time is bounded conservatively by the bundle's covering-circle
// geometry: a member can be at most (sed_radius + d) from the displaced
// anchor, and exactly sed_radius from the original anchor (the SED always
// has boundary members). Accepting a move under this bound therefore never
// overstates the improvement: the evaluator's exact per-member times can
// only be smaller. Setting `exact_charging_eval` evaluates the true
// farthest-member time at each candidate instead (a strictly stronger but
// not paper-described variant, measured in the ablation bench).

#include <algorithm>
#include <vector>

#include "geometry/anchor_search.h"
#include "geometry/ellipse.h"
#include "support/require.h"
#include "tour/planner.h"

namespace bc::tour {

namespace {

using geometry::Point2;

struct StopGeometry {
  Point2 home;        // original SED anchor C_i
  double sed_radius;  // farthest member distance from home
  double demand_j;    // largest member demand
};

// Conservative stop time when parked at displacement d from home.
double conservative_time_s(const StopGeometry& g,
                           const charging::ChargingModel& model, double d) {
  return model.charge_time_s(g.sed_radius + d, g.demand_j);
}

}  // namespace

ChargingPlan plan_bc_opt(const net::Deployment& deployment,
                         const PlannerConfig& config,
                         support::BudgetMeter* meter) {
  support::require(config.opt.radius_steps >= 1,
                   "BC-OPT needs at least one displacement step");
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  ChargingPlan plan = plan_bc(deployment, config, metered ? meter : nullptr);
  plan.algorithm = "BC-OPT";
  if (plan.stops.empty()) return plan;

  const charging::ChargingModel& model = config.charging;
  const double e_m = config.movement.joules_per_meter();

  // Geometry snapshot; homes stay fixed while positions move.
  std::vector<StopGeometry> geo;
  geo.reserve(plan.stops.size());
  for (const Stop& stop : plan.stops) {
    double demand = 0.0;
    for (const net::SensorId id : stop.members) {
      demand = std::max(demand, deployment.sensor(id).demand_j);
    }
    geo.push_back(StopGeometry{stop.position,
                               stop_max_distance(deployment, stop), demand});
  }

  // Marginal-cost cap: displacing beyond D* (where the conservative
  // charging cost grows as fast as the best-case 2*E_m movement saving)
  // can never pay. d/dD [cost_w * delta * (beta+D)^2 / (alpha*p_tx)]
  // = 2*cost_w*delta*(beta+D)/(alpha*p_tx) == 2*E_m  =>  D*.
  const auto displacement_cap = [&](const StopGeometry& g) {
    if (config.opt.max_displacement_m > 0.0) {
      return config.opt.max_displacement_m;
    }
    if (g.demand_j <= 0.0) return 0.0;
    const double reach = e_m * model.alpha() * model.transmit_power_w() /
                         (model.charge_cost_w() * g.demand_j);
    const double conservative_cap =
        std::max(0.0, reach - model.beta() - g.sed_radius);
    if (!config.opt.exact_charging_eval) return conservative_cap;
    // With exact evaluation the farthest-member distance grows by less
    // than 1 m per metre of displacement (often much less, when moving
    // perpendicular to the farthest member), so profitable moves exist
    // beyond the conservative bound; triple the reach as a generous,
    // still-finite sweep range (moves are only accepted on improvement).
    return std::max(conservative_cap,
                    3.0 * reach - model.beta() - g.sed_radius);
  };

  const std::size_t n = plan.stops.size();
  for (std::size_t round = 0; round < config.opt.max_rounds; ++round) {
    bool improved = false;
    bool tripped = false;
    for (std::size_t i = 0; i < n; ++i) {
      // Anytime: every accepted displacement leaves a valid plan, so a
      // tripped budget just stops the Algorithm-3 sweep where it stands.
      if (metered && !meter->charge()) {
        tripped = true;
        break;
      }
      const Point2 prev = i == 0 ? plan.depot : plan.stops[i - 1].position;
      const Point2 next =
          i + 1 == n ? plan.depot : plan.stops[i + 1].position;
      const StopGeometry& g = geo[i];

      double cap = displacement_cap(g);
      // Moving past both neighbours is never useful.
      // metric-exempt: displacement-cap proposal heuristic; acceptance
      // below is judged under the configured metric.
      cap = std::min(cap, std::max(geometry::distance(g.home, prev),
                                   geometry::distance(g.home, next)));
      if (cap <= 0.0) continue;

      const net::MetricSpace* metric = config.metric.get();
      const auto stop_cost = [&](Point2 p, double displacement) {
        const double time =
            config.opt.exact_charging_eval
                ? isolated_stop_time_s(deployment,
                                       Stop{p, plan.stops[i].members}, model)
                : conservative_time_s(g, model, displacement);
        // Movement legs under the configured metric; the null branch keeps
        // the fused focal_sum (bit-exact Euclidean). Candidate positions
        // are still proposed by the Euclidean ellipse tangency (Theorem
        // 4) — a heuristic under a graph metric, but acceptance below is
        // judged on true driven cost, so accepted moves are genuine.
        const double legs =
            metric == nullptr
                ? geometry::focal_sum(prev, next, p)
                : metric->distance(prev, p) + metric->distance(p, next);
        return e_m * legs + model.cost_of_stop_j(time);
      };

      // metric-exempt: displacement from the SED centre is Euclidean by
      // definition (Theorem 4's d), whatever the movement metric.
      const double current_displacement =
          geometry::distance(plan.stops[i].position, g.home);
      double best_cost =
          stop_cost(plan.stops[i].position, current_displacement);
      Point2 best_position = plan.stops[i].position;
      bool moved = false;

      // d = 0 re-centres the stop; k >= 1 sweeps the displacement circles.
      for (std::size_t k = 0; k <= config.opt.radius_steps; ++k) {
        const double d =
            cap * static_cast<double>(k) /
            static_cast<double>(config.opt.radius_steps);
        Point2 candidate;
        if (k == 0) {
          candidate = g.home;
        } else {
          candidate =
              geometry::optimal_point_on_circle(prev, next, g.home, d).point;
        }
        const double cost = stop_cost(candidate, d);
        if (cost < best_cost - 1e-9) {
          best_cost = cost;
          best_position = candidate;
          moved = true;
        }
      }
      if (moved) {
        plan.stops[i].position = best_position;
        improved = true;
      }
    }
    if (tripped || !improved) break;
  }
  return plan;
}

}  // namespace bc::tour
