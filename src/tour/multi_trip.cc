#include "tour/multi_trip.h"

#include <algorithm>

#include "support/require.h"

namespace bc::tour {

namespace {

ChargingPlan make_trip(const ChargingPlan& plan, std::size_t first,
                       std::size_t last_exclusive) {
  ChargingPlan trip;
  trip.algorithm = plan.algorithm;
  trip.depot = plan.depot;
  trip.stops.assign(plan.stops.begin() + static_cast<std::ptrdiff_t>(first),
                    plan.stops.begin() +
                        static_cast<std::ptrdiff_t>(last_exclusive));
  return trip;
}

}  // namespace

double trip_energy_j(const net::Deployment& deployment,
                     const ChargingPlan& trip,
                     const charging::ChargingModel& charging,
                     const charging::MovementModel& movement,
                     const net::MetricSpace* metric) {
  double charge = 0.0;
  for (const Stop& stop : trip.stops) {
    charge +=
        charging.cost_of_stop_j(isolated_stop_time_s(deployment, stop,
                                                     charging));
  }
  return movement.move_energy_j(plan_tour_length(trip, metric)) + charge;
}

MultiTripPlan split_into_trips(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               double battery_capacity_j,
                               const net::MetricSpace* metric) {
  support::require(battery_capacity_j > 0.0,
                   "battery capacity must be positive");
  // Single-stop feasibility: out-and-back plus that stop's charge cost.
  for (const Stop& stop : plan.stops) {
    ChargingPlan lone;
    lone.depot = plan.depot;
    lone.stops = {stop};
    support::require(
        trip_energy_j(deployment, lone, charging, movement, metric) <=
            battery_capacity_j,
        "a single stop exceeds the battery capacity; no split can help");
  }

  // Greedy split in tour order.
  MultiTripPlan result;
  std::size_t first = 0;
  while (first < plan.stops.size()) {
    std::size_t last = first + 1;
    while (last < plan.stops.size()) {
      const ChargingPlan extended = make_trip(plan, first, last + 1);
      if (trip_energy_j(deployment, extended, charging, movement, metric) >
          battery_capacity_j) {
        break;
      }
      ++last;
    }
    result.trips.push_back(make_trip(plan, first, last));
    first = last;
  }

  // Boundary improvement: shifting the first stop of a trip back into its
  // predecessor (or vice versa) can shorten the extra depot legs; accept
  // shifts that stay feasible and reduce the summed trip energy.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t t = 0; t + 1 < result.trips.size(); ++t) {
      ChargingPlan& left = result.trips[t];
      ChargingPlan& right = result.trips[t + 1];
      const double before =
          trip_energy_j(deployment, left, charging, movement, metric) +
          trip_energy_j(deployment, right, charging, movement, metric);

      // Try moving the head of `right` onto the tail of `left`.
      if (!right.stops.empty()) {
        ChargingPlan new_left = left;
        new_left.stops.push_back(right.stops.front());
        ChargingPlan new_right = right;
        new_right.stops.erase(new_right.stops.begin());
        const double e_left =
            trip_energy_j(deployment, new_left, charging, movement, metric);
        const double e_right =
            trip_energy_j(deployment, new_right, charging, movement, metric);
        if (e_left <= battery_capacity_j && e_left + e_right < before - 1e-9) {
          left = std::move(new_left);
          right = std::move(new_right);
          improved = true;
          continue;
        }
      }
      // Try moving the tail of `left` onto the head of `right`.
      if (!left.stops.empty()) {
        ChargingPlan new_left = left;
        Stop moved = new_left.stops.back();
        new_left.stops.pop_back();
        ChargingPlan new_right = right;
        new_right.stops.insert(new_right.stops.begin(), std::move(moved));
        const double e_left =
            trip_energy_j(deployment, new_left, charging, movement, metric);
        const double e_right =
            trip_energy_j(deployment, new_right, charging, movement, metric);
        if (e_right <= battery_capacity_j &&
            e_left + e_right < before - 1e-9) {
          left = std::move(new_left);
          right = std::move(new_right);
          improved = true;
        }
      }
    }
    // Drop trips emptied by shifting.
    std::erase_if(result.trips, [](const ChargingPlan& trip) {
      return trip.stops.empty();
    });
  }
  return result;
}

MultiTripMetrics evaluate_trips(const net::Deployment& deployment,
                                const MultiTripPlan& trips,
                                const charging::ChargingModel& charging,
                                const charging::MovementModel& movement,
                                const net::MetricSpace* metric) {
  MultiTripMetrics m;
  m.num_trips = trips.trips.size();
  for (const ChargingPlan& trip : trips.trips) {
    const double length = plan_tour_length(trip, metric);
    double charge_time = 0.0;
    for (const Stop& stop : trip.stops) {
      charge_time += isolated_stop_time_s(deployment, stop, charging);
    }
    const double trip_total = movement.move_energy_j(length) +
                              charging.cost_of_stop_j(charge_time);
    m.tour_length_m += length;
    m.move_energy_j += movement.move_energy_j(length);
    m.charge_time_s += charge_time;
    m.charge_energy_j += charging.cost_of_stop_j(charge_time);
    m.total_energy_j += trip_total;
    m.max_trip_energy_j = std::max(m.max_trip_energy_j, trip_total);
  }
  return m;
}

}  // namespace bc::tour
