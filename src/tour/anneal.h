// Simulated-annealing joint optimiser for the full BTO problem.
//
// BC-OPT optimises stop *positions* with the bundle assignment and visit
// order frozen (Algorithm 3). Since the underlying Bundle Trajectory
// Optimization problem is NP-hard (Theorem 3), it is useful to know how
// much headroom that decomposition leaves. This annealer searches the
// joint space — stop positions, sensor-to-stop assignment, and visit
// order — under the same isolated-schedule energy objective, starting
// from any plan. It is far too slow for the planner hot path; it exists
// as a reference upper bound for ablations and tests ("how close is
// BC-OPT to a jointly optimised tour?").
//
// Moves: (1) jitter a stop position, (2) snap a stop back to its members'
// SED centre, (3) reassign a sensor to another stop, (4) reverse a tour
// segment (2-opt), (5) merge a singleton stop into its nearest stop.
// Classic Metropolis acceptance with geometric cooling; fully
// deterministic for a given seed.

#ifndef BUNDLECHARGE_TOUR_ANNEAL_H_
#define BUNDLECHARGE_TOUR_ANNEAL_H_

#include <cstdint>

#include "charging/model.h"
#include "charging/movement.h"
#include "support/deadline.h"
#include "tour/plan.h"

namespace bc::tour {

struct AnnealOptions {
  std::size_t iterations = 30000;
  // Initial temperature as a fraction of the starting energy; 0 disables
  // uphill moves entirely (pure stochastic descent).
  double initial_temperature_fraction = 0.002;
  // Geometric cooling factor applied every `iterations / 100` steps.
  double cooling = 0.92;
  // Position-jitter scale (metres); annealed together with temperature.
  double jitter_m = 15.0;
  std::uint64_t seed = 17;
  // Deadline / node cap / cancellation. The annealer is intrinsically
  // anytime — the best plan so far is returned when the budget trips. One
  // budget unit is charged per annealing iteration.
  support::Budget budget{};
  // Movement metric for the energy objective (null = Euclidean). Move
  // *proposals* (nearest-stop merge, jitter) stay Euclidean heuristics;
  // acceptance is always judged on this metric's energy.
  const net::MetricSpace* metric = nullptr;
};

struct AnnealResult {
  ChargingPlan plan;            // best plan found (always a partition)
  double initial_energy_j = 0;  // objective of the input plan
  double best_energy_j = 0;     // objective of the returned plan
  std::size_t accepted_moves = 0;
};

// Objective: movement energy + isolated-schedule charging energy — the
// same quantity evaluate_plan reports for SchedulePolicy::kIsolated.
double plan_energy_j(const net::Deployment& deployment,
                     const ChargingPlan& plan,
                     const charging::ChargingModel& charging,
                     const charging::MovementModel& movement,
                     const net::MetricSpace* metric = nullptr);

// Runs the annealer from `initial`. The result's energy never exceeds the
// input's — including when `options.budget` (or a caller-supplied shared
// `meter`) trips mid-anneal. Precondition: `initial` partitions the
// deployment's sensors.
AnnealResult anneal_plan(const net::Deployment& deployment,
                         const ChargingPlan& initial,
                         const charging::ChargingModel& charging,
                         const charging::MovementModel& movement,
                         const AnnealOptions& options = AnnealOptions{},
                         support::BudgetMeter* meter = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_ANNEAL_H_
