// Local tour repair: splicing repaired stops into an existing plan.
//
// The incremental replanning engine keeps most of a cached plan's stops
// and re-covers only a small hole; the repaired stops then have to rejoin
// the tour without re-solving the TSP. splice_stops inserts each patch
// stop at the detour-minimising edge of the existing cycle (cheapest
// insertion, deterministic tie-breaks) and then runs the neighbour-list
// 2-opt over the full cycle, so the spliced tour is a genuine
// full-neighbourhood local optimum rather than a nearest-edge guess.
// Cost is O(p·n) insertion plus the near-linear neighbour-list 2-opt —
// independent of how expensive the original solve was.

#ifndef BUNDLECHARGE_TOUR_SPLICE_H_
#define BUNDLECHARGE_TOUR_SPLICE_H_

#include <vector>

#include "support/deadline.h"
#include "tour/plan.h"
#include "tsp/improve.h"

namespace bc::tour {

struct SpliceOptions {
  // When true (default) the spliced cycle is polished with the
  // neighbour-list 2-opt (tsp::two_opt, certified); insertion order alone
  // is already a valid tour, so this only shortens it.
  bool improve = true;
  // improve_options.metric is the movement metric for both the insertion
  // detours and the 2-opt polish (null = Euclidean).
  tsp::ImproveOptions improve_options{};
};

// Added movement cost of visiting `candidate` between `prev` and `next`:
// d(prev, c) + d(c, next) - d(prev, next) under `metric` (null =
// Euclidean). The cheapest-insertion primitive shared by splice_stops and
// the multi-depot splitter's depot insertion.
double insertion_detour(const net::MetricSpace* metric, geometry::Point2 prev,
                        geometry::Point2 next, geometry::Point2 candidate);

// Returns `base` with `patches` inserted into its stop cycle. Each patch
// stop is placed at the edge (including the two depot legs) minimising
// the added detour; ties break toward the earlier edge, and patches are
// inserted in their given order, so the result is deterministic. The
// returned plan keeps base.algorithm and base.depot. A non-null `meter`
// bounds the 2-opt passes (anytime: the tour is valid at every step).
ChargingPlan splice_stops(const ChargingPlan& base, std::vector<Stop> patches,
                          const SpliceOptions& options = {},
                          support::BudgetMeter* meter = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_SPLICE_H_
