#include "tour/depots.h"

#include <limits>
#include <string>
#include <utility>

#include "support/require.h"
#include "tour/fleet.h"
#include "tour/splice.h"

namespace bc::tour {

namespace {

using geometry::Point2;
using support::Expected;
using support::Fault;
using support::FaultKind;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Energy of the slice [first, last) travelled from depot `start` to depot
// `end` — the battery-feasibility quantity, without materialising a trip.
double slice_energy_j(const net::Deployment& deployment,
                      const std::vector<Stop>& stops, std::size_t first,
                      std::size_t last, Point2 start, Point2 end,
                      const charging::ChargingModel& charging,
                      const charging::MovementModel& movement,
                      const net::MetricSpace* metric) {
  double length = 0.0;
  Point2 at = start;
  for (std::size_t i = first; i < last; ++i) {
    length += net::metric_distance(metric, at, stops[i].position);
    at = stops[i].position;
  }
  length += net::metric_distance(metric, at, end);
  double charge = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    charge += charging.cost_of_stop_j(
        isolated_stop_time_s(deployment, stops[i], charging));
  }
  return movement.move_energy_j(length) + charge;
}

}  // namespace

double depot_trip_length_m(const DepotTrip& trip,
                           std::span<const Point2> depots,
                           const net::MetricSpace* metric) {
  support::require(trip.start_depot < depots.size() &&
                       trip.end_depot < depots.size(),
                   "trip depot index out of range");
  double total = 0.0;
  Point2 at = depots[trip.start_depot];
  for (const Stop& stop : trip.stops) {
    total += net::metric_distance(metric, at, stop.position);
    at = stop.position;
  }
  total += net::metric_distance(metric, at, depots[trip.end_depot]);
  return total;
}

double depot_trip_energy_j(const net::Deployment& deployment,
                           const DepotTrip& trip,
                           std::span<const Point2> depots,
                           const charging::ChargingModel& charging,
                           const charging::MovementModel& movement,
                           const net::MetricSpace* metric) {
  double charge = 0.0;
  for (const Stop& stop : trip.stops) {
    charge += charging.cost_of_stop_j(
        isolated_stop_time_s(deployment, stop, charging));
  }
  return movement.move_energy_j(depot_trip_length_m(trip, depots, metric)) +
         charge;
}

double depot_route_time_s(const net::Deployment& deployment,
                          const DepotRoute& route,
                          std::span<const Point2> depots,
                          const charging::ChargingModel& charging,
                          const charging::MovementModel& movement,
                          const net::MetricSpace* metric) {
  double total = 0.0;
  for (const DepotTrip& trip : route.trips) {
    total += movement.move_time_s(depot_trip_length_m(trip, depots, metric));
    for (const Stop& stop : trip.stops) {
      total += isolated_stop_time_s(deployment, stop, charging);
    }
  }
  return total;
}

Expected<DepotFleetPlan> split_among_depot_fleet(
    const net::Deployment& deployment, const ChargingPlan& plan,
    const charging::ChargingModel& charging,
    const charging::MovementModel& movement,
    const DepotFleetOptions& options) {
  support::require(!options.depots.empty(),
                   "depot fleet needs at least one depot");
  support::require(options.num_chargers >= 1,
                   "depot fleet needs at least one charger");
  support::require(options.battery_capacity_j >= 0.0,
                   "battery capacity must be non-negative (0 = unlimited)");
  const std::span<const Point2> depots(options.depots);
  const net::MetricSpace* metric = options.metric;
  const double capacity = options.battery_capacity_j;

  // Phase 1: cut the stop sequence into per-charger routes with the SAME
  // core as split_among_chargers, judging each candidate route under its
  // best depot (strict `<` over ascending indices: lowest depot wins
  // ties). With one depot this is route_time_s verbatim, so the
  // single-depot reduction is bit-for-bit.
  const RouteTimeFn best_time = [&](const ChargingPlan& route) {
    ChargingPlan candidate = route;
    double best = kInf;
    for (std::size_t d = 0; d < depots.size(); ++d) {
      candidate.depot = depots[d];
      const double t =
          route_time_s(deployment, candidate, charging, movement, metric);
      if (t < best) best = t;
    }
    return best;
  };
  const FleetPlan base =
      split_routes_minimizing_makespan(plan, options.num_chargers, best_time);

  // Battery precheck: every stop must fit an out-and-back trip from its
  // best depot, else no split can serve it — fault, never strand.
  if (capacity > 0.0) {
    for (std::size_t i = 0; i < plan.stops.size(); ++i) {
      double best = kInf;
      for (std::size_t d = 0; d < depots.size(); ++d) {
        const double e =
            slice_energy_j(deployment, plan.stops, i, i + 1, depots[d],
                           depots[d], charging, movement, metric);
        if (e < best) best = e;
      }
      if (best > capacity) {
        return Fault{FaultKind::kBatteryShortfall,
                     "stop " + std::to_string(i) +
                         " exceeds the battery capacity out-and-back from "
                         "every depot; no trip split can serve it",
                     i};
      }
    }
  }

  DepotFleetPlan fleet;
  fleet.routes.reserve(base.routes.size());
  std::size_t stop_offset = 0;  // global index of each route's first stop
  for (const ChargingPlan& route : base.routes) {
    DepotRoute out;
    // Phase 2: anchor the route at its best ("home") depot.
    {
      ChargingPlan candidate = route;
      double best = kInf;
      for (std::size_t d = 0; d < depots.size(); ++d) {
        candidate.depot = depots[d];
        const double t =
            route_time_s(deployment, candidate, charging, movement, metric);
        if (t < best) {
          best = t;
          out.home_depot = d;
        }
      }
    }
    const std::vector<Stop>& stops = route.stops;
    const std::size_t m = stops.size();
    const Point2 home = depots[out.home_depot];

    if (m == 0) {
      fleet.routes.push_back(std::move(out));
      continue;
    }
    if (capacity <= 0.0) {
      out.trips.push_back(DepotTrip{out.home_depot, out.home_depot, stops});
      fleet.routes.push_back(std::move(out));
      stop_offset += m;
      continue;
    }

    // Phase 3: cut the route into battery-feasible trips. Greedy in tour
    // order: grow the current trip while SOME end depot keeps it within
    // the battery, then close it at the feasible depot whose insertion
    // between the boundary stops detours least (cheapest insertion,
    // lowest index on ties). The charger's battery resets at each depot.
    const auto slice_from = [&](std::size_t first, std::size_t last,
                                Point2 start, Point2 end) {
      return slice_energy_j(deployment, stops, first, last, start, end,
                            charging, movement, metric);
    };
    const auto feasible_with_some_end = [&](std::size_t first,
                                            std::size_t last, Point2 start) {
      for (std::size_t d = 0; d < depots.size(); ++d) {
        if (slice_from(first, last, start, depots[d]) <= capacity) {
          return true;
        }
      }
      return false;
    };

    std::size_t cur = out.home_depot;
    std::size_t first = 0;
    while (first < m) {
      if (!feasible_with_some_end(first, first + 1, depots[cur])) {
        // The chained start depot is too far for even one stop: deadhead
        // to the stop's best out-and-back depot (feasible by the
        // precheck) and retry. The relocation leg itself must fit the
        // battery, else the depot network is too sparse for this charger.
        std::size_t best_d = 0;
        double best_e = kInf;
        for (std::size_t d = 0; d < depots.size(); ++d) {
          const double e =
              slice_from(first, first + 1, depots[d], depots[d]);
          if (e < best_e) {
            best_e = e;
            best_d = d;
          }
        }
        const DepotTrip dead{cur, best_d, {}};
        if (depot_trip_energy_j(deployment, dead, depots, charging, movement,
                                metric) > capacity) {
          return Fault{
              FaultKind::kBatteryShortfall,
              "relocating from depot " + std::to_string(cur) + " to depot " +
                  std::to_string(best_d) + " to reach stop " +
                  std::to_string(stop_offset + first) +
                  " exceeds the battery capacity",
              stop_offset + first};
        }
        out.trips.push_back(dead);
        cur = best_d;
        continue;
      }
      std::size_t last = first + 1;
      while (last < m &&
             feasible_with_some_end(first, last + 1, depots[cur])) {
        ++last;
      }
      // Close the trip: the depot visit is inserted between stops[last-1]
      // and what follows (the next stop, or home when the route ends) via
      // the cheapest-insertion primitive, restricted to feasible depots.
      const Point2 boundary_prev = stops[last - 1].position;
      const Point2 boundary_next = last < m ? stops[last].position : home;
      std::size_t end = 0;
      double best_detour = kInf;
      bool found = false;
      for (std::size_t d = 0; d < depots.size(); ++d) {
        if (slice_from(first, last, depots[cur], depots[d]) > capacity) {
          continue;
        }
        const double detour = insertion_detour(metric, boundary_prev,
                                               boundary_next, depots[d]);
        if (detour < best_detour) {
          best_detour = detour;
          end = d;
          found = true;
        }
      }
      support::ensure(found, "trip growth stopped at a feasible slice");
      DepotTrip trip;
      trip.start_depot = cur;
      trip.end_depot = end;
      trip.stops.assign(stops.begin() + static_cast<std::ptrdiff_t>(first),
                        stops.begin() + static_cast<std::ptrdiff_t>(last));
      out.trips.push_back(std::move(trip));
      cur = end;
      first = last;
    }
    // The route must end back home; deadhead if the last trip closed at a
    // different depot (battery resets there first).
    if (cur != out.home_depot) {
      const DepotTrip dead{cur, out.home_depot, {}};
      if (depot_trip_energy_j(deployment, dead, depots, charging, movement,
                              metric) > capacity) {
        return Fault{FaultKind::kBatteryShortfall,
                     "returning home from depot " + std::to_string(cur) +
                         " to depot " + std::to_string(out.home_depot) +
                         " exceeds the battery capacity",
                     support::kNoStop};
      }
      out.trips.push_back(dead);
    }
    fleet.routes.push_back(std::move(out));
    stop_offset += m;
  }
  return fleet;
}

DepotFleetMetrics evaluate_depot_fleet(
    const net::Deployment& deployment, const DepotFleetPlan& fleet,
    const DepotFleetOptions& options, const charging::ChargingModel& charging,
    const charging::MovementModel& movement) {
  const std::span<const Point2> depots(options.depots);
  const net::MetricSpace* metric = options.metric;
  DepotFleetMetrics m;
  for (const DepotRoute& route : fleet.routes) {
    bool any_stops = false;
    double route_time = 0.0;
    for (const DepotTrip& trip : route.trips) {
      const double length = depot_trip_length_m(trip, depots, metric);
      const double energy =
          depot_trip_energy_j(deployment, trip, depots, charging, movement,
                              metric);
      if (trip.stops.empty()) {
        ++m.num_deadhead_trips;
      } else {
        ++m.num_trips;
        any_stops = true;
      }
      // Accumulation order matches route_time_s (move time, then stop
      // times folded in one at a time) so the single-depot reduction is
      // bit-identical through the metrics too.
      route_time += movement.move_time_s(length);
      for (const Stop& stop : trip.stops) {
        route_time += isolated_stop_time_s(deployment, stop, charging);
      }
      m.total_tour_length_m += length;
      m.total_energy_j += energy;
      m.max_trip_energy_j = std::max(m.max_trip_energy_j, energy);
    }
    if (any_stops) {
      ++m.num_routes;
      m.route_times_s.push_back(route_time);
      m.makespan_s = std::max(m.makespan_s, route_time);
    }
  }
  return m;
}

}  // namespace bc::tour
