#include "tour/replan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "bundle/candidates.h"
#include "bundle/exact_cover.h"
#include "bundle/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/require.h"

namespace bc::tour {

namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

// One rung of the degradation ladder.
struct Rung {
  bundle::GeneratorKind kind;
  std::size_t node_budget = 0;  // only meaningful for kExact
};

std::vector<Rung> build_ladder(const PlannerConfig& config,
                               const ReplanOptions& options) {
  std::vector<Rung> ladder;
  if (config.generator.kind == bundle::GeneratorKind::kExact) {
    double budget = static_cast<double>(options.initial_node_budget);
    for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
      const auto nodes =
          std::max<std::size_t>(1, static_cast<std::size_t>(budget));
      ladder.push_back({bundle::GeneratorKind::kExact, nodes});
      budget *= options.budget_backoff;
    }
  } else {
    ladder.push_back({config.generator.kind, 0});
  }
  if (options.fallback_to_heuristics) {
    for (const bundle::GeneratorKind kind :
         {bundle::GeneratorKind::kGreedy, bundle::GeneratorKind::kGrid,
          bundle::GeneratorKind::kSweep}) {
      if (kind != config.generator.kind) ladder.push_back({kind, 0});
    }
  }
  return ladder;
}

// Deterministic nearest-neighbour path from `start` over the stops,
// ending wherever the chain ends (the executor adds the depot leg). Ties
// break toward the lower stop index, so the order is reproducible. A
// null metric compares squared Euclidean distances (same argmin, no
// sqrt — the bit-exact pre-metric path).
void order_stops_from(geometry::Point2 start, std::vector<Stop>& stops,
                      const net::MetricSpace* metric) {
  geometry::Point2 at = start;
  for (std::size_t filled = 0; filled + 1 < stops.size(); ++filled) {
    std::size_t best = filled;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = filled; j < stops.size(); ++j) {
      const double d =
          metric == nullptr
              ? geometry::distance_squared(at, stops[j].position)
              : metric->distance(at, stops[j].position);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    std::swap(stops[filled], stops[best]);
    at = stops[filled].position;
  }
}

}  // namespace

Expected<ChargingPlan> replan_tour(const net::Deployment& deployment,
                                   const ReplanRequest& request,
                                   const PlannerConfig& config,
                                   const ReplanOptions& options,
                                   support::BudgetMeter* meter) {
  support::require(request.remaining.size() == request.deficits_j.size(),
                   "one deficit per remaining sensor");
  support::require(std::is_sorted(request.remaining.begin(),
                                  request.remaining.end(),
                                  std::less_equal<net::SensorId>()),
                   "remaining ids must be strictly ascending");
  support::require(config.bundle_radius > 0.0,
                   "bundle radius must be positive");
  support::require(options.max_attempts >= 1, "need at least one attempt");
  support::require(
      options.budget_backoff > 0.0 && options.budget_backoff < 1.0,
      "budget backoff must shrink the budget");

  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  obs::TraceSpan span("replan");
  span.attr("remaining", static_cast<std::uint64_t>(request.remaining.size()));
  std::uint64_t rungs_attempted = 0;
  const auto flush = [&](bool ok, std::string_view algorithm) {
    static const obs::Counter calls("replan.calls");
    static const obs::Counter rungs("replan.rungs_attempted");
    static const obs::Counter successes("replan.successes");
    static const obs::Counter failures("replan.failures");
    calls.add();
    rungs.add(rungs_attempted);
    successes.add(ok ? 1 : 0);
    failures.add(ok ? 0 : 1);
    span.attr("rungs_attempted", rungs_attempted)
        .attr("ok", ok)
        .attr("algorithm", algorithm);
  };

  ChargingPlan plan;
  plan.algorithm = "REPLAN";
  plan.depot = deployment.depot();
  if (request.remaining.empty()) {
    flush(true, plan.algorithm);
    return plan;
  }

  // Sub-deployment over the remaining sensors; ids are remapped back to
  // the original deployment when stops are emitted. Planning uses surveyed
  // positions: the planner only knows the survey, faults live in physics.
  std::vector<geometry::Point2> positions;
  std::vector<double> demands;
  positions.reserve(request.remaining.size());
  demands.reserve(request.remaining.size());
  for (std::size_t i = 0; i < request.remaining.size(); ++i) {
    const net::SensorId id = request.remaining[i];
    support::require(id < deployment.size(), "remaining id out of range");
    positions.push_back(deployment.sensor(id).position);
    demands.push_back(std::max(request.deficits_j[i], 1e-9));
  }
  const net::Deployment remaining(std::move(positions), deployment.field(),
                                  deployment.depot(), std::move(demands));

  const std::vector<Rung> ladder = build_ladder(config, options);
  std::string attempts_log;
  bool budget_blocked = false;
  for (const Rung& rung : ladder) {
    // Cooperative cancellation: once the shared ladder budget trips, stop
    // trying rungs — a replan must never keep computing past its deadline.
    // A meter whose node budget is already depleted fails fast the same
    // way: every rung's first charge would trip, so attempting the ladder
    // would burn a full pass of doomed rungs before reporting the same
    // kBudgetExhausted (the meter passes check(), which only polls the
    // clock and cancellation, so the depletion must be tested explicitly).
    if (metered && (meter->node_budget_depleted() || !meter->check())) {
      budget_blocked = true;
      attempts_log += "(ladder budget ";
      attempts_log += meter->exhausted()
                          ? "tripped: " + support::to_string(meter->trip())
                          : std::string("depleted: node cap");
      attempts_log += ") ";
      break;
    }
    ++rungs_attempted;
    std::vector<bundle::Bundle> bundles;
    if (rung.kind == bundle::GeneratorKind::kExact) {
      bundle::ExactCoverOptions exact = config.generator.exact;
      exact.max_nodes = rung.node_budget;
      const std::vector<bundle::Bundle> candidates = bundle::
          enumerate_candidates(remaining, config.bundle_radius,
                               bundle::CandidateOptions{},
                               metered ? meter : nullptr);
      auto found = bundle::exact_cover_anytime(remaining, candidates, exact,
                                               metered ? meter : nullptr);
      if (!found.has_value() || !found.value().optimal) {
        attempts_log += std::string(bundle::to_string(rung.kind)) + "(budget " +
                        std::to_string(rung.node_budget) + ") ";
        continue;  // budget exhausted: back off or fall down the ladder
      }
      bundles = std::move(found.value().bundles);
    } else {
      bundle::GeneratorOptions generator = config.generator;
      generator.kind = rung.kind;
      bundles = bundle::generate_bundles(remaining, config.bundle_radius,
                                         generator, metered ? meter : nullptr);
    }
    if (!bundle::is_partition(remaining, bundles)) {
      attempts_log += std::string(bundle::to_string(rung.kind)) + "(gap) ";
      continue;  // kCoverageGap for this rung; try the next one
    }

    plan.stops.clear();
    plan.stops.reserve(bundles.size());
    for (const bundle::Bundle& b : bundles) {
      Stop stop;
      stop.position = b.anchor;
      stop.members.reserve(b.members.size());
      for (const net::SensorId local : b.members) {
        stop.members.push_back(request.remaining[local]);
      }
      plan.stops.push_back(std::move(stop));
    }
    order_stops_from(request.current_position, plan.stops,
                     config.metric.get());
    plan.algorithm =
        "REPLAN(" + std::string(bundle::to_string(rung.kind)) + ")";
    flush(true, plan.algorithm);
    return plan;
  }

  flush(false, "none");
  if (metered && (budget_blocked || meter->exhausted())) {
    static const obs::Counter trips("replan.budget_trips");
    trips.add();
    const std::string cause = meter->exhausted()
                                  ? support::describe_trip(*meter)
                                  : "node budget already depleted after " +
                                        std::to_string(meter->nodes_used()) +
                                        " units";
    return Fault{FaultKind::kBudgetExhausted,
                 "replan ladder budget tripped (" + cause +
                     ") before any rung covered " +
                     std::to_string(request.remaining.size()) +
                     " sensors (tried: " + attempts_log + ")"};
  }
  return Fault{FaultKind::kReplanExhausted,
               "no generator rung produced a covering partition for " +
                   std::to_string(request.remaining.size()) +
                   " sensors (tried: " + attempts_log + ")"};
}

}  // namespace bc::tour
