#include "tour/anneal.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/minidisk.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::tour {

namespace {

using geometry::Point2;

// Mutable annealing state with cached per-stop charge costs.
struct State {
  const net::Deployment* deployment = nullptr;
  const charging::ChargingModel* charging = nullptr;
  const charging::MovementModel* movement = nullptr;
  const net::MetricSpace* metric = nullptr;
  ChargingPlan plan;
  std::vector<double> stop_cost_j;  // charge cost per stop

  double charge_cost(const Stop& stop) const {
    return charging->cost_of_stop_j(
        isolated_stop_time_s(*deployment, stop, *charging));
  }

  void rebuild_costs() {
    stop_cost_j.clear();
    for (const Stop& stop : plan.stops) {
      stop_cost_j.push_back(charge_cost(stop));
    }
  }

  double energy() const {
    double total = movement->move_energy_j(plan_tour_length(plan, metric));
    for (const double c : stop_cost_j) total += c;
    return total;
  }
};

Point2 sed_center(const net::Deployment& deployment,
                  const std::vector<net::SensorId>& members) {
  std::vector<Point2> pts;
  pts.reserve(members.size());
  for (const net::SensorId id : members) {
    pts.push_back(deployment.sensor(id).position);
  }
  return geometry::smallest_enclosing_disk(pts).center;
}

}  // namespace

double plan_energy_j(const net::Deployment& deployment,
                     const ChargingPlan& plan,
                     const charging::ChargingModel& charging,
                     const charging::MovementModel& movement,
                     const net::MetricSpace* metric) {
  double total = movement.move_energy_j(plan_tour_length(plan, metric));
  for (const Stop& stop : plan.stops) {
    total += charging.cost_of_stop_j(
        isolated_stop_time_s(deployment, stop, charging));
  }
  return total;
}

AnnealResult anneal_plan(const net::Deployment& deployment,
                         const ChargingPlan& initial,
                         const charging::ChargingModel& charging,
                         const charging::MovementModel& movement,
                         const AnnealOptions& options,
                         support::BudgetMeter* meter) {
  support::require(plan_is_partition(deployment, initial),
                   "anneal needs a partition plan");
  support::require(options.cooling > 0.0 && options.cooling <= 1.0,
                   "cooling factor must be in (0, 1]");

  State state;
  state.deployment = &deployment;
  state.charging = &charging;
  state.movement = &movement;
  state.metric = options.metric;
  state.plan = initial;
  state.rebuild_costs();

  AnnealResult result;
  result.initial_energy_j = state.energy();
  result.plan = initial;
  result.best_energy_j = result.initial_energy_j;

  if (state.plan.stops.empty()) return result;

  support::Rng rng(options.seed);
  double current_energy = result.initial_energy_j;
  double temperature =
      options.initial_temperature_fraction * result.initial_energy_j;
  double jitter = options.jitter_m;
  const std::size_t cool_every = std::max<std::size_t>(
      1, options.iterations / 100);

  const auto accept = [&](double delta) {
    if (delta <= 0.0) return true;
    if (temperature <= 0.0) return false;
    return rng.uniform() < std::exp(-delta / temperature);
  };

  support::BudgetMeter local_meter(options.budget);
  const bool metered = meter != nullptr || !options.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Anytime: `result` always holds the best plan seen, so a budget trip
    // ends the walk and returns it.
    if (metered && !meter->charge()) break;
    if (iter % cool_every == cool_every - 1) {
      temperature *= options.cooling;
      jitter = std::max(0.5, jitter * options.cooling);
    }
    const std::size_t n = state.plan.stops.size();
    const auto move_kind = rng.below(n > 1 ? 5 : 2);
    switch (move_kind) {
      case 0: {  // move a stop position: random jitter or directed pull
        const std::size_t i = rng.below(n);
        Stop& stop = state.plan.stops[i];
        const Point2 old_pos = stop.position;
        const double old_cost = state.stop_cost_j[i];
        const double before = current_energy;
        if (rng.chance(0.5)) {
          stop.position =
              old_pos + Point2{rng.gaussian(0.0, jitter),
                               rng.gaussian(0.0, jitter)};
        } else {
          // Directed proposal: pull toward the chord between the tour
          // neighbours — the direction BC-OPT's Theorem-4 move exploits.
          const Point2 prev =
              i == 0 ? state.plan.depot : state.plan.stops[i - 1].position;
          const Point2 next = i + 1 == n ? state.plan.depot
                                         : state.plan.stops[i + 1].position;
          stop.position =
              geometry::lerp(old_pos, geometry::midpoint(prev, next),
                             rng.uniform(0.05, 0.6));
        }
        state.stop_cost_j[i] = state.charge_cost(stop);
        const double after = state.energy();
        if (!accept(after - before)) {
          stop.position = old_pos;
          state.stop_cost_j[i] = old_cost;
        } else {
          current_energy = after;
          ++result.accepted_moves;
        }
        break;
      }
      case 1: {  // snap a stop back to its members' SED centre
        const std::size_t i = rng.below(n);
        Stop& stop = state.plan.stops[i];
        const Point2 old_pos = stop.position;
        const double old_cost = state.stop_cost_j[i];
        const double before = current_energy;
        stop.position = sed_center(deployment, stop.members);
        state.stop_cost_j[i] = state.charge_cost(stop);
        const double after = state.energy();
        if (!accept(after - before)) {
          stop.position = old_pos;
          state.stop_cost_j[i] = old_cost;
        } else {
          current_energy = after;
          ++result.accepted_moves;
        }
        break;
      }
      case 2: {  // reassign one sensor to another stop
        const std::size_t from = rng.below(n);
        std::size_t to = rng.below(n);
        if (to == from || state.plan.stops[from].members.size() <= 1) break;
        auto& src = state.plan.stops[from].members;
        const std::size_t pick = rng.below(src.size());
        const net::SensorId sensor = src[pick];
        const double before = current_energy;
        const double old_from_cost = state.stop_cost_j[from];
        const double old_to_cost = state.stop_cost_j[to];
        src.erase(src.begin() + static_cast<std::ptrdiff_t>(pick));
        state.plan.stops[to].members.push_back(sensor);
        state.stop_cost_j[from] = state.charge_cost(state.plan.stops[from]);
        state.stop_cost_j[to] = state.charge_cost(state.plan.stops[to]);
        const double after = state.energy();
        if (!accept(after - before)) {
          state.plan.stops[to].members.pop_back();
          src.insert(src.begin() + static_cast<std::ptrdiff_t>(pick),
                     sensor);
          state.stop_cost_j[from] = old_from_cost;
          state.stop_cost_j[to] = old_to_cost;
        } else {
          current_energy = after;
          ++result.accepted_moves;
        }
        break;
      }
      case 3: {  // 2-opt: reverse a segment of the visit order
        const std::size_t i = rng.below(n);
        const std::size_t j = rng.below(n);
        const std::size_t lo = std::min(i, j);
        const std::size_t hi = std::max(i, j);
        if (hi - lo < 1) break;
        const double before = current_energy;
        std::reverse(state.plan.stops.begin() +
                         static_cast<std::ptrdiff_t>(lo),
                     state.plan.stops.begin() +
                         static_cast<std::ptrdiff_t>(hi) + 1);
        std::reverse(state.stop_cost_j.begin() +
                         static_cast<std::ptrdiff_t>(lo),
                     state.stop_cost_j.begin() +
                         static_cast<std::ptrdiff_t>(hi) + 1);
        const double after = state.energy();
        if (!accept(after - before)) {
          std::reverse(state.plan.stops.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       state.plan.stops.begin() +
                           static_cast<std::ptrdiff_t>(hi) + 1);
          std::reverse(state.stop_cost_j.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       state.stop_cost_j.begin() +
                           static_cast<std::ptrdiff_t>(hi) + 1);
        } else {
          current_energy = after;
          ++result.accepted_moves;
        }
        break;
      }
      default: {  // merge a singleton stop into the nearest other stop
        const std::size_t i = rng.below(n);
        if (state.plan.stops[i].members.size() != 1) break;
        std::size_t nearest = n;
        double best_d = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k == i) continue;
          // metric-exempt: nearest-stop merge *proposal*; acceptance is
          // judged on the metric's energy objective.
          const double d = geometry::distance(
              state.plan.stops[i].position, state.plan.stops[k].position);
          if (nearest == n || d < best_d) {
            nearest = k;
            best_d = d;
          }
        }
        if (nearest == n) break;
        // Tentatively apply: remove stop i, push its sensor to `nearest`.
        State backup = state;  // simple & safe: this move is rare
        state.plan.stops[nearest].members.push_back(
            state.plan.stops[i].members[0]);
        state.plan.stops.erase(state.plan.stops.begin() +
                               static_cast<std::ptrdiff_t>(i));
        state.stop_cost_j.erase(state.stop_cost_j.begin() +
                                static_cast<std::ptrdiff_t>(i));
        const std::size_t target = nearest > i ? nearest - 1 : nearest;
        state.stop_cost_j[target] =
            state.charge_cost(state.plan.stops[target]);
        const double after = state.energy();
        if (!accept(after - current_energy)) {
          state = std::move(backup);
        } else {
          current_energy = after;
          ++result.accepted_moves;
        }
        break;
      }
    }

    if (current_energy < result.best_energy_j - 1e-9) {
      result.best_energy_j = current_energy;
      result.plan = state.plan;
    }
  }

  support::ensure(plan_is_partition(deployment, result.plan),
                  "anneal must preserve the sensor partition");
  support::ensure(result.best_energy_j <= result.initial_energy_j + 1e-6,
                  "anneal must never return a worse plan");
  return result;
}

}  // namespace bc::tour
