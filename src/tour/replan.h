// Online replanning from the mobile charger's current position.
//
// When mission execution is disrupted (dead bundle members, stop-time
// overruns, a projected battery shortfall), the executor asks for a fresh
// tour over the *remaining* deficits, starting from wherever the MC
// currently is and ending at the depot. Unlike the offline planners, a
// replan runs mid-mission with the charger burning battery, so it must
// never hang: the exact-cover stage is retried under a geometrically
// shrinking node budget at most `max_attempts` times, then the generator
// ladder falls back greedy -> grid -> sweep. A pathological instance
// therefore degrades to a cheaper cover instead of stalling the mission,
// and total work is bounded by construction.
//
// Failures are reported as structured faults (support::Expected), never
// asserts: a replan that cannot cover the remaining sensors is an outcome
// the executor handles, not a crash.

#ifndef BUNDLECHARGE_TOUR_REPLAN_H_
#define BUNDLECHARGE_TOUR_REPLAN_H_

#include <cstddef>
#include <vector>

#include "geometry/point.h"
#include "net/deployment.h"
#include "net/sensor.h"
#include "support/expected.h"
#include "tour/plan.h"
#include "tour/planner.h"

namespace bc::tour {

struct ReplanOptions {
  // Exact-cover retries before falling back to heuristic generators; each
  // retry multiplies the node budget by `budget_backoff`.
  std::size_t max_attempts = 3;
  std::size_t initial_node_budget = 1'000'000;
  double budget_backoff = 0.25;
  // When false, a failed configured generator is a kReplanExhausted fault
  // instead of sliding down the greedy -> grid -> sweep ladder (used by
  // tests to exercise the exhaustion path; production keeps the ladder).
  bool fallback_to_heuristics = true;
  // Deadline / shared node cap / cancellation spanning the *whole* ladder
  // (all rungs draw from one meter). When the budget trips before any rung
  // produces a covering partition, replan_tour returns a
  // kBudgetExhausted fault — it never keeps computing past its deadline.
  support::Budget budget{};
};

struct ReplanRequest {
  // Where the MC is now; the replanned route starts here and ends at the
  // deployment depot.
  geometry::Point2 current_position;
  // Sensors still owed energy, as ids into the *original* deployment, with
  // their remaining deficits (J). Non-positive deficits are clamped to a
  // minimal epsilon. Preconditions: ids valid and strictly ascending,
  // deficits aligned with remaining.
  std::vector<net::SensorId> remaining;
  std::vector<double> deficits_j;
};

// Plans a route over the remaining deficits: bundle cover (bounded-retry
// ladder above) -> stops at bundle anchors -> deterministic nearest-
// neighbour path from the current position. Stop members are ids into the
// original deployment. An empty `remaining` yields an empty plan.
// The returned plan's depot is the deployment depot; the executor accounts
// the approach leg from `current_position` to the first stop itself.
support::Expected<ChargingPlan> replan_tour(
    const net::Deployment& deployment, const ReplanRequest& request,
    const PlannerConfig& config, const ReplanOptions& options = {},
    support::BudgetMeter* meter = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_REPLAN_H_
