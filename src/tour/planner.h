// Planner facade: configuration and the four trajectory-planning
// algorithms compared in the paper's evaluation (§VI-B).
//
//   SC      Single Charging [6]: TSP over every sensor, charge at zero
//           distance — no bundling.
//   CSS     Combine-Skip-Substitute [36]: data-collection heuristic adapted
//           to charging; merges tour-consecutive sensors whose radius-r
//           disks share a common point and slides stops to shorten the
//           tour, ignoring charging efficiency.
//   BC      Bundle Charging (this paper): greedy bundle generation
//           (Algorithm 2) + TSP over anchor points.
//   BC-OPT  BC + charging-tour optimisation (Algorithm 3, Theorems 4-5):
//           anchors are iteratively displaced toward their tour neighbours
//           whenever the movement energy saved exceeds the charging energy
//           lost.
//   TSPN    the classic TSP-with-neighborhoods baseline [4, 6, 28] the
//           paper's §II criticises: the charger merely *reaches* each
//           bundle's covering disk at the detour-minimising point and
//           charges from there, ignoring the charging-efficiency cost of
//           parking at the neighbourhood boundary.

#ifndef BUNDLECHARGE_TOUR_PLANNER_H_
#define BUNDLECHARGE_TOUR_PLANNER_H_

#include <memory>
#include <string_view>

#include "bundle/generator.h"
#include "bundle/shard.h"
#include "charging/model.h"
#include "charging/movement.h"
#include "net/deployment.h"
#include "support/deadline.h"
#include "tour/plan.h"
#include "tsp/solver.h"

namespace bc::tour {

enum class Algorithm { kSc, kCss, kBc, kBcOpt, kTspn, kBcSharded };

std::string_view to_string(Algorithm algorithm);

// Knobs for the BC-OPT anchor relocation (Algorithm 3).
struct BcOptOptions {
  // Displacement radii are swept over this many evenly spaced steps in
  // (0, d_max]; the paper's "for d = 0 : max" discretisation.
  std::size_t radius_steps = 24;
  // Upper bound on full passes over all stops; convergence (a pass with no
  // accepted move) is typically reached in 2-4 passes.
  std::size_t max_rounds = 8;
  // Optional hard cap on the displacement radius (metres). 0 = derive the
  // cap from the models: displacement stops paying off once the marginal
  // charging-cost increase 2*cost_w*delta*(beta+D)/(alpha*p_tx) exceeds
  // the best-case marginal movement saving of 2*E_m.
  double max_displacement_m = 0.0;
  // When false (paper-faithful), candidate stop times use the conservative
  // covering-circle bound t(sed_radius + d); when true, the exact
  // farthest-member time at each candidate position is used (strictly
  // stronger; measured by the ablation bench).
  bool exact_charging_eval = false;
};

struct PlannerConfig {
  // Bundle generation radius r (metres); the central trade-off knob.
  double bundle_radius = 20.0;
  // Which generator feeds BC/BC-OPT (greedy by default; the Fig. 11 bench
  // swaps in grid/exact).
  bundle::GeneratorOptions generator{};
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
  tsp::SolverOptions tsp{};
  BcOptOptions opt{};
  // BC-SHARD: tiling for the hierarchical large-n generator
  // (bundle/shard.h). Stop counts at or below the cutover are toured
  // through the exact solver facade like BC (so a degenerate single-tile
  // shard plan matches BC bit for bit); larger plans switch to the snake
  // construction + uncertified neighbour-list 2-opt, whose cost stays
  // near-linear in the stop count.
  bundle::ShardOptions shard{};
  std::size_t shard_tsp_cutover = 1000;
  // Movement metric shared by every stage (tour ordering, refinement
  // acceptance, travel legs). Null = Euclidean free space, the bit-exact
  // default. Owned here (shared_ptr: configs are copied across profiles
  // and service threads); planners hand the raw pointer to the TSP stack
  // via tsp.improve.metric — set *this* field, not that one.
  std::shared_ptr<const net::MetricSpace> metric;
  // Deadline / node cap / cancellation shared across every solver stage
  // the planner touches (bundle generation, TSP ordering, refinement
  // passes). Every planner is *anytime* under a budget: a trip stops the
  // current refinement and returns the best valid plan so far — the plan
  // is still a partition of the sensors, just less optimised.
  support::Budget budget{};
};

// Stamps config.metric into a copy of config.tsp for the solver stack
// (tsp options carry the metric via improve.metric, see tsp/solver.h).
// Every planner routes its TSP calls through this helper.
inline tsp::SolverOptions tsp_options_with_metric(
    const PlannerConfig& config) {
  tsp::SolverOptions options = config.tsp;
  if (config.metric != nullptr) {
    options.improve.metric = config.metric.get();
  }
  return options;
}

// Plans a charging tour with the requested algorithm. The returned plan is
// always a partition of the deployment's sensors over its stops — even
// when `config.budget` (or a caller-supplied `meter`) trips mid-plan.
// Preconditions: bundle_radius > 0 for CSS/BC/BC-OPT.
ChargingPlan plan_charging_tour(const net::Deployment& deployment,
                                Algorithm algorithm,
                                const PlannerConfig& config,
                                support::BudgetMeter* meter = nullptr);

// Individual planners (same contracts); exposed for tests and ablations.
ChargingPlan plan_sc(const net::Deployment& deployment,
                     const PlannerConfig& config,
                     support::BudgetMeter* meter = nullptr);
ChargingPlan plan_css(const net::Deployment& deployment,
                      const PlannerConfig& config,
                      support::BudgetMeter* meter = nullptr);
ChargingPlan plan_bc(const net::Deployment& deployment,
                     const PlannerConfig& config,
                     support::BudgetMeter* meter = nullptr);
ChargingPlan plan_bc_opt(const net::Deployment& deployment,
                         const PlannerConfig& config,
                         support::BudgetMeter* meter = nullptr);
ChargingPlan plan_tspn(const net::Deployment& deployment,
                       const PlannerConfig& config,
                       support::BudgetMeter* meter = nullptr);
ChargingPlan plan_bc_sharded(const net::Deployment& deployment,
                             const PlannerConfig& config,
                             support::BudgetMeter* meter = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_PLANNER_H_
