// TSPN — the TSP-with-neighborhoods baseline of [4, 6, 28].
//
// Classic charger trajectory planning reduces the problem to TSPN: the
// charger only has to *reach* each sensor's (here: each bundle's)
// neighbourhood, so every stop is pulled to the point of its covering
// disk that minimises the tour detour, with no regard for how far that
// point is from the sensors being charged. The paper's §II argues this is
// exactly what goes wrong — "only reaching each neighborhood is
// insufficient … improper location leads to large charging cost" — and
// this planner exists to measure that criticism: its tours are the
// shortest of all planners, but its stop times (farthest member from a
// boundary point, up to 2r) are the longest.
//
// Tour structure mirrors BC (same bundles, same TSP over anchors); only
// the stop positions differ. For a fixed displacement disk, the
// detour-minimising point is either on the chord between the tour
// neighbours (when it crosses the disk) or the Theorem-4 tangency point
// on the disk boundary, so the geometry kernel is shared with BC-OPT.

#include <algorithm>

#include "geometry/anchor_search.h"
#include "geometry/ellipse.h"
#include "geometry/segment.h"
#include "support/require.h"
#include "tour/planner.h"

namespace bc::tour {

namespace {

using geometry::Point2;

// The point of the disk (center, radius) minimising |prev P| + |P next|.
Point2 reach_point(Point2 prev, Point2 next, Point2 center, double radius) {
  const geometry::Segment chord{prev, next};
  const Point2 on_chord = geometry::closest_point(chord, center);
  // metric-exempt: disk-membership predicate (free-space radio range).
  if (geometry::distance(on_chord, center) <= radius) {
    // The direct leg already pierces the neighbourhood; stop where it
    // first touches (any chord point inside the disk gives detour |AB|;
    // the closest point also minimises the charging distance among them).
    return on_chord;
  }
  return geometry::optimal_point_on_circle(prev, next, center, radius).point;
}

}  // namespace

ChargingPlan plan_tspn(const net::Deployment& deployment,
                       const PlannerConfig& config,
                       support::BudgetMeter* meter) {
  support::require(config.bundle_radius > 0.0,
                   "TSPN needs a positive neighbourhood radius");
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  ChargingPlan plan = plan_bc(deployment, config, metered ? meter : nullptr);
  plan.algorithm = "TSPN";
  if (plan.stops.empty()) return plan;

  // Anchors stay the disk centres; positions are pulled to the disk's
  // detour-minimising point. Neighbour positions move too, so sweep to a
  // fixpoint (a handful of passes suffices).
  std::vector<Point2> centers;
  centers.reserve(plan.stops.size());
  for (const Stop& stop : plan.stops) centers.push_back(stop.position);

  const std::size_t n = plan.stops.size();
  for (std::size_t pass = 0; pass < 8; ++pass) {
    // Anytime: stops are valid boundary points after every accepted move.
    if (metered && !meter->charge(n)) break;
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Point2 prev = i == 0 ? plan.depot : plan.stops[i - 1].position;
      const Point2 next =
          i + 1 == n ? plan.depot : plan.stops[i + 1].position;
      const Point2 candidate =
          reach_point(prev, next, centers[i], config.bundle_radius);
      // reach_point proposes by Euclidean disk geometry (metric-exempt);
      // acceptance compares driven cost under the configured metric. The
      // null branch keeps the fused focal_sum, bit-exact.
      const net::MetricSpace* metric = config.metric.get();
      const auto legs = [&](Point2 p) {
        return metric == nullptr
                   ? geometry::focal_sum(prev, next, p)
                   : metric->distance(prev, p) + metric->distance(p, next);
      };
      const double before = legs(plan.stops[i].position);
      const double after = legs(candidate);
      if (after < before - 1e-9) {
        plan.stops[i].position = candidate;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return plan;
}

}  // namespace bc::tour
