// SC — Single Charging [6]: the no-bundling baseline. One stop per sensor,
// parked directly on the sensor (zero charging distance, maximal charging
// efficiency, longest possible tour).

#include "tour/planner.h"
#include "tour/route_util.h"

namespace bc::tour {

ChargingPlan plan_sc(const net::Deployment& deployment,
                     const PlannerConfig& config,
                     support::BudgetMeter* meter) {
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  ChargingPlan plan;
  plan.algorithm = "SC";
  plan.depot = deployment.depot();
  plan.stops.reserve(deployment.size());
  for (const net::Sensor& s : deployment.sensors()) {
    plan.stops.push_back(Stop{s.position, {s.id}});
  }
  order_stops_by_tsp(plan.depot, plan.stops, tsp_options_with_metric(config),
                     metered ? meter : nullptr);
  return plan;
}

}  // namespace bc::tour
