// BC — Bundle Charging: the paper's base scheme. Sensors are clustered
// into charging bundles (Algorithm 2 by default), the anchor of each
// bundle is its smallest-enclosing-disk centre (Definitions 2-3), and the
// charger follows a TSP tour over the anchors.

#include "support/require.h"
#include "tour/planner.h"
#include "tour/route_util.h"

namespace bc::tour {

ChargingPlan plan_bc(const net::Deployment& deployment,
                     const PlannerConfig& config,
                     support::BudgetMeter* meter) {
  support::require(config.bundle_radius > 0.0,
                   "BC needs a positive bundle radius");
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  const std::vector<bundle::Bundle> bundles =
      bundle::generate_bundles(deployment, config.bundle_radius,
                               config.generator, metered ? meter : nullptr);

  ChargingPlan plan;
  plan.algorithm = "BC";
  plan.depot = deployment.depot();
  plan.stops.reserve(bundles.size());
  for (const bundle::Bundle& b : bundles) {
    plan.stops.push_back(Stop{b.anchor, b.members});
  }
  order_stops_by_tsp(plan.depot, plan.stops, tsp_options_with_metric(config),
                     metered ? meter : nullptr);
  return plan;
}

}  // namespace bc::tour
