// BC-SHARD — hierarchical Bundle Charging for city-scale deployments.
// The sensors are bundled by the sharded generator (tile + per-shard
// greedy cover + deterministic border stitch, bundle/shard.h), then the
// anchor tour is built either by the exact solver facade (small plans,
// where BC-SHARD collapses to BC) or by the near-linear snake + 2-opt
// path (large plans).

#include "bundle/shard.h"
#include "support/require.h"
#include "tour/planner.h"
#include "tour/route_util.h"

namespace bc::tour {

ChargingPlan plan_bc_sharded(const net::Deployment& deployment,
                             const PlannerConfig& config,
                             support::BudgetMeter* meter) {
  support::require(config.bundle_radius > 0.0,
                   "BC-SHARD needs a positive bundle radius");
  support::BudgetMeter local_meter(config.budget);
  const bool metered = meter != nullptr || !config.budget.unlimited();
  if (meter == nullptr) meter = &local_meter;

  const std::vector<bundle::Bundle> bundles =
      bundle::sharded_bundles(deployment, config.bundle_radius, config.shard,
                              metered ? meter : nullptr);

  ChargingPlan plan;
  plan.algorithm = "BC-SHARD";
  plan.depot = deployment.depot();
  plan.stops.reserve(bundles.size());
  for (const bundle::Bundle& b : bundles) {
    plan.stops.push_back(Stop{b.anchor, b.members});
  }
  if (plan.stops.size() <= config.shard_tsp_cutover) {
    order_stops_by_tsp(plan.depot, plan.stops, tsp_options_with_metric(config),
                       metered ? meter : nullptr);
  } else {
    order_stops_snake(plan.depot, plan.stops, tsp_options_with_metric(config),
                      metered ? meter : nullptr);
  }
  return plan;
}

}  // namespace bc::tour
