// Capacitated multi-trip planning.
//
// The paper (like its baseline [4] — "recharging schedules with vehicle
// movement costs and capacity constraints") notes that a real mobile
// charger carries a finite battery. This extension splits a single
// charging tour into depot-anchored trips such that no trip's energy
// (movement including both depot legs + charging at its stops) exceeds
// the charger's battery capacity, keeping the stop order of the
// underlying plan (which the TSP already optimised) and adding return
// legs where needed.

#ifndef BUNDLECHARGE_TOUR_MULTI_TRIP_H_
#define BUNDLECHARGE_TOUR_MULTI_TRIP_H_

#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "net/metric.h"
#include "tour/plan.h"

namespace bc::tour {

struct MultiTripPlan {
  // Each trip is itself a depot-closed ChargingPlan over a slice of the
  // original stops; concatenating the trips' members reproduces the
  // original partition.
  std::vector<ChargingPlan> trips;
};

struct MultiTripMetrics {
  std::size_t num_trips = 0;
  double tour_length_m = 0.0;    // all trips, including depot legs
  double move_energy_j = 0.0;
  double charge_time_s = 0.0;
  double charge_energy_j = 0.0;
  double total_energy_j = 0.0;
  double max_trip_energy_j = 0.0;  // must be <= the battery capacity
};

// Splits `plan` into battery-feasible trips (greedy in tour order, then a
// boundary-shift improvement pass). Stop times follow the isolated
// policy. Preconditions: battery_capacity_j > 0 and every single stop is
// individually feasible (out-and-back plus its charge cost fits the
// battery) — otherwise a PreconditionError is thrown.
MultiTripPlan split_into_trips(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               double battery_capacity_j,
                               const net::MetricSpace* metric = nullptr);

// Energy/latency accounting of a multi-trip plan (isolated stop times).
MultiTripMetrics evaluate_trips(const net::Deployment& deployment,
                                const MultiTripPlan& trips,
                                const charging::ChargingModel& charging,
                                const charging::MovementModel& movement,
                                const net::MetricSpace* metric = nullptr);

// Energy of one trip (depot legs + movement + charging, isolated times);
// the feasibility quantity the splitter bounds by the battery capacity.
double trip_energy_j(const net::Deployment& deployment,
                     const ChargingPlan& trip,
                     const charging::ChargingModel& charging,
                     const charging::MovementModel& movement,
                     const net::MetricSpace* metric = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_MULTI_TRIP_H_
