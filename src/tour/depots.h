// Multi-depot, battery-constrained fleet planning.
//
// fleet.h splits a tour among k chargers that all live at one depot.
// Real deployments (and the multi-charger literature the paper cites in
// [26, 27]) often have several charging depots — maintenance sheds at the
// field's corners — and a mobile charger whose battery cannot cover a
// whole route in one go. This module generalises the fleet splitter along
// both axes while reusing the exact machinery that already exists:
//
//  * The stop sequence is cut into per-charger routes by the SAME shared
//    core as split_among_chargers (split_routes_minimizing_makespan),
//    except a route's time is taken under its best depot. With a single
//    depot the candidate set has one element, so the splitter reduces to
//    split_among_chargers bit-for-bit — a property the differential tests
//    pin.
//  * Each route is anchored at its best ("home") depot, then cut into
//    battery-feasible trips. Depot visits are inserted into the route at
//    trip boundaries via the cheapest-insertion primitive
//    (tour::insertion_detour): among the depots that keep the closing
//    trip within the battery, the one with the smallest detour between
//    the boundary stops wins.
//  * All tie-breaks are deterministic: depot candidates are scanned in
//    ascending index with strict `<`, so the lowest-index depot wins ties
//    and results are reproducible across runs and thread counts.
//
// The charger's battery resets at every depot visit (swap or recharge), so
// a trip — the segment between consecutive depot visits — is the unit of
// battery feasibility, mirroring multi_trip.h. Unlike multi_trip, a trip
// may start and end at different depots; consecutive trips of a route
// chain (trip i ends where trip i+1 starts) and the route ends back at
// its home depot.
//
// Infeasibility is a structured fault, never a silent drop: when some
// stop cannot be served within the battery from any depot pair, the
// splitter returns FaultKind::kBatteryShortfall naming the stop — a
// battery-infeasible tour must split, never strand.

#ifndef BUNDLECHARGE_TOUR_DEPOTS_H_
#define BUNDLECHARGE_TOUR_DEPOTS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "net/metric.h"
#include "support/expected.h"
#include "tour/plan.h"

namespace bc::tour {

struct DepotFleetOptions {
  // Candidate charging depots; must be non-empty. Index order matters
  // only for tie-breaking (lowest index wins ties).
  std::vector<geometry::Point2> depots;
  std::size_t num_chargers = 1;
  // Charger battery capacity in joules; 0 disables per-trip splitting
  // (each route is one depot-closed trip at its home depot).
  double battery_capacity_j = 0.0;
  // Movement metric for every leg (null = Euclidean).
  const net::MetricSpace* metric = nullptr;
};

// One battery-feasible leg of a route: start depot -> stops -> end depot.
// A deadhead trip (empty stops) relocates the charger between depots.
struct DepotTrip {
  std::size_t start_depot = 0;  // index into DepotFleetOptions::depots
  std::size_t end_depot = 0;
  std::vector<Stop> stops;
};

// One charger's mission: trips chain (trips[i].end_depot ==
// trips[i+1].start_depot), starting and ending at the home depot.
struct DepotRoute {
  std::size_t home_depot = 0;
  std::vector<DepotTrip> trips;
};

struct DepotFleetPlan {
  // One route per charger (possibly with zero trips when idle);
  // concatenating the routes' stops reproduces the input plan's stops.
  std::vector<DepotRoute> routes;
};

struct DepotFleetMetrics {
  std::size_t num_routes = 0;  // routes with at least one stop
  std::size_t num_trips = 0;   // trips with at least one stop
  std::size_t num_deadhead_trips = 0;
  double makespan_s = 0.0;
  double total_energy_j = 0.0;
  double total_tour_length_m = 0.0;
  double max_trip_energy_j = 0.0;  // <= battery capacity when constrained
  std::vector<double> route_times_s;  // per non-idle route
};

// Movement length of one trip under `metric`: start depot -> stops in
// order -> end depot.
double depot_trip_length_m(const DepotTrip& trip,
                           std::span<const geometry::Point2> depots,
                           const net::MetricSpace* metric = nullptr);

// Battery drain of one trip: movement energy over its length + isolated
// charging cost at its stops. The quantity the splitter bounds by the
// battery capacity.
double depot_trip_energy_j(const net::Deployment& deployment,
                           const DepotTrip& trip,
                           std::span<const geometry::Point2> depots,
                           const charging::ChargingModel& charging,
                           const charging::MovementModel& movement,
                           const net::MetricSpace* metric = nullptr);

// Mission time of one route: driving over all trips + isolated stop
// times. Battery swaps at depots are assumed instantaneous.
double depot_route_time_s(const net::Deployment& deployment,
                          const DepotRoute& route,
                          std::span<const geometry::Point2> depots,
                          const charging::ChargingModel& charging,
                          const charging::MovementModel& movement,
                          const net::MetricSpace* metric = nullptr);

// Splits `plan` among options.num_chargers chargers over
// options.depots, minimising the fleet makespan, then cuts each route
// into battery-feasible trips when options.battery_capacity_j > 0.
// plan.depot is ignored — depots come from the options. Faults with
// kBatteryShortfall (naming the stop) when a stop cannot be served
// within the battery from any depot, or when a required depot-to-depot
// relocation exceeds the battery. Preconditions: depots non-empty,
// num_chargers >= 1, battery_capacity_j >= 0.
support::Expected<DepotFleetPlan> split_among_depot_fleet(
    const net::Deployment& deployment, const ChargingPlan& plan,
    const charging::ChargingModel& charging,
    const charging::MovementModel& movement, const DepotFleetOptions& options);

DepotFleetMetrics evaluate_depot_fleet(const net::Deployment& deployment,
                                       const DepotFleetPlan& fleet,
                                       const DepotFleetOptions& options,
                                       const charging::ChargingModel& charging,
                                       const charging::MovementModel& movement);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_DEPOTS_H_
