#include "tour/plan.h"

#include <algorithm>

#include "support/require.h"

namespace bc::tour {

double plan_tour_length(const ChargingPlan& plan,
                        const net::MetricSpace* metric) {
  if (plan.stops.empty()) return 0.0;
  double total =
      net::metric_distance(metric, plan.depot, plan.stops.front().position);
  for (std::size_t i = 0; i + 1 < plan.stops.size(); ++i) {
    total += net::metric_distance(metric, plan.stops[i].position,
                                  plan.stops[i + 1].position);
  }
  total +=
      net::metric_distance(metric, plan.stops.back().position, plan.depot);
  return total;
}

double stop_max_distance(const net::Deployment& deployment, const Stop& stop) {
  double worst = 0.0;
  for (const net::SensorId id : stop.members) {
    // metric-exempt: stop-to-sensor charging range is radio physics.
    worst = std::max(
        worst, geometry::distance(stop.position,
                                  deployment.sensor(id).position));
  }
  return worst;
}

double isolated_stop_time_s(const net::Deployment& deployment,
                            const Stop& stop,
                            const charging::ChargingModel& model) {
  double time = 0.0;
  for (const net::SensorId id : stop.members) {
    const net::Sensor& s = deployment.sensor(id);
    // metric-exempt: stop-to-sensor charging range is radio physics.
    const double d = geometry::distance(stop.position, s.position);
    time = std::max(time, model.charge_time_s(d, s.demand_j));
  }
  return time;
}

bool plan_is_partition(const net::Deployment& deployment,
                       const ChargingPlan& plan) {
  std::vector<int> count(deployment.size(), 0);
  for (const Stop& stop : plan.stops) {
    for (const net::SensorId id : stop.members) {
      if (id >= deployment.size()) return false;
      ++count[id];
    }
  }
  return std::all_of(count.begin(), count.end(),
                     [](int c) { return c == 1; });
}

}  // namespace bc::tour
