#include "tour/route_util.h"

#include <algorithm>
#include <utility>

#include "support/require.h"
#include "tsp/tour.h"

namespace bc::tour {

void order_stops_by_tsp(geometry::Point2 depot, std::vector<Stop>& stops,
                        const tsp::SolverOptions& options,
                        support::BudgetMeter* meter) {
  if (stops.size() < 2) return;
  std::vector<geometry::Point2> points;
  points.reserve(stops.size() + 1);
  points.push_back(depot);  // index 0 = depot
  for (const Stop& s : stops) points.push_back(s.position);

  tsp::Tour order = tsp::solve_tsp(points, options, meter);
  tsp::rotate_to_front(order, 0);
  support::ensure(order.size() == stops.size() + 1,
                  "tsp order must cover depot and all stops");

  // Normalise the direction: prefer the orientation whose first stop has
  // the smaller original index.
  if (order.size() >= 3 && order[1] > order.back()) {
    std::reverse(order.begin() + 1, order.end());
  }

  std::vector<Stop> ordered;
  ordered.reserve(stops.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    ordered.push_back(std::move(stops[order[i] - 1]));
  }
  stops = std::move(ordered);
}

}  // namespace bc::tour
