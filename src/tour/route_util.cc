#include "tour/route_util.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "support/require.h"
#include "tsp/improve.h"
#include "tsp/tour.h"

namespace bc::tour {

void order_stops_by_tsp(geometry::Point2 depot, std::vector<Stop>& stops,
                        const tsp::SolverOptions& options,
                        support::BudgetMeter* meter) {
  if (stops.size() < 2) return;
  std::vector<geometry::Point2> points;
  points.reserve(stops.size() + 1);
  points.push_back(depot);  // index 0 = depot
  for (const Stop& s : stops) points.push_back(s.position);

  tsp::Tour order = tsp::solve_tsp(points, options, meter);
  tsp::rotate_to_front(order, 0);
  support::ensure(order.size() == stops.size() + 1,
                  "tsp order must cover depot and all stops");

  // Normalise the direction: prefer the orientation whose first stop has
  // the smaller original index.
  if (order.size() >= 3 && order[1] > order.back()) {
    std::reverse(order.begin() + 1, order.end());
  }

  std::vector<Stop> ordered;
  ordered.reserve(stops.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    ordered.push_back(std::move(stops[order[i] - 1]));
  }
  stops = std::move(ordered);
}

void order_stops_snake(geometry::Point2 depot, std::vector<Stop>& stops,
                       const tsp::SolverOptions& options,
                       support::BudgetMeter* meter) {
  if (stops.size() < 2) return;
  const std::size_t n = stops.size();

  // Boustrophedon construction: slice the bounding box into horizontal
  // strips (~sqrt(n/2) of them — the classic strip-heuristic ratio), sort
  // each strip by x, and alternate the direction strip to strip. The sort
  // key closes ties by the pre-sort stop index, so the order is a pure
  // function of the input sequence.
  std::vector<geometry::Point2> positions;
  positions.reserve(n);
  for (const Stop& s : stops) positions.push_back(s.position);
  const geometry::Box2 box = geometry::bounding_box(positions);
  const double height = box.height();
  const std::size_t strips = std::max<std::size_t>(
      static_cast<std::size_t>(std::sqrt(static_cast<double>(n) / 2.0)), 1);
  const double strip_h = height > 0.0 ? height / static_cast<double>(strips)
                                      : 0.0;
  struct Key {
    std::uint32_t strip;
    double x;       // already direction-adjusted: ascending sort snakes
    double y;
    std::uint32_t index;
  };
  std::vector<Key> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::size_t strip = 0;
    if (strip_h > 0.0) {
      strip = std::min(static_cast<std::size_t>(
                           (positions[i].y - box.lo.y) / strip_h),
                       strips - 1);
    }
    const bool reversed = (strip % 2) != 0;
    keys.push_back(Key{static_cast<std::uint32_t>(strip),
                       reversed ? -positions[i].x : positions[i].x,
                       positions[i].y, i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.strip != b.strip) return a.strip < b.strip;
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.index < b.index;
  });

  // Improve over {depot} ∪ stops. Only 2-opt (no Or-opt: its accepted
  // moves rebuild the whole order, which large instances cannot afford)
  // and no certification sweep.
  std::vector<geometry::Point2> points;
  points.reserve(n + 1);
  points.push_back(depot);
  for (const Key& k : keys) points.push_back(positions[k.index]);
  tsp::Tour order(points.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  tsp::ImproveOptions improve = options.improve;
  improve.certify = false;
  tsp::two_opt(points, order, improve, meter);

  tsp::rotate_to_front(order, 0);
  support::ensure(order.size() == n + 1,
                  "snake order must cover depot and all stops");
  if (order.size() >= 3 && order[1] > order.back()) {
    std::reverse(order.begin() + 1, order.end());
  }
  std::vector<Stop> ordered;
  ordered.reserve(n);
  for (std::size_t i = 1; i < order.size(); ++i) {
    ordered.push_back(std::move(stops[keys[order[i] - 1].index]));
  }
  stops = std::move(ordered);
}

}  // namespace bc::tour
