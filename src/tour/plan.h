// Charging plan data model shared by all planners.
//
// A plan is an ordered list of stops; at each stop the mobile charger
// parks and radiates until every sensor *assigned* to that stop has met
// its demand. The tour starts and ends at the deployment depot. Stop
// times are not stored: they are a function of the charging model and the
// scheduling policy (see sim/schedule.h), so the evaluator derives them.

#ifndef BUNDLECHARGE_TOUR_PLAN_H_
#define BUNDLECHARGE_TOUR_PLAN_H_

#include <string>
#include <vector>

#include "charging/model.h"
#include "geometry/point.h"
#include "net/deployment.h"
#include "net/metric.h"
#include "net/sensor.h"

namespace bc::tour {

struct Stop {
  geometry::Point2 position;            // parking/anchor position
  std::vector<net::SensorId> members;   // sensors this stop must satisfy
};

struct ChargingPlan {
  std::string algorithm;      // "SC", "CSS", "BC", "BC-OPT"
  geometry::Point2 depot;     // tour start/end
  std::vector<Stop> stops;    // visiting order
};

// Closed tour length: depot -> stops... -> depot. A plan with no stops has
// length 0. `metric` measures the *movement* legs (null = Euclidean);
// stop-to-sensor charging distances below are radio physics and stay
// Euclidean regardless of the movement metric.
double plan_tour_length(const ChargingPlan& plan,
                        const net::MetricSpace* metric = nullptr);

// Farthest member distance at a stop (0 for an empty member list).
double stop_max_distance(const net::Deployment& deployment, const Stop& stop);

// Stop time under the isolated-bundle policy: the farthest assigned member
// dictates the time to push `demand_j` through the attenuation model
// (the paper's "t is determined by the sensor with the farthest charging
// distance", §I). Used directly by BC-OPT's local energy evaluation.
double isolated_stop_time_s(const net::Deployment& deployment,
                            const Stop& stop,
                            const charging::ChargingModel& model);

// True iff every sensor of the deployment is assigned to exactly one stop.
bool plan_is_partition(const net::Deployment& deployment,
                       const ChargingPlan& plan);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_PLAN_H_
