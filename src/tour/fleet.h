// Multi-charger fleet planning.
//
// The paper's related work ([26, 27]) asks the dual question: how many
// mobile chargers does a network need, and how should sensors be divided
// among them? Given any single-charger plan (whose TSP order already
// groups nearby stops), this module splits the stop sequence into k
// depot-anchored routes, minimising the fleet *makespan* — the slowest
// charger's mission time (driving + parking) — via binary search over the
// makespan with a greedy consecutive-split feasibility check, followed by
// a boundary-shift improvement pass. It also answers the [26, 27] sizing
// question directly: the smallest fleet that meets a mission deadline.

#ifndef BUNDLECHARGE_TOUR_FLEET_H_
#define BUNDLECHARGE_TOUR_FLEET_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "net/metric.h"
#include "tour/plan.h"

namespace bc::tour {

struct FleetPlan {
  // One depot-closed route per charger, in tour order; concatenating the
  // routes' members reproduces the original partition. Some routes may be
  // empty when k exceeds the number of stops.
  std::vector<ChargingPlan> routes;
};

struct FleetMetrics {
  std::size_t num_routes = 0;       // non-empty routes
  double makespan_s = 0.0;          // slowest route's mission time
  double total_energy_j = 0.0;      // summed over routes
  double total_tour_length_m = 0.0;
  std::vector<double> route_times_s;  // per route (non-empty only)
};

// Mission time of one route: driving (depot legs included, under `metric`;
// null = Euclidean) + isolated stop times.
double route_time_s(const net::Deployment& deployment,
                    const ChargingPlan& route,
                    const charging::ChargingModel& charging,
                    const charging::MovementModel& movement,
                    const net::MetricSpace* metric = nullptr);

// Mission time of a candidate route. The shared splitter core below is
// parameterised on this, so the single-depot splitter (time under one
// fixed depot) and the multi-depot splitter (time under the best depot)
// share one binary-search + boundary-shift implementation.
using RouteTimeFn = std::function<double(const ChargingPlan&)>;

// Shared splitter core: cuts `plan`'s stop sequence into `num_chargers`
// consecutive routes minimising max time_of(route), by binary search over
// the makespan with a greedy feasibility check, then a boundary-shift
// improvement pass. Routes keep plan.depot / plan.algorithm; callers that
// re-anchor routes (the multi-depot splitter) do so afterwards.
// split_among_chargers is exactly this core with
// time_of = route_time_s(...), which is what makes the multi-depot
// splitter's single-depot reduction bit-for-bit.
FleetPlan split_routes_minimizing_makespan(const ChargingPlan& plan,
                                           std::size_t num_chargers,
                                           const RouteTimeFn& time_of);

// Splits `plan` among `num_chargers` chargers, minimising the makespan.
// Preconditions: num_chargers >= 1.
FleetPlan split_among_chargers(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               std::size_t num_chargers,
                               const net::MetricSpace* metric = nullptr);

FleetMetrics evaluate_fleet(const net::Deployment& deployment,
                            const FleetPlan& fleet,
                            const charging::ChargingModel& charging,
                            const charging::MovementModel& movement,
                            const net::MetricSpace* metric = nullptr);

// Smallest fleet whose makespan meets `deadline_s` (the [26, 27] sizing
// question). Returns nullopt-like 0 never: there is always some k that
// works as long as every single stop individually meets the deadline —
// otherwise a PreconditionError is thrown. Preconditions: deadline_s > 0.
std::size_t minimum_fleet_size(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               double deadline_s,
                               const net::MetricSpace* metric = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_FLEET_H_
