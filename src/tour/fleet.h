// Multi-charger fleet planning.
//
// The paper's related work ([26, 27]) asks the dual question: how many
// mobile chargers does a network need, and how should sensors be divided
// among them? Given any single-charger plan (whose TSP order already
// groups nearby stops), this module splits the stop sequence into k
// depot-anchored routes, minimising the fleet *makespan* — the slowest
// charger's mission time (driving + parking) — via binary search over the
// makespan with a greedy consecutive-split feasibility check, followed by
// a boundary-shift improvement pass. It also answers the [26, 27] sizing
// question directly: the smallest fleet that meets a mission deadline.

#ifndef BUNDLECHARGE_TOUR_FLEET_H_
#define BUNDLECHARGE_TOUR_FLEET_H_

#include <cstddef>
#include <vector>

#include "charging/model.h"
#include "charging/movement.h"
#include "tour/plan.h"

namespace bc::tour {

struct FleetPlan {
  // One depot-closed route per charger, in tour order; concatenating the
  // routes' members reproduces the original partition. Some routes may be
  // empty when k exceeds the number of stops.
  std::vector<ChargingPlan> routes;
};

struct FleetMetrics {
  std::size_t num_routes = 0;       // non-empty routes
  double makespan_s = 0.0;          // slowest route's mission time
  double total_energy_j = 0.0;      // summed over routes
  double total_tour_length_m = 0.0;
  std::vector<double> route_times_s;  // per route (non-empty only)
};

// Mission time of one route: driving (depot legs included) + isolated
// stop times.
double route_time_s(const net::Deployment& deployment,
                    const ChargingPlan& route,
                    const charging::ChargingModel& charging,
                    const charging::MovementModel& movement);

// Splits `plan` among `num_chargers` chargers, minimising the makespan.
// Preconditions: num_chargers >= 1.
FleetPlan split_among_chargers(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               std::size_t num_chargers);

FleetMetrics evaluate_fleet(const net::Deployment& deployment,
                            const FleetPlan& fleet,
                            const charging::ChargingModel& charging,
                            const charging::MovementModel& movement);

// Smallest fleet whose makespan meets `deadline_s` (the [26, 27] sizing
// question). Returns nullopt-like 0 never: there is always some k that
// works as long as every single stop individually meets the deadline —
// otherwise a PreconditionError is thrown. Preconditions: deadline_s > 0.
std::size_t minimum_fleet_size(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               double deadline_s);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_FLEET_H_
