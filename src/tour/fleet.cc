#include "tour/fleet.h"

#include <algorithm>
#include <limits>

#include "support/require.h"

namespace bc::tour {

namespace {

ChargingPlan route_slice(const ChargingPlan& plan, std::size_t first,
                         std::size_t last_exclusive) {
  ChargingPlan route;
  route.algorithm = plan.algorithm;
  route.depot = plan.depot;
  route.stops.assign(plan.stops.begin() + static_cast<std::ptrdiff_t>(first),
                     plan.stops.begin() +
                         static_cast<std::ptrdiff_t>(last_exclusive));
  return route;
}

// Greedy consecutive split: true iff the stop sequence fits into at most
// `k` routes of mission time <= `deadline`.
bool splits_within(const ChargingPlan& plan, const RouteTimeFn& time_of,
                   double deadline, std::size_t k,
                   std::vector<std::size_t>* cuts) {
  if (cuts != nullptr) cuts->clear();
  std::size_t routes = 0;
  std::size_t first = 0;
  while (first < plan.stops.size()) {
    if (++routes > k) return false;
    std::size_t last = first + 1;
    if (time_of(route_slice(plan, first, last)) > deadline) {
      return false;  // a single stop alone misses the deadline
    }
    while (last < plan.stops.size() &&
           time_of(route_slice(plan, first, last + 1)) <= deadline) {
      ++last;
    }
    if (cuts != nullptr) cuts->push_back(last);
    first = last;
  }
  return true;
}

}  // namespace

double route_time_s(const net::Deployment& deployment,
                    const ChargingPlan& route,
                    const charging::ChargingModel& charging,
                    const charging::MovementModel& movement,
                    const net::MetricSpace* metric) {
  double total = movement.move_time_s(plan_tour_length(route, metric));
  for (const Stop& stop : route.stops) {
    total += isolated_stop_time_s(deployment, stop, charging);
  }
  return total;
}

FleetPlan split_routes_minimizing_makespan(const ChargingPlan& plan,
                                           std::size_t num_chargers,
                                           const RouteTimeFn& time_of) {
  support::require(num_chargers >= 1, "fleet needs at least one charger");
  FleetPlan fleet;
  if (plan.stops.empty()) {
    fleet.routes.assign(num_chargers, ChargingPlan{plan.algorithm,
                                                   plan.depot,
                                                   {}});
    return fleet;
  }

  // Binary search the makespan between the largest single-stop mission
  // and the whole-tour mission.
  double lo = 0.0;
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    lo = std::max(lo, time_of(route_slice(plan, i, i + 1)));
  }
  double hi = time_of(plan);
  std::vector<std::size_t> best_cuts;
  support::ensure(splits_within(plan, time_of, hi, num_chargers, &best_cuts),
                  "the whole tour must fit one charger at its own time");
  for (int iter = 0; iter < 48 && hi - lo > 1e-6 * hi; ++iter) {
    const double mid = (lo + hi) / 2.0;
    std::vector<std::size_t> cuts;
    if (splits_within(plan, time_of, mid, num_chargers, &cuts)) {
      hi = mid;
      best_cuts = std::move(cuts);
    } else {
      lo = mid;
    }
  }

  std::size_t first = 0;
  for (const std::size_t cut : best_cuts) {
    fleet.routes.push_back(route_slice(plan, first, cut));
    first = cut;
  }
  // Pad with idle chargers so routes.size() == num_chargers.
  while (fleet.routes.size() < num_chargers) {
    fleet.routes.push_back(ChargingPlan{plan.algorithm, plan.depot, {}});
  }

  // Boundary improvement: move a boundary stop to the adjacent route when
  // it reduces the larger of the two route times.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t r = 0; r + 1 < fleet.routes.size(); ++r) {
      ChargingPlan& left = fleet.routes[r];
      ChargingPlan& right = fleet.routes[r + 1];
      if (left.stops.empty() && right.stops.empty()) continue;
      const double before = std::max(time_of(left), time_of(right));
      const auto try_shift = [&](ChargingPlan& from, ChargingPlan& to,
                                 bool from_back) {
        if (from.stops.empty()) return false;
        ChargingPlan new_from = from;
        ChargingPlan new_to = to;
        if (from_back) {
          new_to.stops.insert(new_to.stops.begin(), new_from.stops.back());
          new_from.stops.pop_back();
        } else {
          new_to.stops.push_back(new_from.stops.front());
          new_from.stops.erase(new_from.stops.begin());
        }
        const double after = std::max(time_of(new_from), time_of(new_to));
        if (after < before - 1e-9) {
          from = std::move(new_from);
          to = std::move(new_to);
          return true;
        }
        return false;
      };
      if (try_shift(left, right, /*from_back=*/true) ||
          try_shift(right, left, /*from_back=*/false)) {
        improved = true;
      }
    }
  }
  return fleet;
}

FleetPlan split_among_chargers(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               std::size_t num_chargers,
                               const net::MetricSpace* metric) {
  return split_routes_minimizing_makespan(
      plan, num_chargers, [&](const ChargingPlan& route) {
        return route_time_s(deployment, route, charging, movement, metric);
      });
}

FleetMetrics evaluate_fleet(const net::Deployment& deployment,
                            const FleetPlan& fleet,
                            const charging::ChargingModel& charging,
                            const charging::MovementModel& movement,
                            const net::MetricSpace* metric) {
  FleetMetrics m;
  for (const ChargingPlan& route : fleet.routes) {
    if (route.stops.empty()) continue;
    ++m.num_routes;
    const double time =
        route_time_s(deployment, route, charging, movement, metric);
    m.route_times_s.push_back(time);
    m.makespan_s = std::max(m.makespan_s, time);
    const double length = plan_tour_length(route, metric);
    m.total_tour_length_m += length;
    double charge_time = 0.0;
    for (const Stop& stop : route.stops) {
      charge_time += isolated_stop_time_s(deployment, stop, charging);
    }
    m.total_energy_j += movement.move_energy_j(length) +
                        charging.cost_of_stop_j(charge_time);
  }
  return m;
}

std::size_t minimum_fleet_size(const net::Deployment& deployment,
                               const ChargingPlan& plan,
                               const charging::ChargingModel& charging,
                               const charging::MovementModel& movement,
                               double deadline_s,
                               const net::MetricSpace* metric) {
  support::require(deadline_s > 0.0, "deadline must be positive");
  const RouteTimeFn time_of = [&](const ChargingPlan& route) {
    return route_time_s(deployment, route, charging, movement, metric);
  };
  for (std::size_t i = 0; i < plan.stops.size(); ++i) {
    support::require(
        time_of(route_slice(plan, i, i + 1)) <= deadline_s,
        "a single stop alone misses the deadline; no fleet size can help");
  }
  if (plan.stops.empty()) return 0;
  // The greedy split is monotone in k, so scan up from 1; the split count
  // with unlimited k is the answer.
  std::vector<std::size_t> cuts;
  const bool ok =
      splits_within(plan, time_of, deadline_s, plan.stops.size(), &cuts);
  support::ensure(ok, "per-stop feasibility implies a feasible split");
  return cuts.size();
}

}  // namespace bc::tour
