// Internal helper shared by the planners: order a set of stops into a
// closed tour anchored at the depot.

#ifndef BUNDLECHARGE_TOUR_ROUTE_UTIL_H_
#define BUNDLECHARGE_TOUR_ROUTE_UTIL_H_

#include <vector>

#include "geometry/point.h"
#include "tour/plan.h"
#include "tsp/solver.h"

namespace bc::tour {

// Reorders `stops` in place along a TSP tour over {depot} ∪ stop
// positions, with the depot first (so stops follow the charger's visiting
// order). The tour orientation is normalised so that the first stop after
// the depot has the lower index of the two possible directions, making
// results deterministic. A non-null `meter` bounds the TSP solve; the
// result is always a valid (possibly less optimised) ordering.
void order_stops_by_tsp(geometry::Point2 depot, std::vector<Stop>& stops,
                        const tsp::SolverOptions& options,
                        support::BudgetMeter* meter = nullptr);

// Large-instance variant: boustrophedon (snake) strip construction plus
// neighbour-list 2-opt with the O(n^2) certification sweep disabled, so
// the cost stays near-linear in the stop count. Same orientation
// normalisation and determinism contract as order_stops_by_tsp; the tour
// is a neighbour-list (not full-neighbourhood) local optimum.
void order_stops_snake(geometry::Point2 depot, std::vector<Stop>& stops,
                       const tsp::SolverOptions& options,
                       support::BudgetMeter* meter = nullptr);

}  // namespace bc::tour

#endif  // BUNDLECHARGE_TOUR_ROUTE_UTIL_H_
