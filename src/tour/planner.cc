#include "tour/planner.h"

#include "support/require.h"

namespace bc::tour {

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSc:
      return "SC";
    case Algorithm::kCss:
      return "CSS";
    case Algorithm::kBc:
      return "BC";
    case Algorithm::kBcOpt:
      return "BC-OPT";
    case Algorithm::kTspn:
      return "TSPN";
  }
  return "unknown";
}

ChargingPlan plan_charging_tour(const net::Deployment& deployment,
                                Algorithm algorithm,
                                const PlannerConfig& config,
                                support::BudgetMeter* meter) {
  switch (algorithm) {
    case Algorithm::kSc:
      return plan_sc(deployment, config, meter);
    case Algorithm::kCss:
      return plan_css(deployment, config, meter);
    case Algorithm::kBc:
      return plan_bc(deployment, config, meter);
    case Algorithm::kBcOpt:
      return plan_bc_opt(deployment, config, meter);
    case Algorithm::kTspn:
      return plan_tspn(deployment, config, meter);
  }
  support::ensure(false, "unreachable planner algorithm");
  return {};
}

}  // namespace bc::tour
