#include "tour/planner.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/require.h"

namespace bc::tour {

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSc:
      return "SC";
    case Algorithm::kCss:
      return "CSS";
    case Algorithm::kBc:
      return "BC";
    case Algorithm::kBcOpt:
      return "BC-OPT";
    case Algorithm::kTspn:
      return "TSPN";
    case Algorithm::kBcSharded:
      return "BC-SHARD";
  }
  return "unknown";
}

ChargingPlan plan_charging_tour(const net::Deployment& deployment,
                                Algorithm algorithm,
                                const PlannerConfig& config,
                                support::BudgetMeter* meter) {
  obs::TraceSpan span("plan");
  span.attr("algorithm", to_string(algorithm))
      .attr("n", static_cast<std::uint64_t>(deployment.size()));
  ChargingPlan plan;
  switch (algorithm) {
    case Algorithm::kSc:
      plan = plan_sc(deployment, config, meter);
      break;
    case Algorithm::kCss:
      plan = plan_css(deployment, config, meter);
      break;
    case Algorithm::kBc:
      plan = plan_bc(deployment, config, meter);
      break;
    case Algorithm::kBcOpt:
      plan = plan_bc_opt(deployment, config, meter);
      break;
    case Algorithm::kTspn:
      plan = plan_tspn(deployment, config, meter);
      break;
    case Algorithm::kBcSharded:
      plan = plan_bc_sharded(deployment, config, meter);
      break;
    default:
      support::ensure(false, "unreachable planner algorithm");
  }
  {
    static const obs::Counter plans("planner.plans");
    static const obs::Counter stops("planner.stops");
    plans.add();
    stops.add(plan.stops.size());
  }
  span.attr("stops", static_cast<std::uint64_t>(plan.stops.size()));
  return plan;
}

}  // namespace bc::tour
