// Movement model of the mobile charger.
//
// The paper approximates movement cost as energy-per-metre of tour length
// (5.59 J/m, from [4]); speed only matters for latency reporting.

#ifndef BUNDLECHARGE_CHARGING_MOVEMENT_H_
#define BUNDLECHARGE_CHARGING_MOVEMENT_H_

namespace bc::charging {

class MovementModel {
 public:
  // Preconditions: joules_per_meter > 0, speed_m_per_s > 0.
  MovementModel(double joules_per_meter, double speed_m_per_s);

  // ICDCS'19 value: 5.59 J/m; 1 m/s nominal speed for latency numbers.
  static MovementModel icdcs2019();

  // Testbed robot car: same 5.59 J/m, 0.3 m/s (§VII).
  static MovementModel testbed_robot();

  double joules_per_meter() const { return joules_per_meter_; }
  double speed_m_per_s() const { return speed_m_per_s_; }

  // Energy to travel `meters` (>= 0).
  double move_energy_j(double meters) const;
  // Travel time for `meters` (>= 0).
  double move_time_s(double meters) const;

 private:
  double joules_per_meter_;
  double speed_m_per_s_;
};

}  // namespace bc::charging

#endif  // BUNDLECHARGE_CHARGING_MOVEMENT_H_
