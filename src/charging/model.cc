#include "charging/model.h"

#include <cmath>
#include <numbers>

#include "support/require.h"

namespace bc::charging {

namespace {

double dbi_to_linear(double dbi) { return std::pow(10.0, dbi / 10.0); }

}  // namespace

ChargingModel::ChargingModel(double alpha, double beta,
                             double transmit_power_w, double charge_cost_w)
    : alpha_(alpha),
      beta_(beta),
      transmit_power_w_(transmit_power_w),
      charge_cost_w_(charge_cost_w) {
  bc::support::require(alpha > 0.0, "alpha must be positive");
  bc::support::require(beta > 0.0, "beta must be positive");
  bc::support::require(transmit_power_w > 0.0,
                       "transmit power must be positive");
  bc::support::require(charge_cost_w > 0.0, "charge cost must be positive");
}

ChargingModel ChargingModel::icdcs2019_simulation() {
  return ChargingModel(/*alpha=*/36.0, /*beta=*/30.0,
                       /*transmit_power_w=*/3.0, /*charge_cost_w=*/3.0);
}

ChargingModel ChargingModel::icdcs2019_paper_cost() {
  // 0.9 J/min = 0.015 W (5 mA x 3 V).
  return ChargingModel(/*alpha=*/36.0, /*beta=*/30.0,
                       /*transmit_power_w=*/3.0, /*charge_cost_w=*/0.015);
}

ChargingModel ChargingModel::powercast_testbed() {
  // TX91501: 3 W at 915 MHz (lambda = 0.33 m), 8 dBi patch; P2110 receiver
  // behind a 2 dBi dipole; 25 % rectifier efficiency and 3 dB polarisation
  // loss give a few milliwatts harvested at 1 m, matching the datasheet.
  return from_friis(/*tx_gain_dbi=*/8.0, /*rx_gain_dbi=*/2.0,
                    /*wavelength_m=*/0.33, /*rectifier_eff=*/0.25,
                    /*polarization_loss=*/2.0, /*beta=*/0.1,
                    /*transmit_power_w=*/3.0, /*charge_cost_w=*/3.0);
}

ChargingModel ChargingModel::from_friis(double tx_gain_dbi, double rx_gain_dbi,
                                        double wavelength_m,
                                        double rectifier_eff,
                                        double polarization_loss, double beta,
                                        double transmit_power_w,
                                        double charge_cost_w) {
  bc::support::require(std::isfinite(tx_gain_dbi) && std::isfinite(rx_gain_dbi),
                       "antenna gains must be finite");
  bc::support::require(std::isfinite(wavelength_m) && wavelength_m > 0.0,
                       "wavelength must be positive and finite");
  bc::support::require(rectifier_eff > 0.0 && rectifier_eff <= 1.0,
                       "rectifier efficiency must be in (0, 1]");
  bc::support::require(
      std::isfinite(polarization_loss) && polarization_loss >= 1.0,
      "polarisation loss is a linear factor >= 1");
  const double four_pi = 4.0 * std::numbers::pi;
  const double alpha = dbi_to_linear(tx_gain_dbi) * dbi_to_linear(rx_gain_dbi) *
                       wavelength_m * wavelength_m * rectifier_eff /
                       (four_pi * four_pi * polarization_loss);
  return ChargingModel(alpha, beta, transmit_power_w, charge_cost_w);
}

double ChargingModel::received_power_w(double distance_m) const {
  bc::support::require(distance_m >= 0.0, "distance must be non-negative");
  const double denom = (distance_m + beta_) * (distance_m + beta_);
  // Energy conservation: Eq. 1 is an attenuation fit, and with alpha >
  // beta^2 its raw value would exceed the radiated power at short range.
  return std::min(1.0, alpha_ / denom) * transmit_power_w_;
}

double ChargingModel::charge_time_s(double distance_m, double energy_j) const {
  bc::support::require(energy_j >= 0.0, "energy must be non-negative");
  if (energy_j == 0.0) return 0.0;
  return energy_j / received_power_w(distance_m);
}

double ChargingModel::charge_cost_j(double distance_m, double energy_j) const {
  return charge_cost_w_ * charge_time_s(distance_m, energy_j);
}

double ChargingModel::cost_of_stop_j(double seconds) const {
  bc::support::require(seconds >= 0.0, "stop time must be non-negative");
  return charge_cost_w_ * seconds;
}

double ChargingModel::range_for_power_m(double power_w) const {
  bc::support::require(power_w > 0.0, "power must be positive");
  // Above the conservation clamp nothing is ever received, so the range
  // collapses to 0 (consistent with the clamp in received_power_w).
  if (power_w >= transmit_power_w_) return 0.0;
  const double d = std::sqrt(alpha_ * transmit_power_w_ / power_w) - beta_;
  return d > 0.0 ? d : 0.0;
}

}  // namespace bc::charging
