// Wireless charging model — Eq. 1 of the paper.
//
// Received power follows the empirically-adjusted Friis form
//
//     p_r(d) = alpha / (d + beta)^2 * p_c
//
// where d is the charger-to-sensor distance, alpha collapses antenna gains,
// wavelength, rectifier efficiency and polarisation loss into one constant,
// and beta regularises the short-distance singularity of the plain Friis
// equation.
//
// The paper is ambiguous about the charger's own power draw while charging:
// Eq. 1/3 use p_c as the radiated source power, but §VI-A quotes a
// consumption of 0.9 J/min. We therefore keep two knobs:
//   * transmit_power_w  — the p_c of Eq. 1; determines received power and
//                         hence stop durations;
//   * charge_cost_w     — what the charger spends per second while parked
//                         and radiating; determines charging energy.
// The default profiles set them equal (energy-conserving reading, which is
// the only reading that reproduces the interior optimum of Fig. 6(b)); the
// paper's literal 0.9 J/min figure is available as a separate profile.

#ifndef BUNDLECHARGE_CHARGING_MODEL_H_
#define BUNDLECHARGE_CHARGING_MODEL_H_

namespace bc::charging {

class ChargingModel {
 public:
  // Preconditions: alpha > 0, beta > 0, powers > 0.
  ChargingModel(double alpha, double beta, double transmit_power_w,
                double charge_cost_w);

  // ICDCS'19 simulation parameterisation (§VI-A): alpha = 36, beta = 30,
  // with a 3 W transmitter whose electrical draw equals its radiated power.
  static ChargingModel icdcs2019_simulation();

  // Same attenuation constants but with the paper's literal "0.9 J/min"
  // charging consumption. Charging energy becomes negligible next to
  // movement; provided for the ablation bench.
  static ChargingModel icdcs2019_paper_cost();

  // Powercast TX91501 (3 W, 915 MHz) -> P2110 harvester, as in the
  // testbed of §VII; alpha derived from the Friis parameters of Eq. 1.
  static ChargingModel powercast_testbed();

  // Builds alpha from the physical constants of Eq. 1:
  // alpha = Gs * Gr * lambda^2 * eta / ((4 pi)^2 * Lp), gains linear.
  static ChargingModel from_friis(double tx_gain_dbi, double rx_gain_dbi,
                                  double wavelength_m, double rectifier_eff,
                                  double polarization_loss, double beta,
                                  double transmit_power_w,
                                  double charge_cost_w);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double transmit_power_w() const { return transmit_power_w_; }
  double charge_cost_w() const { return charge_cost_w_; }

  // Power received by a sensor at distance d >= 0 (watts).
  double received_power_w(double distance_m) const;

  // Seconds to deliver `energy_j` joules to a sensor at distance d.
  // Precondition: energy_j >= 0.
  double charge_time_s(double distance_m, double energy_j) const;

  // Charger-side energy spent while delivering `energy_j` to distance d.
  double charge_cost_j(double distance_m, double energy_j) const;

  // Energy the charger spends while parked for `seconds`.
  double cost_of_stop_j(double seconds) const;

  // The distance at which received power drops to `power_w`
  // (inverse of received_power_w); clamped at 0.
  double range_for_power_m(double power_w) const;

 private:
  double alpha_;
  double beta_;
  double transmit_power_w_;
  double charge_cost_w_;
};

}  // namespace bc::charging

#endif  // BUNDLECHARGE_CHARGING_MODEL_H_
