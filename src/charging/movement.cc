#include "charging/movement.h"

#include "support/require.h"

namespace bc::charging {

MovementModel::MovementModel(double joules_per_meter, double speed_m_per_s)
    : joules_per_meter_(joules_per_meter), speed_m_per_s_(speed_m_per_s) {
  bc::support::require(joules_per_meter > 0.0,
                       "movement energy rate must be positive");
  bc::support::require(speed_m_per_s > 0.0, "speed must be positive");
}

MovementModel MovementModel::icdcs2019() { return MovementModel(5.59, 1.0); }

MovementModel MovementModel::testbed_robot() {
  return MovementModel(5.59, 0.3);
}

double MovementModel::move_energy_j(double meters) const {
  bc::support::require(meters >= 0.0, "distance must be non-negative");
  return joules_per_meter_ * meters;
}

double MovementModel::move_time_s(double meters) const {
  bc::support::require(meters >= 0.0, "distance must be non-negative");
  return meters / speed_m_per_s_;
}

}  // namespace bc::charging
