#include "net/metric.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "support/require.h"

namespace bc::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t bits_of(double v) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(v));
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

}  // namespace

void MetricSpace::path(geometry::Point2 a, geometry::Point2 b,
                       std::vector<geometry::Point2>& out) const {
  out.clear();
  out.push_back(a);
  out.push_back(b);
}

void MetricSpace::distances_from(geometry::Point2 a,
                                 std::span<const geometry::Point2> targets,
                                 std::span<double> out) const {
  support::require(out.size() == targets.size(),
                   "distances_from output span size mismatch");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    out[i] = distance(a, targets[i]);
  }
}

const EuclideanMetric& EuclideanMetric::instance() {
  static const EuclideanMetric metric;
  return metric;
}

std::size_t GraphMetric::PointKeyHash::operator()(const PointKey& k) const {
  // splitmix-style mix of the two coordinate bit patterns.
  std::uint64_t h = k.x_bits + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= k.y_bits + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(h ^ (h >> 31));
}

GraphMetric::GraphMetric(WaypointGraph graph, GraphMetricOptions options)
    : graph_(std::move(graph)), options_(options) {
  support::require(!graph_.nodes.empty(), "waypoint graph needs nodes");
  support::require(options_.max_cached_rows > 0, "row cache must be > 0");
  support::require(options_.max_cached_points > 0, "point cache must be > 0");
  support::require(options_.access_waypoints > 0,
                   "access_waypoints must be > 0");
  const auto n = static_cast<std::uint32_t>(graph_.nodes.size());
  for (const auto& node : graph_.nodes) {
    support::require(std::isfinite(node.x) && std::isfinite(node.y),
                     "waypoint coordinates must be finite");
  }
  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& e : graph_.edges) {
    support::require(e.u < n && e.v < n, "edge endpoint out of range");
    support::require(e.u != e.v, "self-loop edge");
    support::require(std::isfinite(e.weight) && e.weight > 0.0,
                     "edge weight must be finite and positive");
    ++degree[e.u];
    ++degree[e.v];
  }
  adj_start_.assign(n + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    adj_start_[i + 1] = adj_start_[i] + degree[i];
  }
  adj_nodes_.resize(adj_start_[n]);
  adj_weights_.resize(adj_start_[n]);
  std::vector<std::uint32_t> cursor(adj_start_.begin(), adj_start_.end() - 1);
  for (const auto& e : graph_.edges) {
    adj_nodes_[cursor[e.u]] = e.v;
    adj_weights_[cursor[e.u]++] = e.weight;
    adj_nodes_[cursor[e.v]] = e.u;
    adj_weights_[cursor[e.v]++] = e.weight;
  }
  // Sort each adjacency row by neighbour id so Dijkstra relaxes edges in
  // a deterministic order regardless of input edge order.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t lo = adj_start_[i];
    const std::size_t hi = adj_start_[i + 1];
    std::vector<std::pair<std::uint32_t, double>> row;
    row.reserve(hi - lo);
    for (std::size_t j = lo; j < hi; ++j) {
      row.emplace_back(adj_nodes_[j], adj_weights_[j]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t j = lo; j < hi; ++j) {
      adj_nodes_[j] = row[j - lo].first;
      adj_weights_[j] = row[j - lo].second;
    }
  }
}

bool GraphMetric::line_of_sight(geometry::Point2 a, geometry::Point2 b) const {
  const geometry::Segment sight{a, b};
  for (const auto& wall : graph_.obstacles) {
    if (geometry::segments_intersect(sight, wall)) return false;
  }
  return true;
}

std::vector<double> GraphMetric::dijkstra_row(
    std::uint32_t source, std::vector<std::uint32_t>* parent) const {
  const std::size_t n = graph_.nodes.size();
  std::vector<double> dist(n, kInf);
  if (parent != nullptr) {
    parent->assign(n, source);
  }
  // (distance, node): ties pop the lower node id, so the settle order —
  // and with it the shortest-path tree — is deterministic.
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;  // stale entry
    const std::size_t lo = adj_start_[u];
    const std::size_t hi = adj_start_[u + 1];
    for (std::size_t j = lo; j < hi; ++j) {
      const std::uint32_t v = adj_nodes_[j];
      const double nd = d + adj_weights_[j];
      if (nd < dist[v]) {
        dist[v] = nd;
        if (parent != nullptr) (*parent)[v] = u;
        queue.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::shared_ptr<const std::vector<double>> GraphMetric::row_for(
    std::uint32_t source) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(source);
    if (it != rows_.end()) {
      ++stats_.row_hits;
      row_lru_.splice(row_lru_.begin(), row_lru_, it->second.lru_it);
      return it->second.row;
    }
    ++stats_.row_misses;
  }
  // Compute outside the lock: concurrent misses on the same source each
  // run Dijkstra, but the results are identical and the first insert
  // wins, so values stay thread-invariant.
  auto row = std::make_shared<const std::vector<double>>(
      dijkstra_row(source, nullptr));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(source);
  if (it != rows_.end()) {
    row_lru_.splice(row_lru_.begin(), row_lru_, it->second.lru_it);
    return it->second.row;
  }
  row_lru_.push_front(source);
  rows_.emplace(source, RowEntry{row, row_lru_.begin()});
  if (rows_.size() > options_.max_cached_rows) {
    rows_.erase(row_lru_.back());
    row_lru_.pop_back();
  }
  return row;
}

double GraphMetric::node_distance(std::uint32_t u, std::uint32_t v) const {
  support::require(u < graph_.nodes.size() && v < graph_.nodes.size(),
                   "node id out of range");
  if (u == v) return 0.0;
  // Source the row from the lower id so (u, v) and (v, u) share a cache
  // entry and return the identical stored value.
  const std::uint32_t source = std::min(u, v);
  const std::uint32_t target = std::max(u, v);
  return (*row_for(source))[target];
}

std::vector<GraphMetric::AccessPoint> GraphMetric::compute_access_set(
    geometry::Point2 p) const {
  const std::size_t k = options_.access_waypoints;
  // Nearest visible waypoints; ascending (euclid, id) keeps ties and
  // therefore snapping deterministic.
  std::vector<AccessPoint> visible;
  std::vector<AccessPoint> any;
  for (std::uint32_t i = 0; i < graph_.nodes.size(); ++i) {
    const AccessPoint ap{i, geometry::distance(p, graph_.nodes[i])};
    any.push_back(ap);
    if (line_of_sight(p, graph_.nodes[i])) visible.push_back(ap);
  }
  auto better = [](const AccessPoint& a, const AccessPoint& b) {
    if (a.euclid != b.euclid) return a.euclid < b.euclid;
    return a.node < b.node;
  };
  auto take = [&](std::vector<AccessPoint>& pool) {
    std::sort(pool.begin(), pool.end(), better);
    if (pool.size() > k) pool.resize(k);
    return pool;
  };
  // A point walled off from every waypoint still snaps (to the nearest
  // waypoints outright) so the metric stays total.
  return visible.empty() ? take(any) : take(visible);
}

std::vector<GraphMetric::AccessPoint> GraphMetric::access_set(
    geometry::Point2 p) const {
  const PointKey key{bits_of(p.x), bits_of(p.y)};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(key);
    if (it != points_.end()) {
      ++stats_.point_hits;
      point_lru_.splice(point_lru_.begin(), point_lru_, it->second.lru_it);
      return it->second.access;
    }
    ++stats_.point_misses;
  }
  auto access = compute_access_set(p);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(key);
  if (it != points_.end()) {
    point_lru_.splice(point_lru_.begin(), point_lru_, it->second.lru_it);
    return it->second.access;
  }
  point_lru_.push_front(key);
  points_.emplace(key, PointEntry{access, point_lru_.begin()});
  if (points_.size() > options_.max_cached_points) {
    points_.erase(point_lru_.back());
    point_lru_.pop_back();
  }
  return access;
}

bool GraphMetric::best_route(const std::vector<AccessPoint>& from,
                             const std::vector<AccessPoint>& to,
                             std::uint32_t& best_u, std::uint32_t& best_v,
                             double& best_total) const {
  bool found = false;
  best_total = kInf;
  for (const auto& u : from) {
    for (const auto& v : to) {
      const double through = node_distance(u.node, v.node);
      if (through == kInf) continue;
      // (u.euclid + v.euclid) first: FP addition is commutative, so the
      // reversed query (b, a) sums the identical value and the metric is
      // exactly symmetric.
      const double total = (u.euclid + v.euclid) + through;
      // Strict < keeps the first-found combination on ties; access sets
      // are ordered by (euclid, id), so the tie-break is the lower pair.
      if (total < best_total) {
        best_total = total;
        best_u = u.node;
        best_v = v.node;
        found = true;
      }
    }
  }
  return found;
}

double GraphMetric::distance(geometry::Point2 a, geometry::Point2 b) const {
  if (a.x == b.x && a.y == b.y) return 0.0;
  // Visible pairs travel the chord — bit-exact Euclidean, which is the
  // whole differential-oracle story: zero obstacles => every query takes
  // this path.
  if (graph_.obstacles.empty() || line_of_sight(a, b)) {
    return geometry::distance(a, b);
  }
  const auto from = access_set(a);
  const auto to = access_set(b);
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double total = kInf;
  if (!best_route(from, to, u, v, total)) {
    // Disconnected graph component: validation (io::validate_waypoint_graph)
    // reports this as kDisconnected up front; staying total here beats
    // poisoning a planner with infinities.
    return geometry::distance(a, b);
  }
  return total;
}

void GraphMetric::path(geometry::Point2 a, geometry::Point2 b,
                       std::vector<geometry::Point2>& out) const {
  out.clear();
  out.push_back(a);
  if (a.x == b.x && a.y == b.y) {
    out.push_back(b);
    return;
  }
  if (graph_.obstacles.empty() || line_of_sight(a, b)) {
    out.push_back(b);
    return;
  }
  const auto from = access_set(a);
  const auto to = access_set(b);
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double total = kInf;
  if (!best_route(from, to, u, v, total)) {
    out.push_back(b);
    return;
  }
  // Rebuild the node path with a parent-tracking Dijkstra; rare (path is
  // a reporting query, not a tour-evaluation hot path) so it is not
  // memoized.
  std::vector<std::uint32_t> parent;
  dijkstra_row(u, &parent);
  std::vector<std::uint32_t> chain;
  for (std::uint32_t at = v; at != u; at = parent[at]) chain.push_back(at);
  chain.push_back(u);
  std::reverse(chain.begin(), chain.end());
  for (const auto node : chain) out.push_back(graph_.nodes[node]);
  out.push_back(b);
}

GraphMetric::CacheStats GraphMetric::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace bc::net
