// Pluggable movement metrics: how far apart two points are for a charger
// that has to *drive* between them.
//
// Every planner, the TSP facade, the fleet splitter, the mission executor
// and the replanner ladder reason about movement cost. Historically that
// cost was hardwired to the Euclidean distance, which rules out the
// paper's dense campus/warehouse deployments where the mobile charger is
// confined to corridors and road networks. MetricSpace abstracts the
// movement distance behind three queries:
//
//   distance(a, b)        — movement distance in metres
//   path(a, b, out)       — the polyline actually driven (first == a,
//                           last == b)
//   distances_from(a, ts) — batched one-to-many distance
//
// Two backends ship:
//
//   EuclideanMetric — the bit-exact status quo. Call sites never invoke
//     it virtually: the convention repo-wide is that a null MetricSpace
//     pointer *means* Euclidean, and the inline metric_distance() helper
//     folds the null check into a predicted branch ahead of the
//     geometry::distance call, so the free-space hot path keeps its exact
//     FP sequence and its performance (gated at 1.05x in CI). The
//     singleton exists for code that wants an explicit backend object
//     (benchmarks, tests).
//
//   GraphMetric — a waypoint graph (road network / corridor skeleton)
//     plus obstacle wall segments. Queries between mutually visible
//     points (no obstacle segment crosses the sight line) return the
//     exact Euclidean distance — so a graph with zero obstacles is
//     byte-identical to EuclideanMetric through every planner, which is
//     what the differential oracle suite pins. Blocked queries snap each
//     endpoint to its nearest visible waypoints and route between them
//     with Dijkstra over the graph. Node-to-node rows are memoized in a
//     deterministic LRU cache, so repeated tour evaluations are O(1)
//     lookups after warm-up.
//
// Determinism contract: every returned distance is a pure function of
// (graph, query) — Dijkstra pops ties by ascending node id, snapping ties
// break toward the lower waypoint id, and cached values are identical to
// cold computations. Which entries happen to *occupy* the LRU cache
// depends on query order (and hence thread interleaving), but the values
// themselves are thread-invariant, so planner outputs stay byte-identical
// at any BC_THREADS.
//
// Scope: only *movement* goes through a MetricSpace. Stop-to-sensor
// charging geometry (received power, charge-time integrals) is physics
// over free-space radio range and stays Euclidean by design.

#ifndef BUNDLECHARGE_NET_METRIC_H_
#define BUNDLECHARGE_NET_METRIC_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/segment.h"

namespace bc::net {

class MetricSpace {
 public:
  virtual ~MetricSpace() = default;

  virtual std::string_view name() const = 0;

  // Movement distance in metres. Symmetric, non-negative, zero when
  // a == b. Total: never NaN/Inf for finite inputs (backends fall back to
  // Euclidean rather than poison a planner with infinities).
  virtual double distance(geometry::Point2 a, geometry::Point2 b) const = 0;

  // Appends the driven polyline to `out` (cleared first). First element
  // equals `a`, last equals `b`; Euclidean paths are the two endpoints.
  virtual void path(geometry::Point2 a, geometry::Point2 b,
                    std::vector<geometry::Point2>& out) const;

  // Batched one-to-many: out[i] = distance(a, targets[i]).
  // Precondition: out.size() == targets.size().
  virtual void distances_from(geometry::Point2 a,
                              std::span<const geometry::Point2> targets,
                              std::span<double> out) const;
};

// Bit-exact free-space distance. Hot paths use metric_distance() below
// instead of this object; the singleton serves code that needs an
// explicit backend (dispatch-overhead benches, differential tests).
class EuclideanMetric final : public MetricSpace {
 public:
  static const EuclideanMetric& instance();

  std::string_view name() const override { return "euclid"; }
  double distance(geometry::Point2 a, geometry::Point2 b) const override {
    return geometry::distance(a, b);
  }
};

// The repo-wide convention: a null metric is Euclidean. This helper is
// the single idiom every movement-distance call site uses; keeping the
// null fast path inline preserves the exact FP sequence (and the speed)
// of the pre-metric code.
inline double metric_distance(const MetricSpace* metric, geometry::Point2 a,
                              geometry::Point2 b) {
  return metric == nullptr ? geometry::distance(a, b) : metric->distance(a, b);
}

// An undirected waypoint edge. Endpoints index WaypointGraph::nodes;
// weight is the traversal cost in metres (>= the chord length for a
// physical road, but any positive finite value is accepted).
struct GraphEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double weight = 0.0;
};

// A road-network world: waypoint nodes, undirected weighted edges, and
// obstacle wall segments that block straight-line travel. Built by
// io::read_waypoint_graph_csv (which validates and rejects malformed
// input) or assembled directly by tests/benchmarks.
struct WaypointGraph {
  std::vector<geometry::Point2> nodes;
  std::vector<GraphEdge> edges;
  std::vector<geometry::Segment> obstacles;
};

struct GraphMetricOptions {
  // LRU capacity of the memoized Dijkstra row cache (one row = distances
  // from one source node to every node).
  std::size_t max_cached_rows = 256;
  // LRU capacity of the query-point snapping cache (point -> visible
  // waypoint access set). Tour evaluation re-queries the same stop
  // positions heavily; this makes those lookups O(1).
  std::size_t max_cached_points = 4096;
  // Each blocked query connects its endpoints through up to this many
  // nearest *visible* waypoints; the reported distance is the best
  // combination. Larger values tighten the approximation at k^2 cost.
  std::size_t access_waypoints = 4;
};

// Movement metric over a WaypointGraph. Thread-safe: the internal caches
// are mutex-protected and cache *values* are pure functions of the graph,
// so concurrent use from any thread count yields identical distances.
class GraphMetric final : public MetricSpace {
 public:
  // Preconditions (contract violations, not faults — feed untrusted
  // input through io::read_waypoint_graph_csv first): at least one node,
  // finite coordinates, edge endpoints in range, no self-loops, weights
  // finite and positive.
  explicit GraphMetric(WaypointGraph graph, GraphMetricOptions options = {});

  std::string_view name() const override { return "graph"; }
  double distance(geometry::Point2 a, geometry::Point2 b) const override;
  void path(geometry::Point2 a, geometry::Point2 b,
            std::vector<geometry::Point2>& out) const override;

  const WaypointGraph& graph() const { return graph_; }
  std::size_t node_count() const { return graph_.nodes.size(); }

  // True when no obstacle segment crosses the closed segment a-b.
  bool line_of_sight(geometry::Point2 a, geometry::Point2 b) const;

  // Shortest-path distance between waypoint nodes (memoized). Returns
  // +inf when v is unreachable from u — callers decide the fallback;
  // distance() falls back to the Euclidean chord.
  double node_distance(std::uint32_t u, std::uint32_t v) const;

  struct CacheStats {
    std::size_t row_hits = 0;
    std::size_t row_misses = 0;
    std::size_t point_hits = 0;
    std::size_t point_misses = 0;
  };
  CacheStats cache_stats() const;

 private:
  struct AccessPoint {
    std::uint32_t node = 0;
    double euclid = 0.0;  // straight-line distance query -> node
  };

  // Dijkstra from `source` over the CSR adjacency; deterministic
  // (ascending-id tie-breaks). Unreachable nodes hold +inf. When
  // `parent` is non-null it receives the shortest-path tree.
  std::vector<double> dijkstra_row(std::uint32_t source,
                                   std::vector<std::uint32_t>* parent) const;
  // Memoized row fetch (LRU). The returned shared row is immutable.
  std::shared_ptr<const std::vector<double>> row_for(std::uint32_t source)
      const;
  // Up to options_.access_waypoints nearest waypoints visible from `p`
  // (all of them blocked => nearest waypoints regardless of visibility,
  // so the metric stays total). Memoized per exact point bit pattern.
  std::vector<AccessPoint> access_set(geometry::Point2 p) const;
  std::vector<AccessPoint> compute_access_set(geometry::Point2 p) const;

  // Best (u, v, total) routing between two access sets; returns false
  // when every combination is disconnected.
  bool best_route(const std::vector<AccessPoint>& from,
                  const std::vector<AccessPoint>& to, std::uint32_t& best_u,
                  std::uint32_t& best_v, double& best_total) const;

  WaypointGraph graph_;
  GraphMetricOptions options_;

  // CSR adjacency: neighbours of node n are adj_nodes_[adj_start_[n] ..
  // adj_start_[n + 1]), sorted ascending for deterministic relaxation.
  std::vector<std::uint32_t> adj_start_;
  std::vector<std::uint32_t> adj_nodes_;
  std::vector<double> adj_weights_;

  // LRU caches. Guarded by mutex_; see the determinism note above.
  mutable std::mutex mutex_;
  mutable std::list<std::uint32_t> row_lru_;  // front = most recent
  struct RowEntry {
    std::shared_ptr<const std::vector<double>> row;
    std::list<std::uint32_t>::iterator lru_it;
  };
  mutable std::unordered_map<std::uint32_t, RowEntry> rows_;
  struct PointKey {
    std::uint64_t x_bits = 0;
    std::uint64_t y_bits = 0;
    bool operator==(const PointKey& o) const {
      return x_bits == o.x_bits && y_bits == o.y_bits;
    }
  };
  struct PointKeyHash {
    std::size_t operator()(const PointKey& k) const;
  };
  mutable std::list<PointKey> point_lru_;
  struct PointEntry {
    std::vector<AccessPoint> access;
    std::list<PointKey>::iterator lru_it;
  };
  mutable std::unordered_map<PointKey, PointEntry, PointKeyHash> points_;
  mutable CacheStats stats_;
};

}  // namespace bc::net

#endif  // BUNDLECHARGE_NET_METRIC_H_
