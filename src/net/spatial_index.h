// Uniform-grid spatial index over sensor positions.
//
// Candidate bundle enumeration repeatedly asks "which sensors lie within
// radius r of this point?"; a bucket grid with cell size r answers that in
// expected O(k) by scanning the 3x3 cell neighbourhood, turning the
// enumeration from O(n^3) into roughly O(n * k^2) for density k.

#ifndef BUNDLECHARGE_NET_SPATIAL_INDEX_H_
#define BUNDLECHARGE_NET_SPATIAL_INDEX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "net/sensor.h"

namespace bc::net {

class SpatialIndex {
 public:
  // Indexes `positions` (id = position index) with grid cell size
  // `cell_size`. Preconditions: !positions.empty(), cell_size > 0.
  SpatialIndex(std::span<const geometry::Point2> positions, double cell_size);

  // Ids of all points with distance(point, query) <= radius, in ascending
  // id order. `radius` may exceed the cell size (more cells are scanned).
  std::vector<SensorId> within(geometry::Point2 query, double radius) const;

  // As `within`, but appends to `out` (cleared first); avoids allocation
  // in hot loops.
  void within(geometry::Point2 query, double radius,
              std::vector<SensorId>& out) const;

  // Ids of the (up to) k indexed points nearest to `query`, written to
  // `out` (cleared first) ordered by ascending distance with an
  // ascending-id tie-break. A query coinciding with an indexed point
  // returns that point first (distance 0); callers wanting "neighbours of
  // point i" ask for k + 1 and drop i. Expected O(k) for uniform densities
  // via a ring-expanding cell scan: rings stop once the k-th best distance
  // is provably closer than anything an unscanned ring can hold.
  void k_nearest(geometry::Point2 query, std::size_t k,
                 std::vector<SensorId>& out) const;

  std::size_t size() const { return positions_.size(); }

 private:
  std::size_t cell_of(geometry::Point2 p) const;

  std::vector<geometry::Point2> positions_;
  geometry::Box2 bounds_;
  double cell_size_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  // item_xs_/item_ys_ mirror cell_items_ (SoA): slot i holds the
  // coordinates of sensor cell_items_[i], so a row scan is a contiguous
  // streaming distance kernel instead of an id-indirected gather.
  std::vector<std::uint32_t> cell_start_;
  std::vector<SensorId> cell_items_;
  std::vector<double> item_xs_;
  std::vector<double> item_ys_;
};

}  // namespace bc::net

#endif  // BUNDLECHARGE_NET_SPATIAL_INDEX_H_
