#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "support/require.h"
#include "support/simd.h"

namespace bc::net {

using geometry::Point2;

SpatialIndex::SpatialIndex(std::span<const Point2> positions, double cell_size)
    : positions_(positions.begin(), positions.end()), cell_size_(cell_size) {
  support::require(!positions_.empty(), "spatial index needs points");
  support::require(cell_size > 0.0, "cell size must be positive");
  bounds_ = geometry::bounding_box(positions_);
  // Clamp the grid so a tiny cell size over a large field cannot blow up
  // memory; a coarser grid only costs extra distance checks.
  constexpr double kMaxCellsPerAxis = 2048.0;
  cell_size_ = std::max({cell_size_, bounds_.width() / kMaxCellsPerAxis,
                         bounds_.height() / kMaxCellsPerAxis});
  cols_ = static_cast<std::size_t>(bounds_.width() / cell_size_) + 1;
  rows_ = static_cast<std::size_t>(bounds_.height() / cell_size_) + 1;

  // Counting sort into CSR buckets.
  const std::size_t cells = cols_ * rows_;
  std::vector<std::uint32_t> counts(cells, 0);
  for (const Point2& p : positions_) ++counts[cell_of(p)];
  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_items_.resize(positions_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    cell_items_[cursor[cell_of(positions_[i])]++] =
        static_cast<SensorId>(i);
  }
  // SoA shadow of cell_items_ for the vectorised row scans.
  item_xs_.resize(cell_items_.size());
  item_ys_.resize(cell_items_.size());
  for (std::size_t i = 0; i < cell_items_.size(); ++i) {
    item_xs_[i] = positions_[cell_items_[i]].x;
    item_ys_[i] = positions_[cell_items_[i]].y;
  }
}

std::size_t SpatialIndex::cell_of(Point2 p) const {
  auto gx = static_cast<std::size_t>(
      std::max(0.0, (p.x - bounds_.lo.x) / cell_size_));
  auto gy = static_cast<std::size_t>(
      std::max(0.0, (p.y - bounds_.lo.y) / cell_size_));
  gx = std::min(gx, cols_ - 1);
  gy = std::min(gy, rows_ - 1);
  return gy * cols_ + gx;
}

std::vector<SensorId> SpatialIndex::within(Point2 query, double radius) const {
  std::vector<SensorId> out;
  within(query, radius, out);
  return out;
}

void SpatialIndex::within(Point2 query, double radius,
                          std::vector<SensorId>& out) const {
  support::require(radius >= 0.0, "radius must be non-negative");
  out.clear();
  const double r2 = radius * radius;
  // ceil(radius / cell) rings suffice: the query sits inside its own cell,
  // so any point within `radius` is at most that many cells away on each
  // axis. (floor + 1 would scan a whole extra ring whenever the radius is
  // an exact multiple of the cell size — the common r == cell case.)
  const auto reach =
      static_cast<std::ptrdiff_t>(std::ceil(radius / cell_size_));
  const auto qx = static_cast<std::ptrdiff_t>(
      std::floor((query.x - bounds_.lo.x) / cell_size_));
  const auto qy = static_cast<std::ptrdiff_t>(
      std::floor((query.y - bounds_.lo.y) / cell_size_));
  const std::ptrdiff_t gx_lo = std::max<std::ptrdiff_t>(qx - reach, 0);
  const std::ptrdiff_t gx_hi =
      std::min(qx + reach, static_cast<std::ptrdiff_t>(cols_) - 1);
  const std::ptrdiff_t gy_lo = std::max<std::ptrdiff_t>(qy - reach, 0);
  const std::ptrdiff_t gy_hi =
      std::min(qy + reach, static_cast<std::ptrdiff_t>(rows_) - 1);
  if (gx_lo > gx_hi) {
    return;  // query column band entirely off-grid
  }
  for (std::ptrdiff_t gy = gy_lo; gy <= gy_hi; ++gy) {
    // The cells of one row are adjacent in the CSR layout, so the whole
    // gx band is a single contiguous item range — one scan per row
    // instead of a bounds-checked loop per cell.
    const std::size_t row = static_cast<std::size_t>(gy) * cols_;
    const std::uint32_t begin =
        cell_start_[row + static_cast<std::size_t>(gx_lo)];
    const std::uint32_t end =
        cell_start_[row + static_cast<std::size_t>(gx_hi) + 1];
    support::simd::filter_within(item_xs_.data() + begin,
                                 item_ys_.data() + begin,
                                 cell_items_.data() + begin, end - begin,
                                 query.x, query.y, r2, out);
  }
  std::sort(out.begin(), out.end());
}

void SpatialIndex::k_nearest(Point2 query, std::size_t k,
                             std::vector<SensorId>& out) const {
  out.clear();
  if (k == 0) return;
  k = std::min(k, positions_.size());

  // Nominal (unclamped) cell coordinates of the query; the query point
  // lies inside that cell's square even when it falls outside the grid,
  // which is what the ring distance bound below relies on.
  const auto qx = static_cast<std::ptrdiff_t>(
      std::floor((query.x - bounds_.lo.x) / cell_size_));
  const auto qy = static_cast<std::ptrdiff_t>(
      std::floor((query.y - bounds_.lo.y) / cell_size_));
  const auto cols = static_cast<std::ptrdiff_t>(cols_);
  const auto rows = static_cast<std::ptrdiff_t>(rows_);
  const std::ptrdiff_t max_ring =
      std::max(std::max(std::abs(qx), std::abs(cols - 1 - qx)),
               std::max(std::abs(qy), std::abs(rows - 1 - qy)));

  std::vector<std::pair<double, SensorId>> found;
  const auto scan_cell_span = [&](std::ptrdiff_t gy, std::ptrdiff_t gx_lo,
                                  std::ptrdiff_t gx_hi) {
    if (gy < 0 || gy >= rows) return;
    gx_lo = std::max<std::ptrdiff_t>(gx_lo, 0);
    gx_hi = std::min(gx_hi, cols - 1);
    if (gx_lo > gx_hi) return;
    const std::size_t row = static_cast<std::size_t>(gy) * cols_;
    const std::uint32_t begin =
        cell_start_[row + static_cast<std::size_t>(gx_lo)];
    const std::uint32_t end =
        cell_start_[row + static_cast<std::size_t>(gx_hi) + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const SensorId id = cell_items_[i];
      found.emplace_back(geometry::distance_squared(positions_[id], query),
                         id);
    }
  };

  for (std::ptrdiff_t ring = 0; ring <= max_ring; ++ring) {
    if (ring == 0) {
      scan_cell_span(qy, qx, qx);
    } else {
      scan_cell_span(qy - ring, qx - ring, qx + ring);
      scan_cell_span(qy + ring, qx - ring, qx + ring);
      for (std::ptrdiff_t gy = qy - ring + 1; gy <= qy + ring - 1; ++gy) {
        scan_cell_span(gy, qx - ring, qx - ring);
        scan_cell_span(gy, qx + ring, qx + ring);
      }
    }
    if (found.size() >= k) {
      // A point in a cell at Chebyshev cell-distance m from the query's
      // cell is at least (m - 1) * cell_size_ away, so everything in rings
      // > `ring` lies beyond ring * cell_size_. Once the k-th best found
      // distance beats that bound, no further ring can improve the answer.
      std::nth_element(found.begin(),
                       found.begin() + static_cast<std::ptrdiff_t>(k) - 1,
                       found.end());
      const double bound = static_cast<double>(ring) * cell_size_;
      if (found[k - 1].first <= bound * bound) break;
    }
  }

  std::sort(found.begin(), found.end());  // (distance asc, id asc)
  found.resize(std::min(found.size(), k));
  out.reserve(found.size());
  for (const auto& [d2, id] : found) out.push_back(id);
}

}  // namespace bc::net
