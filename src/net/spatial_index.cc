#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "support/require.h"

namespace bc::net {

using geometry::Point2;

SpatialIndex::SpatialIndex(std::span<const Point2> positions, double cell_size)
    : positions_(positions.begin(), positions.end()), cell_size_(cell_size) {
  support::require(!positions_.empty(), "spatial index needs points");
  support::require(cell_size > 0.0, "cell size must be positive");
  bounds_ = geometry::bounding_box(positions_);
  // Clamp the grid so a tiny cell size over a large field cannot blow up
  // memory; a coarser grid only costs extra distance checks.
  constexpr double kMaxCellsPerAxis = 2048.0;
  cell_size_ = std::max({cell_size_, bounds_.width() / kMaxCellsPerAxis,
                         bounds_.height() / kMaxCellsPerAxis});
  cols_ = static_cast<std::size_t>(bounds_.width() / cell_size_) + 1;
  rows_ = static_cast<std::size_t>(bounds_.height() / cell_size_) + 1;

  // Counting sort into CSR buckets.
  const std::size_t cells = cols_ * rows_;
  std::vector<std::uint32_t> counts(cells, 0);
  for (const Point2& p : positions_) ++counts[cell_of(p)];
  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_items_.resize(positions_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    cell_items_[cursor[cell_of(positions_[i])]++] =
        static_cast<SensorId>(i);
  }
}

std::size_t SpatialIndex::cell_of(Point2 p) const {
  auto gx = static_cast<std::size_t>(
      std::max(0.0, (p.x - bounds_.lo.x) / cell_size_));
  auto gy = static_cast<std::size_t>(
      std::max(0.0, (p.y - bounds_.lo.y) / cell_size_));
  gx = std::min(gx, cols_ - 1);
  gy = std::min(gy, rows_ - 1);
  return gy * cols_ + gx;
}

std::vector<SensorId> SpatialIndex::within(Point2 query, double radius) const {
  std::vector<SensorId> out;
  within(query, radius, out);
  return out;
}

void SpatialIndex::within(Point2 query, double radius,
                          std::vector<SensorId>& out) const {
  support::require(radius >= 0.0, "radius must be non-negative");
  out.clear();
  const double r2 = radius * radius;
  const auto reach = static_cast<std::ptrdiff_t>(radius / cell_size_) + 1;
  const auto qx = static_cast<std::ptrdiff_t>(
      std::floor((query.x - bounds_.lo.x) / cell_size_));
  const auto qy = static_cast<std::ptrdiff_t>(
      std::floor((query.y - bounds_.lo.y) / cell_size_));
  for (std::ptrdiff_t gy = qy - reach; gy <= qy + reach; ++gy) {
    if (gy < 0 || gy >= static_cast<std::ptrdiff_t>(rows_)) continue;
    for (std::ptrdiff_t gx = qx - reach; gx <= qx + reach; ++gx) {
      if (gx < 0 || gx >= static_cast<std::ptrdiff_t>(cols_)) continue;
      const std::size_t cell = static_cast<std::size_t>(gy) * cols_ +
                               static_cast<std::size_t>(gx);
      for (std::uint32_t i = cell_start_[cell]; i < cell_start_[cell + 1];
           ++i) {
        const SensorId id = cell_items_[i];
        if (geometry::distance_squared(positions_[id], query) <= r2) {
          out.push_back(id);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace bc::net
