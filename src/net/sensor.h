// Sensor node model.
//
// A sensor is a position plus a charging demand (the paper's threshold
// delta, "each sensor should be charged at least delta", §III-B). Ids index
// into the owning Deployment, so bundles and plans can store plain integer
// member lists.

#ifndef BUNDLECHARGE_NET_SENSOR_H_
#define BUNDLECHARGE_NET_SENSOR_H_

#include <cstdint>

#include "geometry/point.h"

namespace bc::net {

using SensorId = std::uint32_t;

struct Sensor {
  SensorId id = 0;
  geometry::Point2 position;
  double demand_j = 0.0;  // minimum energy this sensor must receive
};

}  // namespace bc::net

#endif  // BUNDLECHARGE_NET_SENSOR_H_
