// Sensor deployments: the network model of §III-B plus the workload
// generators used by the evaluation (§VI-A deploys n in [40, 200] sensors
// uniformly over a 1000 m x 1000 m field; §VII uses six fixed coordinates
// in a 5 m x 5 m office).

#ifndef BUNDLECHARGE_NET_DEPLOYMENT_H_
#define BUNDLECHARGE_NET_DEPLOYMENT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "net/sensor.h"
#include "support/rng.h"

namespace bc::net {

// An immutable collection of sensors in a rectangular field, plus the
// depot the mobile charger starts from and returns to.
class Deployment {
 public:
  // Builds from explicit sensor positions with a uniform demand. Ids are
  // assigned 0..n-1 in order. Preconditions: !positions.empty(),
  // demand_j > 0, every position inside `field`.
  Deployment(std::vector<geometry::Point2> positions, geometry::Box2 field,
             geometry::Point2 depot, double demand_j);

  // Heterogeneous-demand variant (Eq. 3's constraint is per-sensor, so
  // nothing downstream assumes uniformity). Preconditions: one positive
  // demand per position.
  Deployment(std::vector<geometry::Point2> positions, geometry::Box2 field,
             geometry::Point2 depot, std::vector<double> demands_j);

  std::size_t size() const { return sensors_.size(); }
  const Sensor& sensor(SensorId id) const;
  std::span<const Sensor> sensors() const { return sensors_; }
  // Positions only, aligned with ids (useful for geometry calls).
  std::span<const geometry::Point2> positions() const { return positions_; }

  const geometry::Box2& field() const { return field_; }
  geometry::Point2 depot() const { return depot_; }
  // Largest per-sensor demand (equals the uniform demand when demands are
  // uniform); sizing quantities like BC-OPT's displacement cap use it.
  double demand_j() const { return max_demand_j_; }
  // True when every sensor has the same demand.
  bool uniform_demand() const { return uniform_demand_; }

 private:
  std::vector<Sensor> sensors_;
  std::vector<geometry::Point2> positions_;
  geometry::Box2 field_;
  geometry::Point2 depot_;
  double max_demand_j_ = 0.0;
  bool uniform_demand_ = true;
};

// Copy of `base` with the given per-sensor demands (one per sensor, all
// positive). Lets workload code attach surveyed/heterogeneous demands to
// any generated deployment.
Deployment with_demands(const Deployment& base,
                        std::vector<double> demands_j);

// Workload generators -------------------------------------------------------

struct FieldSpec {
  geometry::Box2 field{{0.0, 0.0}, {1000.0, 1000.0}};
  geometry::Point2 depot{0.0, 0.0};
  double demand_j = 2.0;  // the paper's 2 J charging capacity
};

// n sensors i.i.d. uniform over the field (the paper's main workload).
Deployment uniform_random_deployment(std::size_t n, const FieldSpec& spec,
                                     support::Rng& rng);

// Sensors around `clusters` Gaussian hot-spots (dense-jungle/battlefield
// motivation of §III-B: bundling pays off most here). Cluster centres are
// uniform; points are truncated-normal around them with given sigma.
Deployment clustered_deployment(std::size_t n, std::size_t clusters,
                                double sigma, const FieldSpec& spec,
                                support::Rng& rng);

// Jittered grid: ceil(sqrt(n))^2 lattice, keep n cells, jitter each point
// uniformly within a fraction of the cell. Models engineered deployments.
Deployment jittered_grid_deployment(std::size_t n, double jitter_fraction,
                                    const FieldSpec& spec, support::Rng& rng);

// Explicit coordinates (e.g. the testbed's six sensors). The field is the
// bounding box of the coordinates expanded to include the depot.
Deployment explicit_deployment(std::vector<geometry::Point2> positions,
                               geometry::Point2 depot, double demand_j);

// The §VII testbed: six sensors at (1,1), (1,3), (1,4), (2,4), (4,4),
// (4,1) in a 5 m x 5 m room, depot at the origin, 4 mJ demand.
Deployment testbed_deployment();

}  // namespace bc::net

#endif  // BUNDLECHARGE_NET_DEPLOYMENT_H_
